//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, range strategies over integers, [`any`] for primitives, and
//! `prop::collection::vec`. Cases are generated deterministically from a
//! hash of the test name, so failures reproduce exactly; there is no
//! shrinking (`max_shrink_iters` is accepted and ignored), and failures
//! report the generated inputs before propagating the panic.

use std::ops::Range;

/// Per-test configuration (a subset of the real crate's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this implementation never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; inputs are never rejected here.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; failures are reported, never persisted.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
            failure_persistence: None,
        }
    }
}

/// Deterministic case generator (SplitMix64 over a name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name (FNV-1a), so every run of a given test
    /// explores the same cases.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bounded(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A source of generated values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.bounded(self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The whole-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` (for supported primitives).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// `Vec` strategy with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with lengths in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.is_empty() {
                    0
                } else {
                    self.len.clone().generate(rng)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Asserts inside a property body (panic-based: no shrink pass exists to
/// consume a structured error).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { ::std::assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { ::std::assert_eq!($l, $r, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { ::std::assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)+) => { ::std::assert_ne!($l, $r, $($fmt)+) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn it_holds(x in 0u64..100, flags in prop::collection::vec(0usize..4, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(::std::stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(__panic) = __result {
                    ::std::eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        __case + 1,
                        __config.cases,
                        ::std::stringify!($name),
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vectors_respect_bounds(
            x in 5u64..50,
            signed in -10i64..10,
            flag in any::<bool>(),
            items in prop::collection::vec(0usize..7, 1..5),
        ) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-10..10).contains(&signed));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(!items.is_empty() && items.len() < 5);
            prop_assert!(items.iter().all(|&i| i < 7));
        }
    }
}
