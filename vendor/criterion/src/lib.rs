//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness: `bench_function` + `Bencher::iter` with
//! a short warm-up and an adaptive measured phase, reporting mean
//! ns/iteration to stdout. No statistics, plots, or CLI filtering — the
//! workspace's benches only need a stable way to run a closure hot and
//! print a number.

use std::hint;
use std::time::{Duration, Instant};

/// Bench-suite driver handed to each registered bench function.
pub struct Criterion {
    /// Target duration of the measured phase per benchmark.
    measurement_time: Duration,
    /// Duration of the warm-up phase per benchmark.
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some((iters, total)) => {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!("bench: {id:<40} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench: {id:<40} (no measurement)"),
        }
        self
    }

    /// Accepted for compatibility; there is no CLI to configure from.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }
}

/// Timing loop for a single benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs `routine` hot and records `(iterations, total_time)`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up: also estimates a single-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let target = (self.measurement_time.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target {
            hint::black_box(routine());
        }
        self.measured = Some((target as u64, start.elapsed()));
    }
}

/// Re-export of the standard black box for code written against
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declares a bench group: a function that runs each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.warm_up_time = Duration::from_millis(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
