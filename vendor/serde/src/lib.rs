//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal clean-room implementation of the small
//! serde surface it actually uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums (no `#[serde(...)]` attributes, no
//! generics), driven through `serde_json`.
//!
//! Instead of serde's visitor architecture, values round-trip through a
//! single JSON-shaped [`Content`] tree. Derived impls map types with the
//! same externally-tagged layout real serde uses, so the JSON produced is
//! byte-compatible for the shapes this workspace serializes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered string-keyed map (the JSON object model).
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// Looks up a map entry; missing fields read as `Null` (which makes
    /// `Option` fields lenient and everything else a type error).
    pub fn field(&self, name: &str) -> &Content {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The elements of a sequence.
    pub fn seq_items(&self) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`.
    pub fn variant_parts(&self) -> Result<(&str, Option<&Content>), DeError> {
        match self {
            Content::Str(s) => Ok((s, None)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::unexpected("enum variant", other)),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error (also returned by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    fn unexpected(wanted: &str, got: &Content) -> DeError {
        DeError::custom(format!("expected {wanted}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can be converted into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// A value that can be reconstructed from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Owned-deserialization alias kept for source compatibility.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() < 2e18 => *v as i64,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let wide = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 2e19 => *v as u64,
                    other => return Err(DeError::unexpected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.seq_items()?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = c.seq_items()?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected a tuple of {}, found a sequence of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    fn to_key(&self) -> String;
}

/// Map keys must parse back from JSON strings.
pub trait DeserializeKey: Sized {
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn to_key(&self) -> String {
        self.to_owned()
    }
}

impl<T: SerializeKey + ?Sized> SerializeKey for &T {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!("bad {} key `{key}`", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: SerializeKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // sort for a deterministic byte stream; HashMap iteration order is
        // seeded per-instance
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::unexpected("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(i32::from_content(&42i32.to_content()).unwrap(), 42);
        assert_eq!(u64::from_content(&7u64.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
    }

    #[test]
    fn numbers_cross_convert_exactly() {
        // integers written by the printer as bare digits must read back as
        // floats, and integral floats as integers
        assert_eq!(f64::from_content(&Content::I64(3)).unwrap(), 3.0);
        assert_eq!(i64::from_content(&Content::F64(3.0)).unwrap(), 3);
        assert!(i64::from_content(&Content::F64(3.5)).is_err());
    }

    #[test]
    fn compounds_round_trip() {
        let v = vec![(String::from("a"), 1u32), (String::from("b"), 2)];
        let back = Vec::<(String, u32)>::from_content(&v.to_content()).unwrap();
        assert_eq!(v, back);

        let o: Option<i64> = None;
        assert_eq!(o.to_content(), Content::Null);
        assert_eq!(Option::<i64>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn missing_fields_read_as_null() {
        let m = Content::Map(vec![(String::from("x"), Content::I64(1))]);
        assert_eq!(m.field("x"), &Content::I64(1));
        assert_eq!(m.field("y"), &Content::Null);
        assert_eq!(Option::<u8>::from_content(m.field("y")).unwrap(), None);
    }
}
