//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! for the shapes this workspace uses: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, and struct variants), with serde's
//! default externally-tagged representation. `#[serde(...)]` attributes
//! are not supported and generic parameters are rejected with a compile
//! error.
//!
//! The implementation parses the raw `TokenStream` by hand (the real
//! `syn`/`quote` stack is unavailable offline) and emits impls by string
//! formatting; field *names* and variant arities are all that codegen
//! needs, so the parser deliberately ignores types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive: generated code parses"),
        Err(msg) => format!("::std::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips `#[...]` / `#![...]` attribute groups (doc comments included).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.pos += 1;
                }
            }
            self.pos += 1; // the [...] group
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!(
                "serde_derive: expected identifier, found {other:?}"
            )),
        }
    }

    /// Advances past everything up to (not including) the next `,` that is
    /// outside angle brackets (generic arguments are not token groups, so
    /// the comma in `HashMap<K, V>` must not end the field).
    fn skip_to_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle_depth == 0 => break,
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();

    let kw = c.ident()?;
    let name = c.ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported"
        ));
    }

    let shape = match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("serde_derive: malformed struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde_derive: malformed enum body: {other:?}")),
        },
        other => return Err(format!("serde_derive: cannot derive for `{other}` items")),
    };
    Ok(Item { name, shape })
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        fields.push(c.ident()?);
        c.skip_to_comma();
        c.next(); // the comma itself (or end)
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream())?);
                c.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                c.next();
                k
            }
            _ => VariantKind::Unit,
        };
        c.skip_to_comma(); // covers explicit `= discr` too
        c.next();
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn str_lit(s: &str) -> String {
    format!("{s:?}")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({}), ::serde::Serialize::to_content(&self.{f}))",
                        str_lit(f)
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_content(&self) -> ::serde::Content {{ {body} }} \
         }}"
    )
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    let tag = str_lit(vn);
    match &v.kind {
        VariantKind::Unit => {
            format!("{ty}::{vn} => ::serde::Content::Str(::std::string::String::from({tag})),")
        }
        VariantKind::Tuple(1) => format!(
            "{ty}::{vn}(__f0) => ::serde::Content::Map(::std::vec![(\
               ::std::string::String::from({tag}), ::serde::Serialize::to_content(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_content({b})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Content::Map(::std::vec![(\
                   ::std::string::String::from({tag}), \
                   ::serde::Content::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({}), ::serde::Serialize::to_content({f}))",
                        str_lit(f)
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                   ::std::string::String::from({tag}), \
                   ::serde::Content::Map(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(__c.field({}))?",
                        str_lit(f)
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __c.seq_items()?; \
                 if __items.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"expected {n} fields for {name}, found {{}}\", __items.len()))); \
                 }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| de_variant_arm(name, v)).collect();
            format!(
                "let (__tag, __payload) = __c.variant_parts()?; \
                 match __tag {{ {} __other => ::std::result::Result::Err(\
                   ::serde::DeError::custom(::std::format!(\
                     \"unknown variant `{{}}` of {name}\", __other))), }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ \
             {body} \
           }} \
         }}"
    )
}

fn de_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    let tag = str_lit(vn);
    let need_payload = format!(
        "__payload.ok_or_else(|| ::serde::DeError::custom(\
           ::std::format!(\"variant {{}} expects a payload\", {tag})))?"
    );
    match &v.kind {
        VariantKind::Unit => format!("{tag} => ::std::result::Result::Ok({ty}::{vn}),"),
        VariantKind::Tuple(1) => format!(
            "{tag} => {{ let __p = {need_payload}; \
               ::std::result::Result::Ok({ty}::{vn}(::serde::Deserialize::from_content(__p)?)) }},"
        ),
        VariantKind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "{tag} => {{ let __p = {need_payload}; let __items = __p.seq_items()?; \
                   if __items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::format!(\"variant {{}} expects {n} fields\", {tag}))); \
                   }} \
                   ::std::result::Result::Ok({ty}::{vn}({})) }},",
                inits.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(__p.field({}))?",
                        str_lit(f)
                    )
                })
                .collect();
            format!(
                "{tag} => {{ let __p = {need_payload}; \
                   ::std::result::Result::Ok({ty}::{vn} {{ {} }}) }},",
                inits.join(", ")
            )
        }
    }
}
