//! Offline stand-in for `serde_json`.
//!
//! Implements the surface this workspace uses: [`Value`] with indexing
//! and accessors, [`to_value`] / [`from_value`], [`to_string`] /
//! [`to_string_pretty`] / [`from_str`], and the [`json!`] macro for flat
//! object literals. Floats are printed with Rust's shortest round-trip
//! formatting, so `f64` values survive a text round-trip exactly (the
//! `float_roundtrip` feature of the real crate is the default here).

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (duplicate keys keep the first entry).
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer representations are preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// Errors from parsing, printing, or shape mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e)
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Compact JSON text (what `Value::to_string()` produces).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(o) => {
                Content::Map(o.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), Value::from_content(v)?)))
                    .collect::<Result<_, DeError>>()?,
            ),
        })
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Value::from_content(&value.to_content()).map_err(Error::from)
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value.to_content()).map_err(Error::from)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = Value::from_content(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_content(&v.to_content()).map_err(Error::from)
}

/// Builds a [`Value`] from a flat object literal or any serializable
/// expression: `json!({ "k": expr, ... })` or `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val).unwrap())),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$elem).unwrap()),*])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // Rust's `{}` is shortest-round-trip for f64, the behaviour the
            // real crate's float_roundtrip feature guarantees
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; match serde_json and emit null
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // surrogate pairs for astral-plane characters
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let src = r#"{"a":[1,2.5,-3],"b":"x\ny","c":null,"d":true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 42.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "{s}");
        }
    }

    #[test]
    fn value_accessors_and_indexing() {
        let v = json!({ "n": 3, "s": "hi", "list": vec![1u32, 2] });
        assert_eq!(v["n"].as_f64(), Some(3.0));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["s"].as_str(), Some("hi"));
        assert_eq!(v["list"][1].as_i64(), Some(2));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn unicode_escapes_parse() {
        // A = 'A'; 😀 is a surrogate pair for U+1F600
        let v: Value = from_str("\"\\u0041 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("A \u{1F600}"));
    }
}
