//! Offline stand-in for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded with SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`Rng`] helper
//! methods this workspace calls (`gen_range`, `gen_bool`, `gen`). The
//! stream differs from the real crate's ChaCha-based `StdRng` — callers
//! here only require determinism for a fixed seed, which this guarantees.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience path is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        next_f64(self) < p
    }

    /// A sample from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

fn next_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1)
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Inclusive upper bound; only needs to work where `lo <= hi`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Multiply-shift bounded sampling (Lemire, without the rejection step —
/// the bias is ≤ span/2^64, far below what any caller here can observe).
fn bounded<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // two's-complement wrapping distance is correct for signed
                // types as well
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    // the full domain: any value
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + bounded(rng, hi - lo)
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        lo + bounded(rng, span)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + next_f64(rng) * (hi - lo);
        // guard against rounding up to the excluded bound
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + next_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Standard-distribution sampling for [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        next_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: callers wanting the "small" generator get the same engine.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let inc = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
