//! Shared helpers for the golden `.pir` corpora under `tests/analyze/`.
//!
//! Three corpora share the `; expect:` header convention: the lint corpus
//! (`tests/analyze/*.pir`), the validator pairs
//! (`tests/analyze/validate/*.{src,tgt}.pir`) and the abstract-interpreter
//! corpus (`tests/analyze/absint/*.pir`). Parsing the header lives here
//! once so the convention cannot drift between suites.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Reads the `; expect: <code>, <code>` header of a golden corpus file.
/// An empty code list (a bare `; expect:`) means "must lint clean".
/// Panics when the header is missing, so a new corpus file cannot
/// accidentally pin nothing.
pub fn expected_codes(text: &str) -> BTreeSet<String> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("; expect:") {
            return rest
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect();
        }
    }
    panic!("corpus file is missing its '; expect:' header");
}

/// Reads the `; expect: proved|refuted|inconclusive` header of a
/// validator-corpus target file.
pub fn expected_verdict(text: &str) -> String {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("; expect:") {
            let v = rest.trim().to_string();
            assert!(
                matches!(v.as_str(), "proved" | "refuted" | "inconclusive"),
                "unknown expected verdict '{v}'"
            );
            return v;
        }
    }
    panic!("target file is missing its '; expect:' header");
}

/// The files of one golden corpus directory whose name ends in `suffix`
/// (e.g. `".pir"` or `".src.pir"`), sorted for deterministic iteration.
/// Subdirectories are skipped: each corpus owns exactly one directory.
pub fn corpus_files(dir: &Path, suffix: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("corpus directory {} exists: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with(suffix))
        })
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_codes_are_trimmed_and_deduplicated() {
        let codes = expected_codes("; expect: a, b , a\nmodule \"m\"\n");
        assert_eq!(codes.len(), 2);
        assert!(codes.contains("a") && codes.contains("b"));
    }

    #[test]
    fn bare_header_means_clean() {
        assert!(expected_codes("; expect:\nmodule \"m\"\n").is_empty());
    }

    #[test]
    #[should_panic(expected = "missing its '; expect:' header")]
    fn missing_header_panics() {
        expected_codes("module \"m\"\n");
    }

    #[test]
    #[should_panic(expected = "unknown expected verdict")]
    fn unknown_verdict_panics() {
        expected_verdict("; expect: maybe\n");
    }

    #[test]
    fn verdict_header_round_trips() {
        assert_eq!(expected_verdict("; expect: proved\n"), "proved");
        assert_eq!(expected_verdict("; expect:  refuted \n"), "refuted");
    }
}
