//! Umbrella crate re-exporting the POSET-RL workspace for the examples and
//! integration tests that live at the repository root.

pub mod test_support;

pub use posetrl;
pub use posetrl_embed as embed;
pub use posetrl_ir as ir;
pub use posetrl_odg as odg;
pub use posetrl_opt as opt;
pub use posetrl_rl as rl;
pub use posetrl_target as target;
pub use posetrl_workloads as workloads;
