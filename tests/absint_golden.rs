//! Golden corpus for the interprocedural abstract interpreter.
//!
//! Every `.pir` file under `tests/analyze/absint/` carries an
//! `; expect: <code>, <code>` header naming exactly the absint lint
//! codes (`range-trap`, `null-deref`, `dead-branch`) the analysis must
//! produce for it; a bare header pins a false-positive guard. The files
//! double as living documentation of what the domain can and cannot
//! prove (see DESIGN.md §11).

use posetrl_analyze::Severity;
use posetrl_ir::parser::parse_module;
use posetrl_suite::test_support::{corpus_files, expected_codes};
use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn absint_corpus_produces_exactly_the_expected_codes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/analyze/absint");
    let files = corpus_files(&dir, ".pir");
    assert!(files.len() >= 10, "corpus has at least 10 modules");

    let mut positives = 0usize;
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let expected = expected_codes(&text);
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        posetrl_ir::verifier::verify_module(&m).unwrap_or_else(|e| panic!("{name} verifies: {e}"));

        let mut diags = Vec::new();
        posetrl_analyze::absint::check(&m, &mut diags);
        let got: BTreeSet<String> = diags.iter().map(|d| d.code.to_string()).collect();
        assert_eq!(got, expected, "{name}: absint codes diverge from header");
        positives += diags.len();

        // the dump mode must render every corpus module without panicking
        let mi = posetrl_analyze::absint::analyze_module(&m);
        let dump = posetrl_analyze::absint::render(&m, &mi);
        assert!(
            dump.contains(&format!("module {}", m.name)),
            "{name}: dump names the module"
        );
    }
    assert!(
        positives >= 10,
        "the corpus must pin at least 10 true positives, got {positives}"
    );
}

#[test]
fn absint_lints_are_clean_on_the_example_modules() {
    // zero false positives on the lint-clean example programs
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/ir");
    for path in corpus_files(&dir, ".pir") {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        let mut diags = Vec::new();
        posetrl_analyze::absint::check(&m, &mut diags);
        let findings: Vec<_> = diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(
            findings.is_empty(),
            "{name}: unexpected findings {findings:?}"
        );
    }
}
