//! Interpreter-replay property test for the dependence analysis.
//!
//! Generates small affine loops (`a[c1·i + d1]`, `a[c2·i + d2]` with
//! random coefficients, offsets, trip counts and read/write kinds), runs
//! them through the interpreter to pin their concrete semantics, and then
//! replays the loop's memory-access order checking that the observed
//! conflicts never contradict what `posetrl_analyze::depend` claimed:
//!
//! - a pair with **no recorded dependence** must never touch a common
//!   cell (apart from an access trivially conflicting with itself in the
//!   same iteration, which the analysis skips by design);
//! - a dependence with a **proved distance d** must see no conflicting
//!   gap smaller than `d`;
//! - `parallel_safe` must mean no cross-iteration conflict at all, and
//!   `min_distance = k` must mean no conflicting gap below `k`.
//!
//! An unproved dependence (`distance: None`) constrains nothing — the
//! analysis is allowed to be conservative, never unsound.

use posetrl_analyze::depend::{self, DependConfig};
use posetrl_ir::interp::{Interpreter, RtVal};
use posetrl_ir::parser::parse_module;
use posetrl_ir::Op;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct AccessSpec {
    coeff: i64,
    off: i64,
    write: bool,
}

fn loop_module(a1: AccessSpec, a2: AccessSpec, trip: u64) -> String {
    let acc = |n: usize, s: AccessSpec| {
        if s.write {
            format!("store i64 %i, %p{n}")
        } else {
            format!("%v{n} = load i64, %p{n}")
        }
    };
    format!(
        r#"
module "t"
fn @main() -> i64 internal {{
bb0:
  %a = alloca i64 x 48
  memset i64 %a, 0:i64, 48:i64
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, {trip}:i64
  condbr %c, bb2, bb3
bb2:
  %e1 = mul i64 %i, {c1}:i64
  %x1 = add i64 %e1, {d1}:i64
  %p1 = gep i64, %a, %x1
  {acc1}
  %e2 = mul i64 %i, {c2}:i64
  %x2 = add i64 %e2, {d2}:i64
  %p2 = gep i64, %a, %x2
  {acc2}
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}}
"#,
        c1 = a1.coeff,
        d1 = a1.off,
        c2 = a2.coeff,
        d2 = a2.off,
        acc1 = acc(1, a1),
        acc2 = acc(2, a2),
    )
}

proptest! {
    #[test]
    fn replayed_access_orders_never_contradict_the_verdicts(
        c1 in 1i64..4,
        d1 in 0i64..5,
        w1 in any::<bool>(),
        c2 in 1i64..4,
        d2 in 0i64..5,
        w2 in any::<bool>(),
        trip in 1u64..11,
    ) {
        // at least one side must write, else the pair space is vacuous
        let a1 = AccessSpec { coeff: c1, off: d1, write: w1 };
        let a2 = AccessSpec { coeff: c2, off: d2, write: w2 || !w1 };
        let text = loop_module(a1, a2, trip);
        let m = parse_module(&text).unwrap();
        posetrl_ir::verifier::verify_module(&m).unwrap();

        // pin the concrete semantics: the loop runs to completion
        let out = Interpreter::new(&m).run("main", &[]);
        prop_assert_eq!(out.result.clone().unwrap(), Some(RtVal::Int(0)));

        let md = depend::analyze_module_cfg(&m, &DependConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let r = md.func(fid).unwrap();
        prop_assert_eq!(r.loops.len(), 1);
        let l = &r.loops[0];
        prop_assert!(!l.opaque_calls && !l.truncated);

        // the two access instructions, in program order (the fixture's
        // only loads/stores live in the loop body)
        let mut insts: Vec<u32> = Vec::new();
        for &id in f.inst_ids().iter() {
            if matches!(f.op(id), Op::Load { .. } | Op::Store { .. }) {
                insts.push(id.0);
            }
        }
        prop_assert_eq!(insts.len(), 2, "fixture has exactly two loop accesses");

        // replay the interpreter's access order: iteration-major, program
        // order within an iteration
        let specs = [a1, a2];
        let mut conflicts: Vec<(usize, usize, u64)> = Vec::new(); // (tag_a, tag_b, gap)
        for t1 in 0..trip {
            for (g1, s1) in specs.iter().enumerate() {
                for t2 in t1..trip {
                    for (g2, s2) in specs.iter().enumerate() {
                        if t2 == t1 && g2 <= g1 {
                            continue; // not after (t1, g1) in program order
                        }
                        if !s1.write && !s2.write {
                            continue;
                        }
                        let cell1 = s1.coeff * t1 as i64 + s1.off;
                        let cell2 = s2.coeff * t2 as i64 + s2.off;
                        if cell1 == cell2 {
                            conflicts.push((g1, g2, t2 - t1));
                        }
                    }
                }
            }
        }

        // global verdicts
        if l.parallel_safe {
            prop_assert!(
                conflicts.iter().all(|&(_, _, gap)| gap == 0),
                "parallel_safe loop has a cross-iteration conflict: {conflicts:?}"
            );
        }
        if let Some(k) = l.min_distance {
            prop_assert!(
                conflicts.iter().all(|&(_, _, gap)| gap == 0 || gap >= k),
                "min_distance {k} contradicted: {conflicts:?}"
            );
        }

        // per-pair verdicts: deps are keyed by access instruction ids
        let tag_of = |inst: u32| insts.iter().position(|&i| i == inst).unwrap();
        for ga in 0..2usize {
            for gb in ga..2usize {
                let pair_conflicts: Vec<u64> = conflicts
                    .iter()
                    .filter(|&&(x, y, _)| (x.min(y), x.max(y)) == (ga, gb))
                    .map(|&(_, _, gap)| gap)
                    .collect();
                let dep = l.deps.iter().find(|d| {
                    let (s, t) = (tag_of(d.src), tag_of(d.dst));
                    (s.min(t), s.max(t)) == (ga, gb)
                });
                match dep {
                    None => {
                        // proven independent: no common cell ever — except
                        // an access meeting itself in the same iteration
                        let violating: Vec<_> = pair_conflicts
                            .iter()
                            .filter(|&&gap| !(ga == gb && gap == 0))
                            .collect();
                        prop_assert!(
                            violating.is_empty(),
                            "refuted pair ({ga},{gb}) conflicts at gaps {violating:?}"
                        );
                    }
                    Some(d) => {
                        if let Some(dist) = d.distance {
                            prop_assert!(
                                pair_conflicts.iter().all(|&gap| gap == 0 || gap >= dist),
                                "distance {dist} contradicted by gaps {pair_conflicts:?}"
                            );
                            if !d.carried {
                                prop_assert_eq!(dist, 0);
                            }
                        }
                    }
                }
            }
        }
    }
}
