//! End-to-end reproduction smoke tests: train small models, evaluate them
//! against `-Oz`, and check the structural invariants the paper's results
//! depend on.

use posetrl::actions::ActionSet;
use posetrl::env::{EnvConfig, PhaseEnv};
use posetrl::eval::evaluate_suite;
use posetrl::trainer::{train, TrainerConfig};
use posetrl_ir::interp::Interpreter;
use posetrl_target::TargetArch;
use posetrl_workloads::{mibench, training_suite};

#[test]
fn trained_model_end_to_end() {
    let programs = training_suite();
    let cfg = TrainerConfig::quick();
    let model = train(&cfg, ActionSet::odg(), &programs);

    // evaluation produces full records on an unseen suite
    let benches: Vec<_> = mibench().into_iter().take(3).collect();
    let (results, stats) = evaluate_suite(&model, &benches, TargetArch::X86_64, false);
    assert_eq!(results.len(), 3);
    assert!(stats.min_size_reduction_pct <= stats.max_size_reduction_pct);

    // every optimized module preserves behaviour
    for (r, b) in results.iter().zip(&benches) {
        let before = Interpreter::new(&b.module).run("main", &[]).observation();
        let (optimized, _) = model.optimize(b.module.clone());
        let after = Interpreter::new(&optimized).run("main", &[]).observation();
        assert_eq!(before, after, "{}", r.name);
    }
}

#[test]
fn episode_rewards_telescope_to_total_improvement() {
    // the per-step rewards sum (by construction) to alpha * total size
    // improvement + beta * total throughput improvement — check numerically
    let programs = training_suite();
    let module = programs[17].module.clone();
    let cfg = EnvConfig::default();
    let mut env = PhaseEnv::new(cfg.clone(), ActionSet::odg());
    env.reset(module.clone());

    let base_size = posetrl_target::size::object_size(&module, cfg.arch).total as f64;
    let base_cycles = posetrl_target::mca::analyze(&module, cfg.arch).flat_cycles;

    let mut total_reward = 0.0;
    let mut last_size = 0.0;
    for a in [23, 8, 30, 5, 13, 0, 19, 10, 2, 27, 33, 17, 6, 31, 21] {
        let r = env.step(a);
        total_reward += r.reward;
        last_size = r.size as f64;
    }
    let final_cycles = posetrl_target::mca::analyze(env.module(), cfg.arch).flat_cycles;
    let expected = cfg.alpha * (base_size - last_size) / base_size
        + cfg.beta * (base_cycles - final_cycles) / base_cycles;
    assert!(
        (total_reward - expected).abs() < 1e-6,
        "telescoped {total_reward} vs expected {expected}"
    );
}

#[test]
fn manual_space_in_order_approximates_oz() {
    // Table II's groups cover the Oz pass set (with a couple of passes
    // regrouped by functionality, exactly as in the paper), so an in-order
    // manual episode lands very close to Oz quality — the parity floor a
    // manual-space agent always has available.
    let manual = ActionSet::manual();
    let mut concat: Vec<String> = Vec::new();
    for i in 0..manual.len() {
        concat.extend(manual.sequences[i].iter().cloned());
    }
    let mut concat_set: Vec<&str> = concat.iter().map(|s| s.as_str()).collect();
    concat_set.sort_unstable();
    concat_set.dedup();
    let mut oz_set = posetrl_opt::pipelines::oz();
    oz_set.sort_unstable();
    oz_set.dedup();
    assert_eq!(
        concat_set, oz_set,
        "manual groups cover exactly the Oz pass set"
    );

    let programs = training_suite();
    let pm = posetrl_opt::manager::PassManager::new();
    for b in programs.iter().take(6) {
        let mut via_actions = b.module.clone();
        for i in 0..manual.len() {
            pm.run_pipeline(&mut via_actions, &manual.passes(i))
                .unwrap();
        }
        let mut via_oz = b.module.clone();
        pm.run_pipeline(&mut via_oz, &posetrl_opt::pipelines::oz())
            .unwrap();

        let size_a =
            posetrl_target::size::object_size(&via_actions, TargetArch::X86_64).total as f64;
        let size_b = posetrl_target::size::object_size(&via_oz, TargetArch::X86_64).total as f64;
        assert!(
            size_a <= size_b * 1.10,
            "{}: in-order manual episode within 10% of Oz ({size_a} vs {size_b})",
            b.name
        );
    }
}

#[test]
fn model_survives_serialization_mid_pipeline() {
    let programs = training_suite();
    let model = train(&TrainerConfig::quick(), ActionSet::manual(), &programs);
    let json = model.to_json();
    let restored = posetrl::trainer::TrainedModel::from_json(&json).unwrap();
    let m = programs[3].module.clone();
    assert_eq!(
        model.predict_sequence(m.clone()),
        restored.predict_sequence(m),
        "restored model predicts identically"
    );
}
