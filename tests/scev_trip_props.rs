//! Property-based check of the SCEV trip-count engine against ground
//! truth: for randomly parameterized counted loops, the symbolic trip
//! count must agree with the iteration count the reference interpreter
//! actually observes.
//!
//! `Exact(n)` must equal the observed body-execution count exactly;
//! `Bounded(n)` must be an upper bound on it. The loop shape is the
//! canonical top-tested form every frontend emits, swept over both
//! directions, strides 1..8 and signed inits/bounds on both sides of
//! zero.

use posetrl_analyze::scev::{self, ScevConfig, TripCount};
use posetrl_ir::interp::{InterpConfig, Interpreter, RtVal};
use posetrl_ir::parser::parse_module;
use posetrl_ir::{BinOp, InstId, Op};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds the canonical counted loop `for (i = init; i <pred> bound; i += step)`.
fn loop_module(init: i64, bound: i64, pred: &str, op: &str, step: i64) -> String {
    format!(
        r#"
module "trip"
fn @main() -> i64 internal {{
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: {init}:i64], [bb2: %n]
  %c = icmp {pred} i64 %i, {bound}:i64
  condbr %c, bb2, bb3
bb2:
  %n = {op} i64 %i, {step}:i64
  br bb1
bb3:
  ret %i
}}
"#
    )
}

/// Interprets the module and returns how many times the loop body ran
/// (the execution count of the `%n` update instruction).
fn observed_iterations(m: &posetrl_ir::Module) -> u64 {
    let fid = m.func_by_name("main").unwrap();
    let f = m.func(fid).unwrap();
    let update: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&i| {
            matches!(
                f.op(i),
                Op::Bin {
                    op: BinOp::Add | BinOp::Sub,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(update.len(), 1, "exactly one update instruction");
    let out = Interpreter::with_config(
        m,
        InterpConfig {
            fuel: 20_000_000,
            max_depth: 64,
        },
    )
    .run("main", &[]);
    let ret = out.result.expect("loop terminates in fuel");
    assert!(matches!(ret, Some(RtVal::Int(_))), "returns an int");
    out.profile
        .counts
        .get(&(fid, update[0]))
        .copied()
        .unwrap_or(0)
}

fn scev_trip(m: &posetrl_ir::Module) -> TripCount {
    let ms = scev::analyze_module_cfg(m, &ScevConfig::default(), None);
    let fid = m.func_by_name("main").unwrap();
    let r = ms.func(fid).expect("main analyzed");
    assert_eq!(r.loops.len(), 1, "exactly one loop");
    r.loops[0].trip
}

fn proptest_cases() -> u32 {
    posetrl_analyze::env_budget_or_usage("POSETRL_PROPTEST_CASES", 48)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: proptest_cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Upward loops: `for (i = init; i < bound (or <=); i += step)`.
    #[test]
    fn upward_trips_match_the_interpreter(
        init in -60i64..60,
        span in 0i64..200,
        step in 1i64..8,
        inclusive in 0u8..2,
    ) {
        let bound = init + span;
        let pred = if inclusive == 1 { "sle" } else { "slt" };
        let text = loop_module(init, bound, pred, "add", step);
        let m = parse_module(&text).unwrap();
        let observed = observed_iterations(&m);
        match scev_trip(&m) {
            TripCount::Exact(n) => prop_assert_eq!(n, observed, "exact trip is ground truth"),
            TripCount::Bounded(n) => prop_assert!(n >= observed, "bound {} < observed {}", n, observed),
            TripCount::Unknown => prop_assert!(false, "constant-bound loop must classify"),
        }
    }

    /// Downward loops: `for (i = init; i > bound (or >=); i -= step)`.
    #[test]
    fn downward_trips_match_the_interpreter(
        bound in -60i64..60,
        span in 0i64..200,
        step in 1i64..8,
        inclusive in 0u8..2,
    ) {
        let init = bound + span;
        let pred = if inclusive == 1 { "sge" } else { "sgt" };
        let text = loop_module(init, bound, pred, "sub", step);
        let m = parse_module(&text).unwrap();
        let observed = observed_iterations(&m);
        match scev_trip(&m) {
            TripCount::Exact(n) => prop_assert_eq!(n, observed, "exact trip is ground truth"),
            TripCount::Bounded(n) => prop_assert!(n >= observed, "bound {} < observed {}", n, observed),
            TripCount::Unknown => prop_assert!(false, "constant-bound loop must classify"),
        }
    }

    /// `ne`-controlled loops that provably land on the bound.
    #[test]
    fn ne_trips_match_the_interpreter(
        init in -60i64..60,
        iters in 0i64..200,
        step in 1i64..8,
    ) {
        let bound = init + iters * step;
        let text = loop_module(init, bound, "ne", "add", step);
        let m = parse_module(&text).unwrap();
        let observed = observed_iterations(&m);
        prop_assert_eq!(observed, iters as u64);
        match scev_trip(&m) {
            TripCount::Exact(n) => prop_assert_eq!(n, observed, "exact trip is ground truth"),
            TripCount::Bounded(n) => prop_assert!(n >= observed, "bound {} < observed {}", n, observed),
            TripCount::Unknown => prop_assert!(false, "landing ne loop must classify"),
        }
    }
}

#[test]
fn trip_agrees_on_the_training_suite_headers() {
    // On real generated programs, wherever SCEV claims an exact trip for
    // a loop in @main, interpret the module and cross-check the observed
    // execution counts of that loop's header block against trip + entries.
    let mut checked = 0usize;
    for b in posetrl_workloads::training_suite().iter().take(6) {
        let m = &b.module;
        let Some(fid) = m.func_by_name("main") else {
            continue;
        };
        let f = m.func(fid).unwrap();
        let ms = scev::analyze_module(m);
        let Some(r) = ms.func(fid) else { continue };
        let exacts: BTreeSet<u32> = r
            .loops
            .iter()
            .filter(|l| matches!(l.trip, TripCount::Exact(_)))
            .map(|l| l.header)
            .collect();
        if exacts.is_empty() {
            continue;
        }
        let out = Interpreter::with_config(
            m,
            InterpConfig {
                fuel: 20_000_000,
                max_depth: 512,
            },
        )
        .run("main", &[]);
        if out.result.is_err() {
            continue; // fuel or runtime trap: no ground truth
        }
        for l in &r.loops {
            let TripCount::Exact(n) = l.trip else {
                continue;
            };
            let header = posetrl_ir::BlockId(l.header);
            let Some(hb) = f.block(header) else { continue };
            let Some(&first) = hb.insts.first() else {
                continue;
            };
            let header_count = out.profile.counts.get(&(fid, first)).copied().unwrap_or(0);
            // the header runs trip+1 times per entry; with E entries the
            // count is E * (n + 1) — divisibility is the invariant we can
            // assert without reconstructing E
            if header_count > 0 {
                assert_eq!(
                    header_count % (n + 1),
                    0,
                    "{}: header bb{} count {} not a multiple of trip+1 = {}",
                    m.name,
                    l.header,
                    header_count,
                    n + 1
                );
                checked += 1;
            }
        }
    }
    // the suite is generated: tolerate zero exact-trip loops in @main,
    // but report so a regression in recognition is at least visible
    eprintln!("[scev-trip] cross-checked {checked} exact-trip headers against the interpreter");
}
