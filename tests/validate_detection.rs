//! Detection and soundness proofs for the symbolic translation
//! validator (`--sanitize=validate`).
//!
//! Three layers, mirroring `analyze_diagnostics.rs` for the `full`
//! level:
//!
//! 1. **Mutation injection** — the same seeded opcode/operand/predicate
//!    corruptions, but checked at level `validate`: every
//!    behaviour-changing mutant must be flagged, either by a static
//!    refutation with an interpreter-confirmed counterexample or by
//!    the dynamic diff-execution fallback on inconclusive functions.
//! 2. **Soundness properties** — the validator must *prove* identity
//!    pipelines and pure relabelings (block-label permutation, phi
//!    incoming reordering, commutative operand swaps) on the full
//!    training corpus and on random frontend-style programs, and must
//!    never refute them.
//! 3. **Nightly sweep** — with `POSETRL_VALIDATE_SWEEP=1`, every
//!    action of both action spaces runs over the whole training corpus
//!    pass-by-pass; each changed module is validated statically. The
//!    run writes `results/validate_sweep.json` and enforces the
//!    headline criteria: zero refutations of real passes, and a static
//!    proved rate of at least 70% of (pass, module) applications.

use posetrl_analyze::{validate_transform, SanitizeLevel, Sanitizer, ValidateConfig};
use posetrl_ir::inst::{BinOp, Op};
use posetrl_ir::interp::Interpreter;
use posetrl_ir::module::Function;
use posetrl_ir::parser::parse_module;
use posetrl_ir::printer::print_module;
use posetrl_ir::value::Value;
use posetrl_ir::Module;
use posetrl_opt::manager::PassManager;
use posetrl_workloads::{generate, ProgramKind, ProgramSpec, SizeClass};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// 1. mutation injection at level `validate`
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    OpcodeFlip,
    OperandSwap,
    PredFlip,
}

const MUTATIONS: [Mutation; 3] = [
    Mutation::OpcodeFlip,
    Mutation::OperandSwap,
    Mutation::PredFlip,
];

/// Applies `which` at its first applicable site; `false` if none exists.
fn inject(m: &mut Module, which: Mutation) -> bool {
    let fids: Vec<_> = m.func_ids().collect();
    for fid in fids {
        if m.func(fid).unwrap().is_decl {
            continue;
        }
        let f = m.func_mut(fid).unwrap();
        for id in f.inst_ids() {
            let op = f.op(id).clone();
            match (which, op) {
                (
                    Mutation::OpcodeFlip,
                    Op::Bin {
                        op: BinOp::Add,
                        ty,
                        lhs,
                        rhs,
                    },
                ) if lhs != rhs => {
                    f.inst_mut(id).unwrap().op = Op::Bin {
                        op: BinOp::Sub,
                        ty,
                        lhs,
                        rhs,
                    };
                    return true;
                }
                (Mutation::OperandSwap, Op::Bin { op, ty, lhs, rhs })
                    if matches!(op, BinOp::Sub | BinOp::SDiv) && lhs != rhs =>
                {
                    f.inst_mut(id).unwrap().op = Op::Bin {
                        op,
                        ty,
                        lhs: rhs,
                        rhs: lhs,
                    };
                    return true;
                }
                (
                    Mutation::PredFlip,
                    Op::Icmp {
                        pred: posetrl_ir::inst::IntPred::Slt,
                        ty,
                        lhs,
                        rhs,
                    },
                ) => {
                    f.inst_mut(id).unwrap().op = Op::Icmp {
                        pred: posetrl_ir::inst::IntPred::Sgt,
                        ty,
                        lhs,
                        rhs,
                    };
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

fn observe(m: &Module) -> posetrl_ir::interp::Observation {
    Interpreter::new(m).run("main", &[]).observation()
}

#[test]
fn validate_level_mutation_injection_is_always_detected() {
    let pm = PassManager::new();
    let san = Sanitizer::new(SanitizeLevel::Validate);
    let mut seeded = 0usize;
    let mut detected = 0usize;

    for b in posetrl_workloads::training_suite().iter().step_by(5) {
        let mut optimized = b.module.clone();
        pm.run_pipeline(&mut optimized, &["mem2reg", "instcombine"])
            .unwrap();

        for mutation in MUTATIONS {
            let mut corrupt = optimized.clone();
            if !inject(&mut corrupt, mutation) {
                continue;
            }
            if posetrl_ir::verifier::verify_module(&corrupt).is_err() {
                continue;
            }
            let before = observe(&b.module);
            if before.result.is_err() || before == observe(&corrupt) {
                continue;
            }

            seeded += 1;
            let verdict = san.check_transform("lying-pass", &b.module, &corrupt, None);
            assert!(
                verdict.is_fatal(),
                "{}/{mutation:?}: behaviour-changing mutant escaped level validate",
                b.name
            );
            let mc = verdict
                .miscompile
                .as_ref()
                .unwrap_or_else(|| panic!("{}/{mutation:?}: fatal but no repro", b.name));
            assert!(
                !mc.repro.is_empty() && mc.repro_insts <= b.module.num_insts(),
                "{}/{mutation:?}: repro is well-formed",
                b.name
            );
            detected += 1;
        }
    }

    assert!(seeded >= 10, "meaningful mutant population, got {seeded}");
    assert_eq!(
        detected, seeded,
        "100% combined static+fallback detection required"
    );
    let stats = san.stats();
    assert_eq!(stats.miscompiles, seeded as u64, "{stats:?}");
    // the mutants live in reachable arithmetic of bounded programs, so a
    // real share must fall to the *static* refuter, not just the fallback
    assert!(
        stats.validate_refuted > 0,
        "at least one mutant must be statically refuted: {stats:?}"
    );
}

// ---------------------------------------------------------------------------
// 2. soundness: identity and pure relabelings are proved, never refuted
// ---------------------------------------------------------------------------

/// Rebuilds `f` as a pure relabeling: non-entry blocks are re-added in
/// reverse arena order (permuting the printed `bbN` labels), every
/// phi's incoming list is reversed, and commutative binop operands are
/// swapped. The printed text changes on any branchy function; the
/// semantics provably do not.
fn relabel_function(f: &Function) -> Function {
    let mut nf = Function::new(f.name.clone(), f.params.clone(), f.ret);
    nf.linkage = f.linkage;
    nf.attrs = f.attrs;

    // block map: entry keeps id 0, the rest are re-added reversed
    let mut bmap: HashMap<_, _> = HashMap::new();
    bmap.insert(f.entry, nf.entry);
    let others: Vec<_> = f.block_ids().filter(|&b| b != f.entry).collect();
    for &b in others.iter().rev() {
        bmap.insert(b, nf.add_block());
    }

    // append instructions (old operand/block ids for now), then remap
    let mut imap: HashMap<_, _> = HashMap::new();
    let mut order: Vec<_> = vec![f.entry];
    order.extend(others.iter().rev().copied());
    for &b in &order {
        for &id in &f.block(b).unwrap().insts {
            imap.insert(id, nf.append_inst(bmap[&b], f.op(id).clone()));
        }
    }
    for id in nf.inst_ids() {
        let mut op = nf.op(id).clone();
        op.map_operands(|v| match v {
            Value::Inst(old) => Value::Inst(imap[&old]),
            other => other,
        });
        match &mut op {
            Op::Br { target } => *target = bmap[target],
            Op::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = bmap[then_bb];
                *else_bb = bmap[else_bb];
            }
            Op::Phi { incomings, .. } => {
                for (b, _) in incomings.iter_mut() {
                    *b = bmap[b];
                }
                incomings.reverse();
            }
            Op::Bin {
                op: bop, lhs, rhs, ..
            } if bop.is_commutative() => {
                std::mem::swap(lhs, rhs);
            }
            _ => {}
        }
        nf.inst_mut(id).unwrap().op = op;
    }
    nf
}

/// Applies [`relabel_function`] to every defined function of `m`.
fn relabel(m: &Module) -> Module {
    let mut nm = Module::new(m.name.clone());
    for gid in m.global_ids() {
        nm.add_global(m.global(gid).unwrap().clone());
    }
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            nm.add_function(f.clone());
        } else {
            nm.add_function(relabel_function(f));
        }
    }
    nm
}

/// Asserts the validator's soundness contract on a known-correct pair.
fn assert_proved(name: &str, src: &Module, tgt: &Module, cfg: &ValidateConfig) {
    let mv = validate_transform(src, tgt, cfg);
    assert_eq!(
        mv.refuted(),
        0,
        "{name}: refuted a semantics-preserving transform: {:?}",
        mv.first_refutation()
    );
    assert!(
        mv.all_proved(),
        "{name}: failed to prove a pure relabeling: {:?}",
        mv.funcs
            .iter()
            .map(|fv| (fv.name.as_str(), format!("{:?}", fv.verdict)))
            .collect::<Vec<_>>()
    );
}

#[test]
fn validator_proves_identity_and_relabeling_on_the_corpus() {
    let cfg = ValidateConfig::default();
    for b in posetrl_workloads::training_suite() {
        // identity: the structural fast path must make this instant
        assert_proved(&b.name, &b.module, &b.module.clone(), &cfg);

        // pure relabeling: the text differs, forcing the symbolic route
        let ren = relabel(&b.module);
        posetrl_ir::verifier::verify_module(&ren)
            .unwrap_or_else(|e| panic!("{}: relabeling broke the module: {e}", b.name));
        assert_proved(&b.name, &b.module, &ren, &cfg);
    }
}

fn kind_from(i: u8) -> ProgramKind {
    ProgramKind::ALL[i as usize % ProgramKind::ALL.len()]
}

fn proptest_cases() -> u32 {
    posetrl_analyze::env_budget_or_usage("POSETRL_PROPTEST_CASES", 24)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: proptest_cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Random frontend-style programs: identity and relabeling pipelines
    /// are proved for every function, for all inputs, without running
    /// the program once.
    #[test]
    fn validator_proves_relabeled_random_programs(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
    ) {
        let spec = ProgramSpec {
            name: "vprop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed,
        };
        let m = generate(&spec);
        let cfg = ValidateConfig::default();

        let mv = validate_transform(&m, &m.clone(), &cfg);
        prop_assert!(mv.all_proved(), "identity must be proved structurally");

        let ren = relabel(&m);
        let mv = validate_transform(&m, &ren, &cfg);
        prop_assert_eq!(mv.refuted(), 0, "refuted a relabeling");
        prop_assert!(
            mv.all_proved(),
            "relabeling not proved: {:?}",
            mv.funcs
                .iter()
                .map(|fv| (fv.name.as_str(), format!("{:?}", fv.verdict)))
                .collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------------
// 3. nightly sweep (opt-in: POSETRL_VALIDATE_SWEEP=1)
// ---------------------------------------------------------------------------

#[test]
fn full_corpus_action_sweep_meets_the_proved_rate_floor() {
    if std::env::var("POSETRL_VALIDATE_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    let pm = PassManager::new();
    let cfg = ValidateConfig::from_env();
    // corpus stride for quick local measurements; nightly runs at 1
    let step: usize = posetrl_analyze::env_budget_or_usage("POSETRL_VALIDATE_SWEEP_STEP", 1);

    // (pass, module) applications: a pass applied to a module state.
    // A no-op application (pass leaves the module byte-identical) is
    // proved structurally; `changed` counts the ones that needed real
    // validation work.
    let mut applications = 0usize;
    let mut changed = 0usize;
    let mut proved = 0usize;
    let mut refuted = 0usize;
    let mut inconclusive = 0usize;
    let mut fn_proved = 0usize;
    let mut fn_refuted = 0usize;
    let mut fn_inconclusive = 0usize;
    let mut refutations: Vec<String> = Vec::new();
    let mut reasons: HashMap<String, usize> = HashMap::new();

    for space in [
        posetrl_odg::ActionSpace::manual(),
        posetrl_odg::ActionSpace::odg(),
    ] {
        for b in posetrl_workloads::training_suite().iter().step_by(step) {
            for a in 0..space.len() {
                let mut m = b.module.clone();
                for pass in space.subsequence(a) {
                    let pre = m.clone();
                    pm.run_pass(&mut m, pass).unwrap();
                    applications += 1;
                    if print_module(&pre) == print_module(&m) {
                        proved += 1; // no-op application: proved structurally
                        continue;
                    }
                    changed += 1;
                    let mv = validate_transform(&pre, &m, &cfg);
                    fn_proved += mv.proved();
                    fn_refuted += mv.refuted();
                    fn_inconclusive += mv.inconclusive();
                    for fv in &mv.funcs {
                        if let posetrl_analyze::Verdict::Inconclusive(why) = &fv.verdict {
                            *reasons.entry(why.clone()).or_default() += 1;
                        }
                    }
                    if mv.refuted() > 0 {
                        refuted += 1;
                        refutations.push(format!(
                            "[{}] action {a} pass {pass} on '{}'",
                            space.kind().name(),
                            b.name
                        ));
                    } else if mv.all_proved() {
                        proved += 1;
                    } else {
                        inconclusive += 1;
                    }
                }
            }
        }
    }

    let rate = proved as f64 / applications.max(1) as f64;
    let changed_rate =
        (proved + changed).saturating_sub(applications) as f64 / changed.max(1) as f64;
    let functions = serde_json::json!({
        "proved": fn_proved,
        "refuted": fn_refuted,
        "inconclusive": fn_inconclusive,
    });
    let mut reason_rows: Vec<_> = reasons.into_iter().collect();
    reason_rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    let reason_rows: Vec<String> = reason_rows
        .into_iter()
        .map(|(why, n)| format!("{n}x {why}"))
        .collect();
    let payload = serde_json::json!({
        "applications": applications,
        "changed": changed,
        "proved": proved,
        "refuted": refuted,
        "inconclusive": inconclusive,
        "proved_rate": rate,
        "changed_proved_rate": changed_rate,
        "functions": functions,
        "inconclusive_reasons": reason_rows,
        "refutations": refutations,
    });
    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/validate_sweep.json",
        serde_json::to_string_pretty(&payload).unwrap(),
    )
    .unwrap();
    eprintln!(
        "[validate-sweep] {applications} applications ({changed} changed): \
         {proved} proved, {refuted} refuted, {inconclusive} inconclusive \
         (rate {rate:.3}, changed-only {changed_rate:.3})"
    );

    assert_eq!(refuted, 0, "real passes were refuted: {refutations:?}");
    assert!(
        rate >= 0.7,
        "static proved rate {rate:.3} is below the 0.70 floor"
    );
}

// ---------------------------------------------------------------------------
// sanity: the relabeling really changes the printed text somewhere
// ---------------------------------------------------------------------------

#[test]
fn relabeling_changes_text_on_branchy_functions() {
    let text = "module \"t\"\n\nfn @f(i64) -> i64 internal {\nbb0:\n  %c = icmp sgt i64 %arg0, 0:i64\n  condbr %c, bb1, bb2\nbb1:\n  %a = add i64 %arg0, 1:i64\n  br bb3\nbb2:\n  %b = sub i64 %arg0, 1:i64\n  br bb3\nbb3:\n  %p = phi i64 [bb1: %a], [bb2: %b]\n  ret %p\n}\n";
    let m = parse_module(text).unwrap();
    let ren = relabel(&m);
    assert_ne!(
        print_module(&m),
        print_module(&ren),
        "relabeling must defeat the structural fast path"
    );
}
