//! Nightly absint sweep (opt-in: `POSETRL_ABSINT_SWEEP=1`).
//!
//! Runs the abstract interpreter's lints over the whole training corpus
//! and applies `rangeopt` (raw and behind two canonicalizing prefixes),
//! discharging every module-changing application through the symbolic
//! translation validator. Archives lint counts and the
//! proved/refuted/inconclusive rewrite rates as
//! `results/absint_sweep.json` for the nightly CI artifact.
//!
//! The hard gate: **zero refuted applications**. An inconclusive verdict
//! is acceptable (the validator's budgets are finite) and its rate is
//! reported; a refutation means the simplifier trusted a fact the domain
//! did not actually prove.

use posetrl_analyze::{validate_transform, ValidateConfig};
use posetrl_ir::printer::print_module;
use posetrl_opt::manager::PassManager;
use std::collections::BTreeMap;

#[test]
fn absint_sweep_archives_lint_counts_and_rewrite_rates() {
    if std::env::var("POSETRL_ABSINT_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    // corpus stride for quick local measurements; nightly runs at 1
    let step: usize = posetrl_analyze::env_budget_or_usage("POSETRL_ABSINT_SWEEP_STEP", 1);
    let pm = PassManager::new();
    let cfg = ValidateConfig::from_env();

    const PREFIXES: [&[&str]; 3] = [&[], &["mem2reg", "instcombine"], &["sccp", "simplifycfg"]];

    let mut modules = 0usize;
    let mut lint_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut applications = 0usize;
    let mut changed = 0usize;
    let mut proved = 0usize;
    let mut refuted = 0usize;
    let mut inconclusive = 0usize;
    let mut refutations: Vec<String> = Vec::new();

    for b in posetrl_workloads::training_suite().iter().step_by(step) {
        modules += 1;
        let mut diags = Vec::new();
        posetrl_analyze::absint::check(&b.module, &mut diags);
        for d in &diags {
            *lint_counts.entry(d.code.to_string()).or_default() += 1;
        }

        for prefix in PREFIXES {
            let mut m = b.module.clone();
            for p in prefix {
                pm.run_pass(&mut m, p).unwrap();
            }
            let pre = m.clone();
            pm.run_pass(&mut m, "rangeopt").unwrap();
            applications += 1;
            if print_module(&pre) == print_module(&m) {
                continue; // no-op application: nothing to discharge
            }
            changed += 1;
            let mv = validate_transform(&pre, &m, &cfg);
            if mv.refuted() > 0 {
                refuted += 1;
                refutations.push(format!("rangeopt after {prefix:?} on '{}'", b.name));
            } else if mv.all_proved() {
                proved += 1;
            } else {
                inconclusive += 1;
            }
        }
    }

    let proved_rate = proved as f64 / changed.max(1) as f64;
    let inconclusive_rate = inconclusive as f64 / changed.max(1) as f64;
    let rangeopt = serde_json::json!({
        "applications": applications,
        "changed": changed,
        "proved": proved,
        "refuted": refuted,
        "inconclusive": inconclusive,
        "proved_rate": proved_rate,
        "inconclusive_rate": inconclusive_rate,
    });
    let payload = serde_json::json!({
        "modules": modules,
        "lints": lint_counts,
        "rangeopt": rangeopt,
        "refutations": refutations,
    });
    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/absint_sweep.json",
        serde_json::to_string_pretty(&payload).unwrap(),
    )
    .unwrap();
    eprintln!(
        "[absint-sweep] {modules} modules: {applications} rangeopt applications \
         ({changed} changed): {proved} proved, {refuted} refuted, \
         {inconclusive} inconclusive (proved rate {proved_rate:.3})"
    );

    assert_eq!(
        refuted, 0,
        "rangeopt rewrites were refuted: {refutations:?}"
    );
    assert!(
        changed > 0,
        "rangeopt never fired on the corpus — the sweep measured nothing"
    );
}
