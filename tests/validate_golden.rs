//! Golden corpus for the symbolic translation validator.
//!
//! Every case under `tests/analyze/validate/` is a `<name>.src.pir` /
//! `<name>.tgt.pir` pair: the module before and after a (claimed)
//! semantics-preserving transform. The target file carries an
//! `; expect: proved|refuted|inconclusive` header naming the verdict
//! the validator must reach for the pair. The corpus pins down the
//! refinement edge cases prose cannot: trap hoisting out of guards,
//! undef widening vs. narrowing, phi reordering, off-by-one unrolls
//! and symbolic trip counts that must stay inconclusive rather than
//! guessed.

use posetrl_analyze::{validate_transform, ValidateConfig, Verdict};
use posetrl_ir::parser::parse_module;
use posetrl_suite::test_support::{corpus_files, expected_verdict};
use std::path::{Path, PathBuf};

/// Collapses a module validation to the corpus verdict word: any
/// refutation dominates, then any inconclusive, else proved.
fn overall(mv: &posetrl_analyze::ModuleValidation) -> &'static str {
    if mv.refuted() > 0 {
        "refuted"
    } else if mv.inconclusive() > 0 {
        "inconclusive"
    } else {
        "proved"
    }
}

#[test]
fn validate_golden_pairs_match_their_expected_verdicts() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/analyze/validate");
    let mut pairs: Vec<(String, PathBuf, PathBuf)> = corpus_files(&dir, ".src.pir")
        .into_iter()
        .map(|src| {
            let stem = src
                .file_name()
                .unwrap()
                .to_string_lossy()
                .trim_end_matches(".src.pir")
                .to_string();
            let tgt = dir.join(format!("{stem}.tgt.pir"));
            assert!(tgt.exists(), "{stem}: missing .tgt.pir half of the pair");
            (stem, src, tgt)
        })
        .collect();
    pairs.sort();
    assert!(pairs.len() >= 10, "corpus has at least 10 pairs");

    let cfg = ValidateConfig::default();
    for (name, src_path, tgt_path) in pairs {
        let src_text = std::fs::read_to_string(&src_path).unwrap();
        let tgt_text = std::fs::read_to_string(&tgt_path).unwrap();
        let expected = expected_verdict(&tgt_text);
        let src = parse_module(&src_text).unwrap_or_else(|e| panic!("{name}.src parses: {e}"));
        let tgt = parse_module(&tgt_text).unwrap_or_else(|e| panic!("{name}.tgt parses: {e}"));

        let mv = validate_transform(&src, &tgt, &cfg);
        let got = overall(&mv);
        assert_eq!(
            got,
            expected,
            "{name}: verdict diverges from header; per-function: {:?}",
            mv.funcs
                .iter()
                .map(|fv| (
                    fv.name.as_str(),
                    match &fv.verdict {
                        Verdict::Proved => "proved".to_string(),
                        Verdict::Refuted(_) => "refuted".to_string(),
                        Verdict::Inconclusive(why) => format!("inconclusive: {why}"),
                    }
                ))
                .collect::<Vec<_>>()
        );

        // every refutation ships an interpreter-confirmed counterexample
        if expected == "refuted" {
            let (fname, cex) = mv.first_refutation().unwrap();
            assert!(!cex.entry.is_empty(), "{name}/{fname}: empty entry");
            assert_ne!(
                cex.src_obs, cex.tgt_obs,
                "{name}/{fname}: counterexample observations must differ"
            );
        }
    }
}
