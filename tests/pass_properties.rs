//! Property-based testing of the optimization substrate: for randomly
//! generated programs and randomly ordered pass sequences, every
//! transformation must keep the module verifier-clean and preserve the
//! observable behaviour defined by the reference interpreter.
//!
//! This is the repo's strongest correctness instrument: it exercises
//! exactly the state space the RL agent explores (arbitrary sub-sequence
//! orderings on arbitrary frontend-style programs).

use posetrl_ir::interp::{InterpConfig, Interpreter, Observation};
use posetrl_ir::verifier::verify_module;
use posetrl_odg::ActionSpace;
use posetrl_opt::manager::PassManager;
use posetrl_workloads::{generate, ProgramKind, ProgramSpec, SizeClass};
use proptest::prelude::*;

fn observe(m: &posetrl_ir::Module) -> Observation {
    Interpreter::with_config(
        m,
        InterpConfig {
            fuel: 20_000_000,
            max_depth: 512,
        },
    )
    .run("main", &[])
    .observation()
}

fn kind_from(i: u8) -> ProgramKind {
    ProgramKind::ALL[i as usize % ProgramKind::ALL.len()]
}

/// Cases per property: 24 by default, raised via `POSETRL_PROPTEST_CASES`
/// on the nightly CI profile (the vendored proptest stand-in does not read
/// environment variables itself).
fn proptest_cases() -> u32 {
    posetrl_analyze::env_budget_or_usage("POSETRL_PROPTEST_CASES", 24)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: proptest_cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Random single passes on random programs preserve semantics.
    #[test]
    fn random_passes_preserve_semantics(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
        pass_picks in prop::collection::vec(0usize..1_000, 1..10),
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed,
        };
        let m0 = generate(&spec);
        let before = observe(&m0);

        let pm = PassManager::new();
        let names = pm.pass_names();
        let mut m = m0.clone();
        let mut applied = Vec::new();
        for pick in &pass_picks {
            let pass = names[pick % names.len()];
            applied.push(pass);
            pm.run_pass(&mut m, pass).unwrap();
            if let Err(e) = verify_module(&m) {
                panic!("verifier failed after {applied:?}: {e}");
            }
        }
        let after = observe(&m);
        prop_assert_eq!(before, after, "behaviour changed by {:?}", applied);
    }

    /// Random ODG/manual action sequences (what the agent actually applies)
    /// preserve semantics.
    #[test]
    fn random_action_episodes_preserve_semantics(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
        use_odg in any::<bool>(),
        actions in prop::collection::vec(0usize..1_000, 1..8),
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed: seed.wrapping_add(77),
        };
        let m0 = generate(&spec);
        let before = observe(&m0);

        let space = if use_odg { ActionSpace::odg() } else { ActionSpace::manual() };
        let pm = PassManager::new();
        let mut m = m0.clone();
        let mut applied = Vec::new();
        for a in &actions {
            let idx = a % space.len();
            applied.push(idx);
            pm.run_pipeline(&mut m, space.subsequence(idx)).unwrap();
            if let Err(e) = verify_module(&m) {
                panic!("verifier failed after {} actions {applied:?}: {e}", space.kind().name());
            }
        }
        let after = observe(&m);
        prop_assert_eq!(before, after, "{} actions {:?} changed behaviour", space.kind().name(), applied);
    }

    /// Composition: any *pair* of action sub-sequences applied back-to-back
    /// preserves interpreter observations — and so does the reversed pair.
    /// Single-action properties can miss bugs where one pass leaves a state
    /// that is verifier-clean but miscompiled by a follow-up pass; episodes
    /// are exactly such chains, so pairs are the minimal composition unit
    /// worth pinning separately.
    #[test]
    fn pass_pair_composition_preserves_semantics(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
        use_odg in any::<bool>(),
        first in 0usize..1_000,
        second in 0usize..1_000,
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed: seed.wrapping_add(131),
        };
        let m0 = generate(&spec);
        let before = observe(&m0);

        let space = if use_odg { ActionSpace::odg() } else { ActionSpace::manual() };
        let a = first % space.len();
        let b = second % space.len();
        let pm = PassManager::new();
        for order in [[a, b], [b, a]] {
            let mut m = m0.clone();
            for &idx in &order {
                pm.run_pipeline(&mut m, space.subsequence(idx)).unwrap();
                if let Err(e) = verify_module(&m) {
                    panic!("verifier failed in {} pair {order:?} at {idx}: {e}", space.kind().name());
                }
            }
            let after = observe(&m);
            prop_assert_eq!(
                &before,
                &after,
                "{} pair {:?} changed behaviour",
                space.kind().name(),
                order
            );
        }
    }

    /// `rangeopt` (the absint-driven simplifier) composed with every other
    /// registered pass, in both orders, preserves interpreter observables.
    /// rangeopt's rewrites rest on whole-module summaries, so the risky
    /// interactions are exactly with passes that change the call graph or
    /// CFG underneath it — this pins all of them.
    #[test]
    fn rangeopt_pairs_with_every_pass_preserve_semantics(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
        other_pick in 0usize..1_000,
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed: seed.wrapping_add(211),
        };
        let m0 = generate(&spec);
        let before = observe(&m0);

        let pm = PassManager::new();
        let names = pm.pass_names();
        let other = names[other_pick % names.len()];
        for order in [["rangeopt", other], [other, "rangeopt"]] {
            let mut m = m0.clone();
            for pass in order {
                pm.run_pass(&mut m, pass).unwrap();
                if let Err(e) = verify_module(&m) {
                    panic!("verifier failed in rangeopt pair {order:?} at {pass}: {e}");
                }
            }
            let after = observe(&m);
            prop_assert_eq!(&before, &after, "rangeopt pair {:?} changed behaviour", order);
        }
    }

    /// `dse` (alias-backed store elimination and store-to-load forwarding)
    /// composed with every other registered pass, in both orders, preserves
    /// interpreter observables. dse leans on interprocedural points-to
    /// summaries and MemorySSA-style reachability, so the risky partners are
    /// passes that inline, split blocks, or rewrite pointer arithmetic
    /// underneath those facts — this pins all of them.
    #[test]
    fn dse_pairs_with_every_pass_preserve_semantics(
        seed in 0u64..5_000,
        kind_idx in 0u8..8,
        other_pick in 0usize..1_000,
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed: seed.wrapping_add(409),
        };
        let m0 = generate(&spec);
        let before = observe(&m0);

        let pm = PassManager::new();
        let names = pm.pass_names();
        let other = names[other_pick % names.len()];
        for order in [["dse", other], [other, "dse"]] {
            let mut m = m0.clone();
            for pass in order {
                pm.run_pass(&mut m, pass).unwrap();
                if let Err(e) = verify_module(&m) {
                    panic!("verifier failed in dse pair {order:?} at {pass}: {e}");
                }
            }
            let after = observe(&m);
            prop_assert_eq!(&before, &after, "dse pair {:?} changed behaviour", order);
        }
    }

    /// Object size and MCA throughput are well-defined at every point the
    /// agent can reach.
    #[test]
    fn measurements_total_on_reachable_states(
        seed in 0u64..2_000,
        kind_idx in 0u8..8,
        actions in prop::collection::vec(0usize..34, 0..6),
    ) {
        let spec = ProgramSpec {
            name: "prop".into(),
            kind: kind_from(kind_idx),
            size: SizeClass::Small,
            seed: seed.wrapping_add(31),
        };
        let mut m = generate(&spec);
        let space = ActionSpace::odg();
        let pm = PassManager::new();
        for a in &actions {
            pm.run_pipeline(&mut m, space.subsequence(a % space.len())).unwrap();
        }
        for arch in posetrl_target::TargetArch::ALL {
            let s = posetrl_target::size::object_size(&m, arch);
            prop_assert!(s.total > 0);
            let r = posetrl_target::mca::analyze(&m, arch);
            prop_assert!(r.throughput.is_finite() && r.throughput > 0.0);
            let e = posetrl_embed::Embedder::default().embed_module(&m);
            prop_assert!(e.iter().all(|x| x.is_finite()));
        }
    }
}
