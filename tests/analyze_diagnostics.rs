//! Golden-diagnostics corpus plus the mutation-injection proof that the
//! pass-pipeline sanitizer actually catches miscompiles.
//!
//! Three layers:
//!
//! 1. **Golden corpus** — every `.pir` file under `tests/analyze/` carries
//!    an `; expect: <code>, <code>` header naming exactly the diagnostic
//!    codes the lint suite must produce for it. Files double as living
//!    documentation of what each lint catches.
//! 2. **Mutation injection** — seeded opcode/operand corruptions are
//!    applied to optimizer output over the training corpus, keeping only
//!    mutants whose observable behaviour provably changed; the sanitizer
//!    at level `full` must then flag **every single one** as a miscompile
//!    (the detector has no excuse: the ground truth is known).
//! 3. **Nightly sweep** — with `POSETRL_SANITIZE_SWEEP=1`, every action of
//!    both action spaces runs over the whole training corpus under
//!    `run_pipeline_sanitized` at level `full`; any fatal verdict fails.

use posetrl_analyze::{SanitizeLevel, Sanitizer};
use posetrl_ir::inst::{BinOp, Op};
use posetrl_ir::interp::Interpreter;
use posetrl_ir::parser::parse_module;
use posetrl_ir::Module;
use posetrl_opt::manager::PassManager;
use posetrl_suite::test_support::{corpus_files, expected_codes};
use std::collections::BTreeSet;
use std::path::Path;

// ---------------------------------------------------------------------------
// 1. golden corpus
// ---------------------------------------------------------------------------

#[test]
fn golden_corpus_produces_exactly_the_expected_codes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/analyze");
    let files = corpus_files(&dir, ".pir");
    assert!(files.len() >= 10, "corpus has at least 10 modules");

    let san = Sanitizer::new(SanitizeLevel::Verify);
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let expected = expected_codes(&text);
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        let got: BTreeSet<String> = san
            .check_module(&m)
            .iter()
            .map(|d| d.code.to_string())
            .collect();
        assert_eq!(
            got, expected,
            "{name}: diagnostic codes diverge from header"
        );
    }
}

// ---------------------------------------------------------------------------
// 2. mutation injection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    /// Flip the first `add` whose operands differ into a `sub`.
    OpcodeFlip,
    /// Swap the operands of the first non-commutative `sub`/`sdiv`.
    OperandSwap,
    /// Flip the first `icmp` `slt` into `sgt` (branch polarity change).
    PredFlip,
}

const MUTATIONS: [Mutation; 3] = [
    Mutation::OpcodeFlip,
    Mutation::OperandSwap,
    Mutation::PredFlip,
];

/// Applies `which` at its first applicable site; `false` if no site exists.
fn inject(m: &mut Module, which: Mutation) -> bool {
    let fids: Vec<_> = m.func_ids().collect();
    for fid in fids {
        if m.func(fid).unwrap().is_decl {
            continue;
        }
        let f = m.func_mut(fid).unwrap();
        let ids = f.inst_ids();
        for id in ids {
            let op = f.op(id).clone();
            match (which, op) {
                (
                    Mutation::OpcodeFlip,
                    Op::Bin {
                        op: BinOp::Add,
                        ty,
                        lhs,
                        rhs,
                    },
                ) if lhs != rhs => {
                    f.inst_mut(id).unwrap().op = Op::Bin {
                        op: BinOp::Sub,
                        ty,
                        lhs,
                        rhs,
                    };
                    return true;
                }
                (Mutation::OperandSwap, Op::Bin { op, ty, lhs, rhs })
                    if matches!(op, BinOp::Sub | BinOp::SDiv) && lhs != rhs =>
                {
                    f.inst_mut(id).unwrap().op = Op::Bin {
                        op,
                        ty,
                        lhs: rhs,
                        rhs: lhs,
                    };
                    return true;
                }
                (
                    Mutation::PredFlip,
                    Op::Icmp {
                        pred: posetrl_ir::inst::IntPred::Slt,
                        ty,
                        lhs,
                        rhs,
                    },
                ) => {
                    f.inst_mut(id).unwrap().op = Op::Icmp {
                        pred: posetrl_ir::inst::IntPred::Sgt,
                        ty,
                        lhs,
                        rhs,
                    };
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

fn observe(m: &Module) -> posetrl_ir::interp::Observation {
    Interpreter::new(m).run("main", &[]).observation()
}

#[test]
fn mutation_injection_is_always_detected() {
    let pm = PassManager::new();
    let san = Sanitizer::new(SanitizeLevel::Full);
    let mut seeded = 0usize;
    let mut detected = 0usize;

    for b in posetrl_workloads::training_suite().iter().step_by(5) {
        // the "pass" whose output we corrupt: a real mem2reg+instcombine run
        let mut optimized = b.module.clone();
        pm.run_pipeline(&mut optimized, &["mem2reg", "instcombine"])
            .unwrap();

        for mutation in MUTATIONS {
            let mut corrupt = optimized.clone();
            if !inject(&mut corrupt, mutation) {
                continue;
            }
            // ground truth: keep only mutants that verify but demonstrably
            // change clean-running observable behaviour — those are exactly
            // the silent miscompiles the sanitizer exists for
            if posetrl_ir::verifier::verify_module(&corrupt).is_err() {
                continue;
            }
            let before = observe(&b.module);
            if before.result.is_err() || before == observe(&corrupt) {
                continue;
            }

            seeded += 1;
            let verdict = san.check_transform("lying-pass", &b.module, &corrupt, None);
            if verdict.is_fatal() {
                let mc = verdict
                    .miscompile
                    .as_ref()
                    .unwrap_or_else(|| panic!("{}/{mutation:?}: fatal but no repro", b.name));
                // without a reapply closure the repro is the unreduced pre
                // module, so bound it by that
                assert!(
                    !mc.repro.is_empty() && mc.repro_insts <= b.module.num_insts(),
                    "{}/{mutation:?}: repro is well-formed",
                    b.name
                );
                detected += 1;
            } else {
                panic!(
                    "{}/{mutation:?}: behaviour-changing mutant escaped the sanitizer",
                    b.name
                );
            }
        }
    }

    assert!(
        seeded >= 10,
        "the corpus must yield a meaningful mutant population, got {seeded}"
    );
    assert_eq!(
        detected, seeded,
        "100% of seeded miscompiles must be detected"
    );
    let stats = san.stats();
    assert_eq!(stats.miscompiles, seeded as u64, "{stats:?}");
}

// ---------------------------------------------------------------------------
// 3. nightly full-corpus sweep (opt-in: POSETRL_SANITIZE_SWEEP=1)
// ---------------------------------------------------------------------------

#[test]
fn full_corpus_action_sweep_is_diagnostic_clean() {
    if std::env::var("POSETRL_SANITIZE_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    let pm = PassManager::new();
    let san = Sanitizer::new(SanitizeLevel::Full);
    for space in [
        posetrl_odg::ActionSpace::manual(),
        posetrl_odg::ActionSpace::odg(),
    ] {
        for b in posetrl_workloads::training_suite() {
            for a in 0..space.len() {
                let mut m = b.module.clone();
                pm.run_pipeline_sanitized(&mut m, space.subsequence(a), &san)
                    .unwrap_or_else(|e| {
                        panic!(
                            "[{}] action {a} on '{}' is not diagnostic-clean:\n{e}",
                            space.kind().name(),
                            b.name
                        )
                    });
            }
        }
    }
    eprintln!("[sweep] {}", san.stats().render());
    assert_eq!(san.stats().miscompiles, 0);
}
