//! Randomized corruption hunt: applies random action sub-sequences to the
//! training corpus with the verifier run after *every single pass*. This is
//! the test that catches passes leaving dangling references or broken phis
//! behind (it found a real bug in loop-unswitch during development).
//!
//! The walk length is `POSETRL_HUNT_STEPS` actions per program (default 8);
//! nightly CI raises it for a deeper hunt. The RNG is an explicit xorshift64
//! state so the stream is reproducible and auditable, and the test asserts
//! the walk actually covered more than half of each action space — a biased
//! or stuck generator would otherwise silently hollow the hunt out.

use posetrl_ir::verifier::verify_module;
use posetrl_odg::ActionSpace;
use posetrl_opt::manager::PassManager;
use std::collections::HashSet;

/// Explicit xorshift64 state (Marsaglia's triplet 13/7/17).
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: seed.max(1), // xorshift has a fixed point at 0
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn hunt_steps() -> usize {
    posetrl_analyze::env_budget_or_usage("POSETRL_HUNT_STEPS", 8)
}

#[test]
fn hunt_corruption() {
    let programs = posetrl_workloads::training_suite();
    let pm = PassManager::new();
    let steps_per_program = hunt_steps();
    let mut rng = XorShift64::new(0xABCDEF);
    for space in [ActionSpace::manual(), ActionSpace::odg()] {
        let mut drawn: HashSet<usize> = HashSet::new();
        for b in programs.iter().step_by(3) {
            let mut m = b.module.clone();
            let mut applied: Vec<(usize, &str)> = Vec::new();
            for step in 0..steps_per_program {
                let a = rng.next_below(space.len());
                drawn.insert(a);
                for pass in space.subsequence(a) {
                    applied.push((a, pass));
                    pm.run_pass(&mut m, pass).unwrap();
                    if let Err(e) = verify_module(&m) {
                        panic!(
                            "{} [{}] corrupted after step {step} {applied:?}: {e}",
                            b.name,
                            space.kind().name()
                        );
                    }
                }
            }
        }
        assert!(
            drawn.len() * 2 > space.len(),
            "[{}] walk covered only {}/{} actions — RNG is biased or stuck",
            space.kind().name(),
            drawn.len(),
            space.len()
        );
    }
}

#[test]
fn xorshift_state_advances_and_covers() {
    // The regression this guards: an RNG captured by value in a closure (or
    // otherwise copied) would re-emit the same "random" action forever.
    let mut rng = XorShift64::new(42);
    let first = rng.next_u64();
    assert_ne!(first, rng.next_u64(), "state must advance between draws");

    let mut seen = HashSet::new();
    let mut rng = XorShift64::new(7);
    for _ in 0..400 {
        seen.insert(rng.next_below(34));
    }
    assert_eq!(seen.len(), 34, "400 draws must cover all 34 actions");

    // same seed ⇒ same stream (reproducible hunts)
    let mut a = XorShift64::new(9);
    let mut b = XorShift64::new(9);
    for _ in 0..64 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
