//! Randomized corruption hunt: applies random action sub-sequences to the
//! training corpus with the verifier run after *every single pass*. This is
//! the test that catches passes leaving dangling references or broken phis
//! behind (it found a real bug in loop-unswitch during development).

use posetrl_ir::verifier::verify_module;
use posetrl_odg::ActionSpace;
use posetrl_opt::manager::PassManager;

#[test]
fn hunt_corruption() {
    let programs = posetrl_workloads::training_suite();
    let pm = PassManager::new();
    let mut h = 0xABCDEFu64;
    let mut next = move |n: usize| {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        (h % n as u64) as usize
    };
    for space in [ActionSpace::manual(), ActionSpace::odg()] {
        for b in programs.iter().step_by(3) {
            let mut m = b.module.clone();
            let mut applied: Vec<(usize, &str)> = Vec::new();
            for step in 0..8 {
                let a = next(space.len());
                for pass in space.subsequence(a) {
                    applied.push((a, pass));
                    pm.run_pass(&mut m, pass).unwrap();
                    if let Err(e) = verify_module(&m) {
                        panic!(
                            "{} [{}] corrupted after step {step} {applied:?}: {e}",
                            b.name,
                            space.kind().name()
                        );
                    }
                }
            }
        }
    }
}
