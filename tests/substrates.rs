//! Cross-crate integration: generated workloads flow through the whole
//! substrate stack (pipelines → verifier → interpreter → size/MCA models).

use posetrl_ir::interp::{InterpConfig, Interpreter};
use posetrl_ir::verifier::verify_module;
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_target::{mca, size::object_size, TargetArch};
use posetrl_workloads::{generate, ProgramKind, ProgramSpec, SizeClass};

fn programs() -> Vec<posetrl_ir::Module> {
    ProgramKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            generate(&ProgramSpec {
                name: format!("it{i}"),
                kind,
                size: SizeClass::Medium,
                seed: 9000 + i as u64,
            })
        })
        .collect()
}

fn observe(m: &posetrl_ir::Module) -> posetrl_ir::interp::Observation {
    Interpreter::with_config(
        m,
        InterpConfig {
            fuel: 20_000_000,
            max_depth: 512,
        },
    )
    .run("main", &[])
    .observation()
}

#[test]
fn every_pipeline_preserves_semantics_on_every_kind() {
    let pm = PassManager::new();
    for m0 in programs() {
        let before = observe(&m0);
        for level in ["O1", "O2", "O3", "Os", "Oz"] {
            let mut m = m0.clone();
            pm.run_pipeline(&mut m, &pipelines::by_name(level).unwrap())
                .unwrap();
            verify_module(&m).unwrap_or_else(|e| panic!("{level} on {}: {e}", m0.name));
            assert_eq!(
                before,
                observe(&m),
                "{level} changed behaviour of {}",
                m0.name
            );
        }
    }
}

#[test]
fn oz_is_smaller_or_equal_and_o3_not_slower_on_average() {
    let pm = PassManager::new();
    let mut oz_sizes = 0i64;
    let mut o3_sizes = 0i64;
    let mut oz_cycles = 0.0;
    let mut o3_cycles = 0.0;
    for m0 in programs() {
        let mut o3 = m0.clone();
        pm.run_pipeline(&mut o3, &pipelines::o3()).unwrap();
        let mut oz = m0.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        o3_sizes += object_size(&o3, TargetArch::X86_64).total as i64;
        oz_sizes += object_size(&oz, TargetArch::X86_64).total as i64;
        let run = |m: &posetrl_ir::Module| {
            let out = Interpreter::with_config(
                m,
                InterpConfig {
                    fuel: 20_000_000,
                    max_depth: 512,
                },
            )
            .run("main", &[]);
            posetrl_target::runtime::dynamic_cycles(m, &out.profile, TargetArch::X86_64)
        };
        o3_cycles += run(&o3);
        oz_cycles += run(&oz);
    }
    // Fig. 1's shape in aggregate: Oz no larger than O3; O3 no slower than Oz
    assert!(
        oz_sizes <= o3_sizes,
        "Oz total {oz_sizes} vs O3 total {o3_sizes}"
    );
    assert!(
        o3_cycles <= oz_cycles * 1.02,
        "O3 {o3_cycles:.0} vs Oz {oz_cycles:.0}"
    );
}

#[test]
fn optimization_reduces_size_meaningfully() {
    let pm = PassManager::new();
    for m0 in programs() {
        let before = object_size(&m0, TargetArch::X86_64).total;
        let mut m = m0.clone();
        pm.run_pipeline(&mut m, &pipelines::oz()).unwrap();
        let after = object_size(&m, TargetArch::X86_64).total;
        assert!(
            (after as f64) < before as f64 * 0.95,
            "{}: Oz shrinks the object by >5% ({before} -> {after})",
            m0.name
        );
    }
}

#[test]
fn mca_and_size_models_work_on_all_optimized_outputs() {
    let pm = PassManager::new();
    for m0 in programs() {
        let mut m = m0;
        pm.run_pipeline(&mut m, &pipelines::oz()).unwrap();
        for arch in TargetArch::ALL {
            let s = object_size(&m, arch);
            assert!(s.total > 0);
            let r = mca::analyze(&m, arch);
            assert!(r.throughput > 0.0 && r.throughput.is_finite());
        }
    }
}

#[test]
fn embeddings_separate_optimization_levels() {
    let pm = PassManager::new();
    let e = posetrl_embed::Embedder::default();
    for m0 in programs().into_iter().take(3) {
        let v0 = e.embed_module(&m0);
        let mut oz = m0.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        let v1 = e.embed_module(&oz);
        let dist: f64 = v0
            .iter()
            .zip(&v1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            dist > 1e-3,
            "O0 and Oz states are distinguishable (dist {dist})"
        );
    }
}
