//! Structural-hash contract on the real training corpus.
//!
//! `module_hash` hashes the canonically printed form of a module, so the
//! evaluation cache's correctness rests on one invariant: **hash equality
//! holds exactly when printer output equality holds**. These tests check
//! that equivalence over the full 130-program training suite — as
//! generated, after cloning, and after running pass pipelines — rather
//! than on hand-picked toy modules.

use posetrl_ir::parser::parse_module;
use posetrl_ir::printer::print_module;
use posetrl_ir::{
    fold_module_hash, function_hashes, module_hash, module_header_hash, FunctionHash, ModuleHash,
};
use posetrl_opt::pipelines;
use posetrl_opt::PassManager;
use posetrl_workloads::training_suite;
use std::collections::HashMap;

/// Asserts hash equality ⇔ printed-form equality across `modules`.
///
/// Both directions are checked exhaustively: every pair of equal hashes
/// must print identically (no collisions), and every pair of equal
/// printed forms must hash identically (no spurious splits).
fn assert_hash_matches_printer(printed: &[(String, ModuleHash, String)]) {
    let mut by_hash: HashMap<ModuleHash, &str> = HashMap::new();
    let mut by_text: HashMap<&str, ModuleHash> = HashMap::new();
    for (name, h, text) in printed {
        match by_hash.get(h) {
            Some(prev) => assert_eq!(
                *prev, text,
                "{name}: hash {h} collides with a differently-printed module"
            ),
            None => {
                by_hash.insert(*h, text);
            }
        }
        match by_text.get(text.as_str()) {
            Some(prev) => assert_eq!(
                prev, h,
                "{name}: identical printed form produced two different hashes"
            ),
            None => {
                by_text.insert(text, *h);
            }
        }
    }
}

fn corpus() -> Vec<(String, ModuleHash, String)> {
    training_suite()
        .iter()
        .map(|b| {
            (
                b.name.clone(),
                module_hash(&b.module),
                print_module(&b.module),
            )
        })
        .collect()
}

#[test]
fn hash_equality_iff_printer_equality_on_training_suite() {
    let printed = corpus();
    assert_eq!(printed.len(), 130, "full training suite");
    assert_hash_matches_printer(&printed);
    // Program names are part of the print, so the 130 generated programs
    // must all be pairwise distinct — a collapsed corpus would let the
    // cache alias unrelated benchmarks.
    let distinct: std::collections::HashSet<ModuleHash> =
        printed.iter().map(|(_, h, _)| *h).collect();
    assert_eq!(distinct.len(), printed.len());
}

#[test]
fn hash_is_stable_across_clone_on_training_suite() {
    for b in training_suite() {
        let h = module_hash(&b.module);
        assert_eq!(h, module_hash(&b.module.clone()), "{}", b.name);
    }
}

#[test]
fn hash_tracks_printer_through_pass_pipelines() {
    let pm = PassManager::new();
    // A spread of distinct sub-pipelines keeps the check cheap while still
    // producing genuinely transformed modules (including no-op runs, which
    // must keep the original hash).
    let pipelines: [&[&str]; 3] = [
        &["simplifycfg", "sroa", "early-cse"],
        &["instcombine", "gvn", "adce"],
        &["mem2reg", "bdce", "globaldce"],
    ];
    let mut printed = Vec::new();
    for (i, b) in training_suite().iter().enumerate().step_by(7) {
        let mut m = b.module.clone();
        let pre = module_hash(&m);
        let changed = pm
            .run_pipeline(&mut m, pipelines[i % pipelines.len()])
            .expect("known passes");
        let post = module_hash(&m);
        if !changed {
            assert_eq!(pre, post, "{}: unchanged module must keep its hash", b.name);
        }
        assert_eq!(
            post,
            module_hash(&m),
            "{}: hashing must be deterministic",
            b.name
        );
        printed.push((b.name.clone(), post, print_module(&m)));
    }
    assert!(printed.len() >= 18);
    assert_hash_matches_printer(&printed);
}

/// The PR-7 fold contract on the whole corpus: `module_hash` must equal
/// the fold of the header digest and every per-function chunk digest, in
/// function order, so change-set tracking can reuse unchanged chunks.
#[test]
fn module_hash_is_fold_of_function_hashes_on_training_suite() {
    for b in training_suite() {
        let header = module_header_hash(&b.module);
        let funcs = function_hashes(&b.module);
        assert_eq!(
            funcs.len(),
            b.module.func_ids().count(),
            "{}: every function gets a chunk hash",
            b.name
        );
        let folded = fold_module_hash(header, funcs.iter().map(|(_, h)| h.0));
        assert_eq!(
            module_hash(&b.module),
            folded,
            "{}: module hash is the fold of its function hashes",
            b.name
        );
    }
}

/// Editing one function must leave every *other* function's hash (and the
/// header digest) untouched — the property incremental invalidation rests
/// on — while moving both the edited function's hash and the module hash.
#[test]
fn function_hashes_ignore_unrelated_edits_and_track_local_ones() {
    let base = "module \"m\"\n\nfn @stable(i64) -> i64 internal {\nbb0:\n  %x = add i64 %arg0, 1:i64\n  ret %x\n}\n\nfn @edited() -> i64 internal {\nbb0:\n  ret 1:i64\n}\n";
    let edited = base.replace("ret 1:i64", "ret 2:i64");
    let m0 = parse_module(base).expect("base parses");
    let m1 = parse_module(&edited).expect("edited variant parses");
    assert_eq!(module_header_hash(&m0), module_header_hash(&m1));
    let h0: HashMap<String, FunctionHash> = function_hashes(&m0).into_iter().collect();
    let h1: HashMap<String, FunctionHash> = function_hashes(&m1).into_iter().collect();
    assert_eq!(
        h0["stable"], h1["stable"],
        "an edit elsewhere must not move an untouched function's hash"
    );
    assert_ne!(
        h0["edited"], h1["edited"],
        "a local mutation must move the edited function's hash"
    );
    assert_ne!(module_hash(&m0), module_hash(&m1));
}

/// Pass pipelines report per-function chunk hashes consistently with the
/// printer: a function whose printed body is unchanged keeps its hash.
#[test]
fn function_hashes_track_printed_chunks_through_passes() {
    let pm = PassManager::new();
    for b in training_suite().iter().step_by(17) {
        let mut m = b.module.clone();
        let pre: HashMap<String, FunctionHash> = function_hashes(&m).into_iter().collect();
        pm.run_pipeline(&mut m, &["instcombine", "simplifycfg"])
            .expect("known passes");
        for (name, post_hash) in function_hashes(&m) {
            if let Some(pre_hash) = pre.get(&name) {
                let pre_f = b
                    .module
                    .func(b.module.func_by_name(&name).unwrap())
                    .unwrap();
                let post_f = m.func(m.func_by_name(&name).unwrap()).unwrap();
                let mut pre_text = String::new();
                let mut post_text = String::new();
                posetrl_ir::printer::write_function_entry(&mut pre_text, &b.module, pre_f).unwrap();
                posetrl_ir::printer::write_function_entry(&mut post_text, &m, post_f).unwrap();
                assert_eq!(
                    *pre_hash == post_hash,
                    pre_text == post_text,
                    "{}/{name}: chunk-hash equality must match chunk-print equality",
                    b.name
                );
            }
        }
    }
}

#[test]
fn hash_tracks_printer_through_full_oz() {
    let pm = PassManager::new();
    let mut printed = Vec::new();
    for b in training_suite().iter().step_by(13) {
        let mut m = b.module.clone();
        pm.run_pipeline(&mut m, &pipelines::oz()).expect("oz runs");
        printed.push((b.name.clone(), module_hash(&m), print_module(&m)));
    }
    assert_eq!(printed.len(), 10);
    assert_hash_matches_printer(&printed);
}
