//! Structural-hash contract on the real training corpus.
//!
//! `module_hash` hashes the canonically printed form of a module, so the
//! evaluation cache's correctness rests on one invariant: **hash equality
//! holds exactly when printer output equality holds**. These tests check
//! that equivalence over the full 130-program training suite — as
//! generated, after cloning, and after running pass pipelines — rather
//! than on hand-picked toy modules.

use posetrl_ir::printer::print_module;
use posetrl_ir::{module_hash, ModuleHash};
use posetrl_opt::pipelines;
use posetrl_opt::PassManager;
use posetrl_workloads::training_suite;
use std::collections::HashMap;

/// Asserts hash equality ⇔ printed-form equality across `modules`.
///
/// Both directions are checked exhaustively: every pair of equal hashes
/// must print identically (no collisions), and every pair of equal
/// printed forms must hash identically (no spurious splits).
fn assert_hash_matches_printer(printed: &[(String, ModuleHash, String)]) {
    let mut by_hash: HashMap<ModuleHash, &str> = HashMap::new();
    let mut by_text: HashMap<&str, ModuleHash> = HashMap::new();
    for (name, h, text) in printed {
        match by_hash.get(h) {
            Some(prev) => assert_eq!(
                *prev, text,
                "{name}: hash {h} collides with a differently-printed module"
            ),
            None => {
                by_hash.insert(*h, text);
            }
        }
        match by_text.get(text.as_str()) {
            Some(prev) => assert_eq!(
                prev, h,
                "{name}: identical printed form produced two different hashes"
            ),
            None => {
                by_text.insert(text, *h);
            }
        }
    }
}

fn corpus() -> Vec<(String, ModuleHash, String)> {
    training_suite()
        .iter()
        .map(|b| {
            (
                b.name.clone(),
                module_hash(&b.module),
                print_module(&b.module),
            )
        })
        .collect()
}

#[test]
fn hash_equality_iff_printer_equality_on_training_suite() {
    let printed = corpus();
    assert_eq!(printed.len(), 130, "full training suite");
    assert_hash_matches_printer(&printed);
    // Program names are part of the print, so the 130 generated programs
    // must all be pairwise distinct — a collapsed corpus would let the
    // cache alias unrelated benchmarks.
    let distinct: std::collections::HashSet<ModuleHash> =
        printed.iter().map(|(_, h, _)| *h).collect();
    assert_eq!(distinct.len(), printed.len());
}

#[test]
fn hash_is_stable_across_clone_on_training_suite() {
    for b in training_suite() {
        let h = module_hash(&b.module);
        assert_eq!(h, module_hash(&b.module.clone()), "{}", b.name);
    }
}

#[test]
fn hash_tracks_printer_through_pass_pipelines() {
    let pm = PassManager::new();
    // A spread of distinct sub-pipelines keeps the check cheap while still
    // producing genuinely transformed modules (including no-op runs, which
    // must keep the original hash).
    let pipelines: [&[&str]; 3] = [
        &["simplifycfg", "sroa", "early-cse"],
        &["instcombine", "gvn", "adce"],
        &["mem2reg", "bdce", "globaldce"],
    ];
    let mut printed = Vec::new();
    for (i, b) in training_suite().iter().enumerate().step_by(7) {
        let mut m = b.module.clone();
        let pre = module_hash(&m);
        let changed = pm
            .run_pipeline(&mut m, pipelines[i % pipelines.len()])
            .expect("known passes");
        let post = module_hash(&m);
        if !changed {
            assert_eq!(pre, post, "{}: unchanged module must keep its hash", b.name);
        }
        assert_eq!(
            post,
            module_hash(&m),
            "{}: hashing must be deterministic",
            b.name
        );
        printed.push((b.name.clone(), post, print_module(&m)));
    }
    assert!(printed.len() >= 18);
    assert_hash_matches_printer(&printed);
}

#[test]
fn hash_tracks_printer_through_full_oz() {
    let pm = PassManager::new();
    let mut printed = Vec::new();
    for b in training_suite().iter().step_by(13) {
        let mut m = b.module.clone();
        pm.run_pipeline(&mut m, &pipelines::oz()).expect("oz runs");
        printed.push((b.name.clone(), module_hash(&m), print_module(&m)));
    }
    assert_eq!(printed.len(), 10);
    assert_hash_matches_printer(&printed);
}
