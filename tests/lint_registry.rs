//! Lint-registry completeness (the `--list-lints` contract).
//!
//! Three sources must agree on the set of lint codes:
//!
//! 1. the `codes` module in `crates/analyze/src/diag.rs` — the
//!    declaration site every analysis emits through;
//! 2. `diag::registry()` — the machine-readable table behind
//!    `mini-analyze --list-lints`;
//! 3. the README analysis matrix — the human-facing documentation.
//!
//! A code declared but never emitted, emitted but unregistered, or
//! registered but undocumented is a drift bug this test pins.

use std::collections::BTreeSet;
use std::path::Path;

fn repo_file(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parses `pub const IDENT: &str = "code";` declarations out of the
/// `codes` module source.
fn declared_codes() -> BTreeSet<(String, String)> {
    let src = repo_file("crates/analyze/src/diag.rs");
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("pub const ") else {
            continue;
        };
        let Some((ident, rhs)) = rest.split_once(": &str = \"") else {
            continue;
        };
        let Some((code, _)) = rhs.split_once('"') else {
            continue;
        };
        out.insert((ident.trim().to_string(), code.to_string()));
    }
    out
}

#[test]
fn every_declared_code_is_registered_and_vice_versa() {
    let declared: BTreeSet<String> = declared_codes().into_iter().map(|(_, c)| c).collect();
    assert!(
        declared.len() >= 21,
        "suspiciously few declared codes: {declared:?}"
    );
    let registered: BTreeSet<String> = posetrl_analyze::diag::registry()
        .iter()
        .map(|l| l.code.to_string())
        .collect();
    assert_eq!(
        declared, registered,
        "diag::codes and diag::registry() must list the same codes"
    );
}

#[test]
fn every_declared_code_is_emitted_somewhere() {
    // each `codes::IDENT` must appear at least once outside diag.rs —
    // a declaration nothing emits is dead registry weight
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/analyze/src");
    let mut sources = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for e in std::fs::read_dir(&dir).unwrap() {
            let p = e.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs")
                && p.file_name().is_some_and(|n| n != "diag.rs")
            {
                sources.push(std::fs::read_to_string(&p).unwrap());
            }
        }
    }
    assert!(sources.len() >= 10, "analyze source tree looks truncated");
    let all = sources.concat();
    for (ident, code) in declared_codes() {
        assert!(
            all.contains(&format!("codes::{ident}")),
            "codes::{ident} (\"{code}\") is declared but never emitted by any analysis"
        );
    }
}

#[test]
fn every_registered_code_is_documented_in_the_readme_matrix() {
    let readme = repo_file("README.md");
    let matrix: String = readme
        .lines()
        .filter(|l| l.starts_with('|'))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        matrix.contains("| Analysis | Module | Lints |"),
        "README analysis matrix header moved"
    );
    for l in posetrl_analyze::diag::registry() {
        assert!(
            matrix.contains(&format!("`{}`", l.code)),
            "lint `{}` ({}) is missing from the README analysis matrix",
            l.code,
            l.analysis
        );
    }
}

#[test]
fn list_lints_json_round_trips_the_registry() {
    // the exact payload `mini-analyze --list-lints` prints
    let json = serde_json::to_string_pretty(&posetrl_analyze::diag::registry()).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    let arr = parsed.as_array().expect("registry serializes as an array");
    assert_eq!(arr.len(), posetrl_analyze::diag::registry().len());
    let json_codes: BTreeSet<&str> = arr
        .iter()
        .map(|e| e["code"].as_str().expect("every entry has a code"))
        .collect();
    for l in posetrl_analyze::diag::registry() {
        assert!(json_codes.contains(l.code), "`{}` missing in JSON", l.code);
        let entry = arr
            .iter()
            .find(|e| e["code"].as_str() == Some(l.code))
            .unwrap();
        assert!(
            entry["severity"].as_str().is_some() && entry["analysis"].as_str().is_some(),
            "`{}` entry lacks severity/analysis fields",
            l.code
        );
    }
}
