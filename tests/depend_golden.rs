//! Golden corpus for the loop data-dependence analysis and its lints.
//!
//! Every `.pir` file under `tests/analyze/depend/` carries an
//! `; expect: <code>, <code>` header naming exactly the depend lint codes
//! (`loop-carried-uaf`, `overlap-copy`) the analysis must produce for it;
//! a bare header pins a false-positive guard. The files double as living
//! documentation of what the subscript tests can and cannot prove
//! (see DESIGN.md §16).

use posetrl_analyze::Severity;
use posetrl_ir::parser::parse_module;
use posetrl_suite::test_support::{corpus_files, expected_codes};
use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn depend_corpus_produces_exactly_the_expected_codes() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/analyze/depend");
    let files = corpus_files(&dir, ".pir");
    assert!(files.len() >= 10, "corpus has at least 10 modules");

    let mut positives = 0usize;
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let expected = expected_codes(&text);
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        posetrl_ir::verifier::verify_module(&m).unwrap_or_else(|e| panic!("{name} verifies: {e}"));

        let mut diags = Vec::new();
        posetrl_analyze::depend::check(&m, &mut diags);
        let got: BTreeSet<String> = diags.iter().map(|d| d.code.to_string()).collect();
        assert_eq!(got, expected, "{name}: depend codes diverge from header");
        positives += diags.len();

        // the dump mode must render every corpus module deterministically
        let md = posetrl_analyze::depend::analyze_module(&m);
        let dump = posetrl_analyze::depend::render(&m, &md);
        assert!(
            dump.contains(&format!("module {}", m.name)),
            "{name}: dump names the module"
        );
        let md2 = posetrl_analyze::depend::analyze_module(&m);
        assert_eq!(
            dump,
            posetrl_analyze::depend::render(&m, &md2),
            "{name}: two runs render identically"
        );
    }
    assert!(
        positives >= 10,
        "the corpus must pin at least 10 true positives, got {positives}"
    );
}

#[test]
fn depend_lints_are_clean_on_the_example_modules() {
    // zero false positives at warning severity on the lint-clean example
    // programs
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/ir");
    for path in corpus_files(&dir, ".pir") {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name} parses: {e}"));
        let mut diags = Vec::new();
        posetrl_analyze::depend::check(&m, &mut diags);
        let findings: Vec<_> = diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(
            findings.is_empty(),
            "{name}: unexpected findings {findings:?}"
        );
    }
}

#[test]
fn depend_dump_mode_is_stable_on_the_training_suite() {
    // the analysis must terminate and render deterministically on every
    // generated workload, not just the hand-written corpus
    for b in posetrl_workloads::suites::training_suite().iter().take(8) {
        let md = posetrl_analyze::depend::analyze_module(&b.module);
        let dump = posetrl_analyze::depend::render(&b.module, &md);
        let md2 = posetrl_analyze::depend::analyze_module(&b.module);
        let dump2 = posetrl_analyze::depend::render(&b.module, &md2);
        assert_eq!(dump, dump2, "{}: nondeterministic depend dump", b.name);
    }
}
