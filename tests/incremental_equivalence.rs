//! The incremental-analysis equivalence contract (PR 7).
//!
//! `IncrementalAnalysisManager` memoizes per-function embeddings, lint
//! bundles, absint summaries, alias/memdep results (PR 8) and validate
//! obligations by content keys.
//! The contract is **bit-identity**: for any module reachable by any
//! pass pipeline, the incremental path must return exactly the results
//! of the from-scratch path — same embedding bits, same findings, same
//! summaries, same verdicts. These tests drive random pipelines over the
//! checked-in `.pir` corpora (examples/ir + the analyze/validate golden
//! files) and check the equivalence after every single step, with one
//! manager persisting across the whole pipeline so hits really happen.
//!
//! The second half pins *invalidation propagation* on hand-built call
//! graphs: a local edit recomputes exactly the edited function, an edit
//! that moves a return summary additionally recomputes the callers whose
//! view changed (transitively), and nothing else — observed through the
//! manager's recompute log.
//!
//! `POSETRL_INCREMENTAL_SWEEP=1` (nightly CI) additionally sweeps the
//! training corpus through fixed 15-action episodes, counts bit
//! mismatches (hard gate: zero) and archives warm-path timings to
//! `results/incremental_sweep.json` (hard gate: incremental at least 2x
//! faster than from-scratch on the warm episode encode path).

use posetrl_analyze::{
    absint, alias, depend, run_all, run_all_with, scev, validate_transform,
    validate_transform_with, IncrementalAnalysisManager, ValidateConfig,
};
use posetrl_embed::Embedder;
use posetrl_ir::parser::parse_module;
use posetrl_ir::{digest_str, function_fingerprint, function_hashes, module_header_hash, Module};
use posetrl_odg::ActionSpace;
use posetrl_opt::manager::PassManager;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Every checked-in `.pir` module: examples plus the golden corpora.
fn corpus() -> Vec<(String, Module)> {
    let root = env!("CARGO_MANIFEST_DIR");
    let dirs = [
        format!("{root}/examples/ir"),
        format!("{root}/tests/analyze"),
        format!("{root}/tests/analyze/absint"),
    ];
    let mut out = Vec::new();
    for dir in dirs {
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("read {dir}: {e}"))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "pir"))
            .collect();
        paths.sort();
        for p in paths {
            let text = std::fs::read_to_string(&p).unwrap();
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            match parse_module(&text) {
                Ok(m) => out.push((name, m)),
                Err(_) => continue, // a golden file may pin a parse error
            }
        }
    }
    assert!(out.len() >= 20, "corpus unexpectedly small: {}", out.len());
    out
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Embeds through the manager exactly the way `PhaseEnv::encode` does.
fn embed_incremental(
    embedder: &Embedder,
    cfg_digest: u128,
    m: &Module,
    mgr: &IncrementalAnalysisManager,
) -> Vec<f64> {
    embedder.embed_module_with(m, |e, f| {
        mgr.embed_memo((function_fingerprint(m, f), cfg_digest), || {
            e.embed_function(f)
        })
    })
}

/// Asserts the three analysis products are bit-identical incremental vs
/// from-scratch on `m`.
fn assert_equivalent(
    ctx: &str,
    m: &Module,
    mgr: &IncrementalAnalysisManager,
    embedder: &Embedder,
    cfg_digest: u128,
) {
    let full_embed = embedder.embed_module(m);
    let inc_embed = embed_incremental(embedder, cfg_digest, m, mgr);
    assert_eq!(
        bits(&full_embed),
        bits(&inc_embed),
        "{ctx}: embedding bits diverged"
    );
    let full_lints = run_all(m);
    let inc_lints = run_all_with(m, Some(mgr));
    assert_eq!(full_lints, inc_lints, "{ctx}: lint report diverged");
    let full_abs = absint::analyze_module(m);
    let inc_abs = absint::analyze_module_with(m, Some(mgr));
    assert_eq!(full_abs, inc_abs, "{ctx}: absint summaries diverged");
    let full_alias = alias::analyze_module(m);
    let inc_alias = alias::analyze_module_with(m, Some(mgr));
    assert_eq!(
        full_alias, inc_alias,
        "{ctx}: alias summaries / points-to facts / memdep diverged"
    );
    let full_scev = scev::analyze_module(m);
    let inc_scev = scev::analyze_module_with(m, Some(mgr));
    assert_eq!(
        full_scev, inc_scev,
        "{ctx}: scev loops / trips / profile frequencies diverged"
    );
    let full_dep = depend::analyze_module(m);
    let inc_dep = depend::analyze_module_with(m, Some(mgr));
    assert_eq!(
        full_dep, inc_dep,
        "{ctx}: dependence edges / distances / verdicts diverged"
    );
}

/// Cases per property (see tests/pass_properties.rs).
fn proptest_cases() -> u32 {
    posetrl_analyze::env_budget_or_usage("POSETRL_PROPTEST_CASES", 24)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: proptest_cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Random pass pipelines over the `.pir` corpora: after every step the
    /// incremental results must be bit-identical to from-scratch, with one
    /// manager persisting across the pipeline. The per-pass change sets
    /// must also agree with a direct function-hash diff.
    #[test]
    fn incremental_matches_from_scratch_at_every_step(
        file_idx in 0usize..1_000,
        pass_picks in prop::collection::vec(0usize..1_000, 1..8),
    ) {
        let corpus = corpus();
        let (name, m0) = &corpus[file_idx % corpus.len()];
        let mgr = IncrementalAnalysisManager::new();
        let embedder = Embedder::default();
        let cfg_digest = digest_str(&format!("{:?}", embedder.config()));
        assert_equivalent(&format!("{name} (initial)"), m0, &mgr, &embedder, cfg_digest);

        let pm = PassManager::new();
        let names = pm.pass_names();
        let mut m = m0.clone();
        for (step, pick) in pass_picks.iter().enumerate() {
            let pass = names[pick % names.len()];
            let pre_header = module_header_hash(&m);
            let pre_hashes = function_hashes(&m);
            let (_, changes) = pm.run_pass_tracked(&mut m, pass).unwrap();

            // the emitted change set matches a direct per-function diff
            let pre_names: BTreeSet<&str> =
                pre_hashes.iter().map(|(n, _)| n.as_str()).collect();
            let post_hashes = function_hashes(&m);
            let post_names: BTreeSet<&str> =
                post_hashes.iter().map(|(n, _)| n.as_str()).collect();
            let added: BTreeSet<&str> =
                changes.added.iter().map(String::as_str).collect();
            let removed: BTreeSet<&str> =
                changes.removed.iter().map(String::as_str).collect();
            prop_assert_eq!(
                added,
                post_names.difference(&pre_names).copied().collect::<BTreeSet<_>>(),
                "{} after {}: added set", name, pass
            );
            prop_assert_eq!(
                removed,
                pre_names.difference(&post_names).copied().collect::<BTreeSet<_>>(),
                "{} after {}: removed set", name, pass
            );
            prop_assert_eq!(
                changes.header_changed,
                pre_header != module_header_hash(&m),
                "{} after {}: header flag", name, pass
            );
            fn chunk_multiset(
                hs: &[(String, posetrl_ir::FunctionHash)],
            ) -> BTreeMap<&str, Vec<u128>> {
                let mut by_name: BTreeMap<&str, Vec<u128>> = BTreeMap::new();
                for (n, h) in hs.iter().map(|(n, h)| (n.as_str(), h.0)) {
                    by_name.entry(n).or_default().push(h);
                }
                by_name
            }
            let pre_chunks = chunk_multiset(&pre_hashes);
            let post_chunks = chunk_multiset(&post_hashes);
            for n in pre_names.intersection(&post_names) {
                let moved = pre_chunks[n] != post_chunks[n];
                prop_assert_eq!(
                    changes.changed.iter().any(|c| c == n),
                    moved,
                    "{} after {}: change set must list @{} iff its chunk hash moved",
                    name, pass, n
                );
            }

            assert_equivalent(
                &format!("{name} after step {step} ({pass})"),
                &m,
                &mgr,
                &embedder,
                cfg_digest,
            );
        }
    }
}

/// A replay of identical analyses through a warm manager is pure hits:
/// the absint recompute log stays empty on the second run.
#[test]
fn warm_replay_recomputes_nothing() {
    for (name, m) in corpus().iter().take(8) {
        let mgr = IncrementalAnalysisManager::new();
        let _ = absint::analyze_module_with(m, Some(&mgr));
        assert!(
            !mgr.drain_recomputed().is_empty(),
            "{name}: cold run must analyze something"
        );
        let _ = absint::analyze_module_with(m, Some(&mgr));
        assert_eq!(
            mgr.drain_recomputed(),
            Vec::<String>::new(),
            "{name}: warm replay must be all memo hits"
        );
        let _ = alias::analyze_module_with(m, Some(&mgr));
        assert!(
            !mgr.drain_alias_recomputed().is_empty(),
            "{name}: cold alias run must analyze something"
        );
        let _ = alias::analyze_module_with(m, Some(&mgr));
        assert_eq!(
            mgr.drain_alias_recomputed(),
            Vec::<String>::new(),
            "{name}: warm alias replay must be all memo hits"
        );
        let _ = scev::analyze_module_with(m, Some(&mgr));
        assert!(
            !mgr.drain_scev_recomputed().is_empty(),
            "{name}: cold scev run must analyze something"
        );
        let _ = scev::analyze_module_with(m, Some(&mgr));
        assert_eq!(
            mgr.drain_scev_recomputed(),
            Vec::<String>::new(),
            "{name}: warm scev replay must be all memo hits"
        );
        let _ = depend::analyze_module_with(m, Some(&mgr));
        assert!(
            !mgr.drain_depend_recomputed().is_empty(),
            "{name}: cold depend run must analyze something"
        );
        let _ = depend::analyze_module_with(m, Some(&mgr));
        assert_eq!(
            mgr.drain_depend_recomputed(),
            Vec::<String>::new(),
            "{name}: warm depend replay must be all memo hits"
        );
    }
}

// ---------------------------------------------------------------------
// Invalidation propagation on hand-built call graphs.
// ---------------------------------------------------------------------

/// Distinct function names whose absint analysis re-ran for `text`,
/// against a manager warmed on `base`.
fn recomputed_after_edit(base: &str, text: &str) -> BTreeSet<String> {
    let m0 = parse_module(base).expect("base fixture parses");
    let mgr = IncrementalAnalysisManager::new();
    let cold = absint::analyze_module_with(&m0, Some(&mgr));
    mgr.drain_recomputed();
    let m1 = parse_module(text).expect("edited fixture parses");
    let inc = absint::analyze_module_with(&m1, Some(&mgr));
    assert_eq!(
        inc,
        absint::analyze_module(&m1),
        "incremental re-analysis diverged from scratch"
    );
    if base == text {
        assert_eq!(cold, inc);
    }
    mgr.drain_recomputed().into_iter().collect()
}

const CHAIN: &str = "module \"chain\"\n\n\
fn @leaf() -> i64 internal {\nbb0:\n  ret 1:i64\n}\n\n\
fn @mid() -> i64 internal {\nbb0:\n  %x = call @leaf() -> i64\n  ret %x\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  %y = call @mid() -> i64\n  ret %y\n}\n";

#[test]
fn direct_call_chain_summary_change_propagates_to_callers() {
    // moving @leaf's return summary invalidates the whole caller chain
    let edited = CHAIN.replace("ret 1:i64", "ret 2:i64");
    let recomputed = recomputed_after_edit(CHAIN, &edited);
    let expect: BTreeSet<String> = ["leaf", "mid", "main"]
        .into_iter()
        .map(String::from)
        .collect();
    assert_eq!(recomputed, expect, "summary change recomputes the chain");
}

#[test]
fn direct_call_chain_local_edit_recomputes_only_the_edited_function() {
    // a body edit that keeps @leaf's return summary at [1,1] must leave
    // @mid and @main as pure hits — invalidation is content-wise, not
    // "every transitive caller"
    let edited = CHAIN.replace(
        "fn @leaf() -> i64 internal {\nbb0:\n  ret 1:i64\n}",
        "fn @leaf() -> i64 internal {\nbb0:\n  %d = add i64 3:i64, 4:i64\n  ret 1:i64\n}",
    );
    assert_ne!(edited, CHAIN, "fixture edit must apply");
    let recomputed = recomputed_after_edit(CHAIN, &edited);
    let expect: BTreeSet<String> = ["leaf"].into_iter().map(String::from).collect();
    assert_eq!(
        recomputed, expect,
        "a local edit with an unchanged summary stays local"
    );
}

const SCC: &str = "module \"scc\"\n\n\
fn @even(i64) -> i64 internal {\nbb0:\n  %c = icmp eq i64 %arg0, 0:i64\n  condbr %c, bb1, bb2\nbb1:\n  ret 1:i64\nbb2:\n  %n = sub i64 %arg0, 1:i64\n  %r = call @odd(%n) -> i64\n  ret %r\n}\n\n\
fn @odd(i64) -> i64 internal {\nbb0:\n  %c = icmp eq i64 %arg0, 0:i64\n  condbr %c, bb1, bb2\nbb1:\n  ret 0:i64\nbb2:\n  %n = sub i64 %arg0, 1:i64\n  %r = call @even(%n) -> i64\n  ret %r\n}\n\n\
fn @aloof() -> i64 internal {\nbb0:\n  ret 7:i64\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  %r = call @even(10:i64) -> i64\n  ret %r\n}\n";

#[test]
fn scc_cycle_edit_reanalyzes_the_cycle_but_not_bystanders() {
    // change @odd's base case: the SCC fixpoint re-runs @odd (fingerprint
    // moved) and @even (its callee's summary moved), and @main sees the
    // new summary; @aloof is untouched by construction
    let edited = SCC.replace("ret 0:i64", "ret 2:i64");
    let recomputed = recomputed_after_edit(SCC, &edited);
    assert!(recomputed.contains("odd"), "edited SCC member re-runs");
    assert!(
        recomputed.contains("even"),
        "SCC sibling re-runs once the cycle's summaries move"
    );
    assert!(
        !recomputed.contains("aloof"),
        "a function outside the SCC and its caller set must stay memoized: {recomputed:?}"
    );
}

const ADDR: &str = "module \"addr\"\n\n\
fn @cb(i64) -> i64 internal {\nbb0:\n  %r = add i64 %arg0, 5:i64\n  ret %r\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  %s = alloca i64 x 1\n  store ptr &@cb, %s\n  ret 3:i64\n}\n";

#[test]
fn address_taken_root_is_isolated_from_unrelated_edits() {
    // @cb is address-taken (analyzed as a root with top arguments) and
    // never directly called: editing @main's unrelated body must not
    // invalidate it, and editing @cb must not invalidate @main (no
    // direct-call edge carries its summary)
    let main_edit = ADDR.replace("ret 3:i64", "ret 4:i64");
    let recomputed = recomputed_after_edit(ADDR, &main_edit);
    let expect: BTreeSet<String> = ["main"].into_iter().map(String::from).collect();
    assert_eq!(recomputed, expect, "address-taken root stays memoized");

    let cb_edit = ADDR.replace("5:i64", "6:i64");
    let recomputed = recomputed_after_edit(ADDR, &cb_edit);
    let expect: BTreeSet<String> = ["cb"].into_iter().map(String::from).collect();
    assert_eq!(
        recomputed, expect,
        "an address-taken root's edit invalidates only itself"
    );
}

// ---------------------------------------------------------------------
// Alias-memo invalidation (PR 8): the points-to leaves are keyed by
// fingerprint + config + callee-summary digest, so an edit that moves a
// callee's mod/ref summary re-solves its callers while a summary-
// preserving body edit stays local — same contract as absint above.
// ---------------------------------------------------------------------

/// Distinct function names whose alias analysis re-ran for `text`,
/// against a manager warmed on `base`.
fn alias_recomputed_after_edit(base: &str, text: &str) -> BTreeSet<String> {
    let m0 = parse_module(base).expect("base fixture parses");
    let mgr = IncrementalAnalysisManager::new();
    let cold = alias::analyze_module_with(&m0, Some(&mgr));
    mgr.drain_alias_recomputed();
    let m1 = parse_module(text).expect("edited fixture parses");
    let inc = alias::analyze_module_with(&m1, Some(&mgr));
    assert_eq!(
        inc,
        alias::analyze_module(&m1),
        "incremental alias re-analysis diverged from scratch"
    );
    if base == text {
        assert_eq!(cold, inc);
    }
    mgr.drain_alias_recomputed().into_iter().collect()
}

const ACHAIN: &str = "module \"achain\"\n\n\
global @g : i64 x 1 mutable internal = []\n\n\
fn @sink(ptr) -> void internal {\nbb0:\n  store i64 1:i64, %arg0\n  ret\n}\n\n\
fn @mid(ptr) -> void internal {\nbb0:\n  call @sink(%arg0) -> void\n  ret\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  call @mid(@g) -> void\n  %v = load i64, @g\n  ret %v\n}\n";

#[test]
fn alias_mod_summary_change_propagates_to_callers() {
    // retargeting @sink's store from its argument to @g moves its mod
    // summary from the parameterized arg object to the global, which must
    // re-solve the whole caller chain through the callee-summary digests
    let edited = ACHAIN.replace("store i64 1:i64, %arg0", "store i64 1:i64, @g");
    assert_ne!(edited, ACHAIN, "fixture edit must apply");
    let recomputed = alias_recomputed_after_edit(ACHAIN, &edited);
    let expect: BTreeSet<String> = ["sink", "mid", "main"]
        .into_iter()
        .map(String::from)
        .collect();
    assert_eq!(
        recomputed, expect,
        "mod-summary change recomputes the chain"
    );
}

#[test]
fn alias_local_edit_with_stable_summary_stays_local() {
    // a pure integer edit inside @sink moves its fingerprint but not its
    // points-to summary: the callers' memo keys are unchanged
    let edited = ACHAIN.replace(
        "bb0:\n  store i64 1:i64, %arg0",
        "bb0:\n  %d = add i64 3:i64, 4:i64\n  store i64 1:i64, %arg0",
    );
    assert_ne!(edited, ACHAIN, "fixture edit must apply");
    let recomputed = alias_recomputed_after_edit(ACHAIN, &edited);
    let expect: BTreeSet<String> = ["sink"].into_iter().map(String::from).collect();
    assert_eq!(
        recomputed, expect,
        "a summary-preserving edit must not invalidate callers"
    );
}

// ---------------------------------------------------------------------
// Scev-memo invalidation: the per-function results are keyed by
// fingerprint + config + a digest of the absint inputs the trip engine
// reads (argument summaries, value facts, callee no-return bits), so a
// caller edit that moves a callee's argument interval re-analyzes the
// callee while an unrelated edit stays local.
// ---------------------------------------------------------------------

/// Distinct function names whose scev analysis re-ran for `text`,
/// against a manager warmed on `base`.
fn scev_recomputed_after_edit(base: &str, text: &str) -> BTreeSet<String> {
    let m0 = parse_module(base).expect("base fixture parses");
    let mgr = IncrementalAnalysisManager::new();
    let cold = scev::analyze_module_with(&m0, Some(&mgr));
    mgr.drain_scev_recomputed();
    let m1 = parse_module(text).expect("edited fixture parses");
    let inc = scev::analyze_module_with(&m1, Some(&mgr));
    assert_eq!(
        inc,
        scev::analyze_module(&m1),
        "incremental scev re-analysis diverged from scratch"
    );
    if base == text {
        assert_eq!(cold, inc);
    }
    mgr.drain_scev_recomputed().into_iter().collect()
}

const SCHAIN: &str = "module \"schain\"\n\n\
fn @count(i64) -> i64 internal {\nbb0:\n  br bb1\nbb1:\n  %i = phi i64 [bb0: 0:i64], [bb2: %n]\n  %c = icmp slt i64 %i, %arg0\n  condbr %c, bb2, bb3\nbb2:\n  %n = add i64 %i, 1:i64\n  br bb1\nbb3:\n  ret %i\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  %a = call @count(10:i64) -> i64\n  ret %a\n}\n";

#[test]
fn scev_absint_digest_change_reanalyzes_the_bound_consumer() {
    // widening the call-site constant moves @count's argument interval,
    // which its symbolic trip bound reads: the absint-input digest in the
    // scev memo key must move and re-run @count (plus @main, whose own
    // fingerprint changed)
    let edited = SCHAIN.replace("@count(10:i64)", "@count(20:i64)");
    assert_ne!(edited, SCHAIN, "fixture edit must apply");
    let recomputed = scev_recomputed_after_edit(SCHAIN, &edited);
    assert!(
        recomputed.contains("count"),
        "bound consumer re-runs when its argument interval moves: {recomputed:?}"
    );
    assert!(recomputed.contains("main"), "edited caller re-runs");
}

#[test]
fn scev_local_edit_with_stable_absint_inputs_stays_local() {
    // a dead-code edit in @main keeps @count's fingerprint and argument
    // summary intact: only @main re-runs
    let edited = SCHAIN.replace(
        "bb0:\n  %a = call @count(10:i64) -> i64",
        "bb0:\n  %d = add i64 3:i64, 4:i64\n  %a = call @count(10:i64) -> i64",
    );
    assert_ne!(edited, SCHAIN, "fixture edit must apply");
    let recomputed = scev_recomputed_after_edit(SCHAIN, &edited);
    let expect: BTreeSet<String> = ["main"].into_iter().map(String::from).collect();
    assert_eq!(
        recomputed, expect,
        "an edit that leaves the callee's absint inputs alone stays local"
    );
}

// ---------------------------------------------------------------------
// Depend-memo invalidation: each function's dependence analysis is
// keyed by fingerprint + config + a digest of the scev loop structure
// and the alias facts/summary/memdep slices it reads, so an edit that
// moves a callee's mod summary (and with it the caller's alias view)
// re-analyzes the caller's dependences, while a summary-preserving body
// edit stays local — the same contract as the alias class above.
// ---------------------------------------------------------------------

/// Distinct function names whose dependence analysis re-ran for `text`,
/// against a manager warmed on `base`.
fn depend_recomputed_after_edit(base: &str, text: &str) -> BTreeSet<String> {
    let m0 = parse_module(base).expect("base fixture parses");
    let mgr = IncrementalAnalysisManager::new();
    let cold = depend::analyze_module_with(&m0, Some(&mgr));
    mgr.drain_depend_recomputed();
    let m1 = parse_module(text).expect("edited fixture parses");
    let inc = depend::analyze_module_with(&m1, Some(&mgr));
    assert_eq!(
        inc,
        depend::analyze_module(&m1),
        "incremental depend re-analysis diverged from scratch"
    );
    if base == text {
        assert_eq!(cold, inc);
    }
    mgr.drain_depend_recomputed().into_iter().collect()
}

const DCHAIN: &str = "module \"dchain\"\n\n\
global @g : i64 x 1 mutable internal = []\n\n\
fn @sink(ptr) -> void internal {\nbb0:\n  store i64 1:i64, %arg0\n  ret\n}\n\n\
fn @looper(ptr) -> i64 internal {\nbb0:\n  br bb1\nbb1:\n  %i = phi i64 [bb0: 0:i64], [bb2: %n]\n  %c = icmp slt i64 %i, 8:i64\n  condbr %c, bb2, bb3\nbb2:\n  call @sink(%arg0) -> void\n  %v = load i64, %arg0\n  %n = add i64 %i, %v\n  br bb1\nbb3:\n  ret %i\n}\n\n\
fn @main() -> i64 internal {\nbb0:\n  %s = alloca i64 x 1\n  store i64 0:i64, %s\n  %r = call @looper(%s) -> i64\n  ret %r\n}\n";

#[test]
fn depend_reanalyzes_a_caller_when_the_callee_alias_view_moves() {
    // retargeting @sink's store to @g changes its mod summary; @looper's
    // call-site memdep/facts move with it, so its dependence analysis
    // (which disambiguates the call against the loop's load) must re-run
    let edited = DCHAIN.replace("store i64 1:i64, %arg0", "store i64 1:i64, @g");
    assert_ne!(edited, DCHAIN, "fixture edit must apply");
    let recomputed = depend_recomputed_after_edit(DCHAIN, &edited);
    assert!(recomputed.contains("sink"), "edited callee re-runs");
    assert!(
        recomputed.contains("looper"),
        "caller's dependence view follows the callee summary: {recomputed:?}"
    );
}

#[test]
fn depend_local_edit_with_stable_alias_inputs_stays_local() {
    // a dead integer edit in @main leaves @sink and @looper's
    // fingerprints and alias slices intact: only @main re-runs
    let edited = DCHAIN.replace(
        "bb0:\n  %s = alloca i64 x 1",
        "bb0:\n  %d = add i64 3:i64, 4:i64\n  %s = alloca i64 x 1",
    );
    assert_ne!(edited, DCHAIN, "fixture edit must apply");
    let recomputed = depend_recomputed_after_edit(DCHAIN, &edited);
    let expect: BTreeSet<String> = ["main"].into_iter().map(String::from).collect();
    assert_eq!(
        recomputed, expect,
        "an edit that leaves the loop function's inputs alone stays local"
    );
}

#[test]
fn depend_loop_body_edit_moves_the_verdict_and_only_that_function() {
    // turning the loop's disjoint-array copy into a distance-1 shift
    // flips vector_safe; the sibling function is untouched
    const TWO: &str = "module \"dtwo\"\n\n\
fn @shift(ptr) -> i64 internal {\nbb0:\n  br bb1\nbb1:\n  %i = phi i64 [bb0: 0:i64], [bb2: %n]\n  %c = icmp slt i64 %i, 8:i64\n  condbr %c, bb2, bb3\nbb2:\n  %p = gep i64, %arg0, %i\n  %v = load i64, %p\n  %q = gep i64, %arg0, %i\n  store i64 %v, %q\n  %n = add i64 %i, 1:i64\n  br bb1\nbb3:\n  ret %i\n}\n\n\
fn @aloof() -> i64 internal {\nbb0:\n  ret 7:i64\n}\n";
    let edited = TWO.replace(
        "%q = gep i64, %arg0, %i",
        "%t = add i64 %i, 1:i64\n  %q = gep i64, %arg0, %t",
    );
    assert_ne!(edited, TWO, "fixture edit must apply");
    let recomputed = depend_recomputed_after_edit(TWO, &edited);
    let expect: BTreeSet<String> = ["shift"].into_iter().map(String::from).collect();
    assert_eq!(recomputed, expect, "only the edited loop function re-runs");

    // and the verdicts really did move
    let m = parse_module(&edited).unwrap();
    let md = depend::analyze_module(&m);
    let fid = m.func_by_name("shift").unwrap();
    let l = &md.func(fid).unwrap().loops[0];
    assert!(!l.parallel_safe, "the shifted store carries a dependence");
}

/// Validate obligations: memoized verdicts are bit-identical to fresh
/// ones, both on the cold run (misses) and the warm rerun (hits).
#[test]
fn validate_verdicts_match_with_memoization() {
    let pm = PassManager::new();
    let cfg = ValidateConfig::default();
    for (name, m0) in corpus().iter().take(6) {
        for pass in ["instcombine", "simplifycfg"] {
            let mut post = m0.clone();
            pm.run_pass(&mut post, pass).unwrap();
            let full = validate_transform(m0, &post, &cfg);
            let mgr = IncrementalAnalysisManager::new();
            let cold = validate_transform_with(m0, &post, &cfg, Some(&mgr));
            let warm = validate_transform_with(m0, &post, &cfg, Some(&mgr));
            assert_eq!(
                format!("{full:?}"),
                format!("{cold:?}"),
                "{name}/{pass}: cold memoized validation diverged"
            );
            assert_eq!(
                format!("{cold:?}"),
                format!("{warm:?}"),
                "{name}/{pass}: warm memoized validation diverged"
            );
            let stats = mgr.stats();
            assert!(
                stats.validate.misses > 0,
                "{name}/{pass}: the cold run must populate the table"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Nightly sweep (opt-in): bit-identity + warm-path speedup, archived.
// ---------------------------------------------------------------------

#[test]
fn incremental_sweep_archives_mismatches_and_speedup() {
    if std::env::var("POSETRL_INCREMENTAL_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    let step: usize = posetrl_analyze::env_budget_or_usage("POSETRL_INCREMENTAL_SWEEP_STEP", 1);
    let pm = PassManager::new();
    let space = ActionSpace::odg();
    let embedder = Embedder::default();
    let cfg_digest = digest_str(&format!("{:?}", embedder.config()));
    // the determinism suite's fixed 15-action episode
    let episode: [usize; 15] = [8, 23, 30, 13, 5, 19, 0, 33, 21, 10, 2, 27, 17, 6, 31];

    let mut modules = 0usize;
    let mut states = 0usize;
    let mut mismatches = 0usize;
    let mut mismatch_names: Vec<String> = Vec::new();
    let mut full_ns = 0u128;
    let mut inc_ns = 0u128;
    let mut agg_stats = posetrl_analyze::IncrementalStats::default();

    for b in posetrl_workloads::training_suite().iter().step_by(step) {
        modules += 1;
        // materialize the episode's 16 module states
        let mut m = b.module.clone();
        let mut trajectory = vec![m.clone()];
        for &a in &episode {
            for pass in space.subsequence(a % space.len()) {
                pm.run_pass(&mut m, pass).unwrap();
            }
            trajectory.push(m.clone());
        }
        states += trajectory.len();

        // from-scratch pass over the whole trajectory (the warm-path
        // baseline: each state re-encoded and re-analyzed in full)
        let t0 = std::time::Instant::now();
        let full: Vec<_> = trajectory
            .iter()
            .map(|m| {
                (
                    embedder.embed_module(m),
                    run_all(m),
                    absint::analyze_module(m),
                    alias::analyze_module(m),
                    scev::analyze_module(m),
                    depend::analyze_module(m),
                )
            })
            .collect();
        full_ns += t0.elapsed().as_nanos();

        // incremental: prime the manager on the trajectory once (cold),
        // then time the warm pass — this is what episode N+1 on the same
        // module costs, i.e. the parallel_eval warm path
        let mgr = IncrementalAnalysisManager::new();
        for m in &trajectory {
            let _ = embed_incremental(&embedder, cfg_digest, m, &mgr);
            let _ = run_all_with(m, Some(&mgr));
            let _ = absint::analyze_module_with(m, Some(&mgr));
            let _ = alias::analyze_module_with(m, Some(&mgr));
            let _ = scev::analyze_module_with(m, Some(&mgr));
            let _ = depend::analyze_module_with(m, Some(&mgr));
        }
        let t1 = std::time::Instant::now();
        let inc: Vec<_> = trajectory
            .iter()
            .map(|m| {
                (
                    embed_incremental(&embedder, cfg_digest, m, &mgr),
                    run_all_with(m, Some(&mgr)),
                    absint::analyze_module_with(m, Some(&mgr)),
                    alias::analyze_module_with(m, Some(&mgr)),
                    scev::analyze_module_with(m, Some(&mgr)),
                    depend::analyze_module_with(m, Some(&mgr)),
                )
            })
            .collect();
        inc_ns += t1.elapsed().as_nanos();

        for (i, ((fe, fl, fa, fal, fs, fd), (ie, il, ia, ial, is, id))) in
            full.iter().zip(&inc).enumerate()
        {
            if bits(fe) != bits(ie) || fl != il || fa != ia || fal != ial || fs != is || fd != id {
                mismatches += 1;
                mismatch_names.push(format!("{} state {i}", b.name));
            }
        }
        let s = mgr.stats();
        agg_stats.embed.hits += s.embed.hits;
        agg_stats.embed.misses += s.embed.misses;
        agg_stats.lint.hits += s.lint.hits;
        agg_stats.lint.misses += s.lint.misses;
        agg_stats.absint.hits += s.absint.hits;
        agg_stats.absint.misses += s.absint.misses;
        agg_stats.alias.hits += s.alias.hits;
        agg_stats.alias.misses += s.alias.misses;
        agg_stats.scev.hits += s.scev.hits;
        agg_stats.scev.misses += s.scev.misses;
        agg_stats.depend.hits += s.depend.hits;
        agg_stats.depend.misses += s.depend.misses;
    }

    let speedup = full_ns as f64 / inc_ns.max(1) as f64;
    let class_json = |c: posetrl_analyze::ClassStats| {
        serde_json::json!({
            "hits": c.hits,
            "misses": c.misses,
        })
    };
    let memo = serde_json::json!({
        "embed": class_json(agg_stats.embed),
        "lint": class_json(agg_stats.lint),
        "absint": class_json(agg_stats.absint),
        "alias": class_json(agg_stats.alias),
        "scev": class_json(agg_stats.scev),
        "depend": class_json(agg_stats.depend),
    });
    let payload = serde_json::json!({
        "modules": modules,
        "states": states,
        "mismatches": mismatches,
        "mismatch_names": mismatch_names,
        "full_ns": full_ns as u64,
        "incremental_warm_ns": inc_ns as u64,
        "speedup": speedup,
        "memo": memo,
    });
    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/incremental_sweep.json",
        serde_json::to_string_pretty(&payload).unwrap(),
    )
    .unwrap();
    eprintln!(
        "[incremental-sweep] {modules} modules / {states} states: \
         {mismatches} mismatches, warm speedup {speedup:.2}x ({})",
        agg_stats.render()
    );

    assert_eq!(
        mismatches, 0,
        "incremental results diverged from scratch: {mismatch_names:?}"
    );
    assert!(
        speedup >= 2.0,
        "warm incremental path must be at least 2x faster than from-scratch \
         (measured {speedup:.2}x)"
    );
}
