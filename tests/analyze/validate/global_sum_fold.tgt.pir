; Constant-global folding target: the loop replaced by the folded sum.
; The table is const, so every load is a known value.
; expect: proved
module "global_sum_fold"
global @table : i64 x 4 const internal = [10:i64, 20:i64, 30:i64, 40:i64]

fn @f() -> i64 internal {
bb0:
  ret 100:i64
}
