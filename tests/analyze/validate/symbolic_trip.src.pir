; Symbolic-trip-count source: a while-loop whose bound is %arg0, so
; bounded unrolling can never exhaust the input space. The pair's
; target is the rotated (do-while) form — correct, but the CFG is
; genuinely restructured, so no structural normalization can equate
; them and the symbolic route runs out of unrolling budget.
module "symbolic_trip"

fn @f(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, %arg0
  condbr %c, bb2, bb3
bb2:
  %s2 = add i64 %s, %arg0
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
