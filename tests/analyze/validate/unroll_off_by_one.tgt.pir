; Off-by-one unrolling target: five adds instead of four — returns
; 5*%arg0 where the source returns 4*%arg0. Any nonzero argument is a
; counterexample; the validator must find and confirm one.
; expect: refuted
module "unroll_off_by_one"

fn @f(i64) -> i64 internal {
bb0:
  %t1 = add i64 0:i64, %arg0
  %t2 = add i64 %t1, %arg0
  %t3 = add i64 %t2, %arg0
  %t4 = add i64 %t3, %arg0
  %t5 = add i64 %t4, %arg0
  ret %t5
}
