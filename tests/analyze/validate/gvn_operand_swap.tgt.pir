; Bogus-GVN target: `%arg1 - %arg0` is not `%arg0 - %arg1`; any pair
; of distinct arguments is a counterexample.
; expect: refuted
module "gvn_operand_swap"

fn @f(i64, i64) -> i64 internal {
bb0:
  %d = sub i64 %arg1, %arg0
  ret %d
}
