; Phi-reordering target: same diamond, incoming list reversed. Phi
; semantics select by predecessor edge, so order is immaterial — but
; the printed text differs, forcing the symbolic route.
; expect: proved
module "phi_reorder"

fn @f(i64) -> i64 internal {
bb0:
  %c = icmp sgt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  %a = add i64 %arg0, 1:i64
  br bb3
bb2:
  %b = sub i64 %arg0, 1:i64
  br bb3
bb3:
  %p = phi i64 [bb2: %b], [bb1: %a]
  ret %p
}
