; Undef-narrowing source: @f returns the concrete 42. The pair's
; target replaces it with undef — refinement run backwards.
module "undef_narrow"

fn @f() -> i64 internal {
bb0:
  ret 42:i64
}
