; Trap-hoisting target: the `sdiv` speculated above its guard. This is
; the classic unsound hoist — the optimized function traps on
; %arg0 == 0 where the source returned 0. The validator must produce a
; concrete, interpreter-confirmed counterexample.
; expect: refuted
module "licm_trap_hoist"

fn @f(i64) -> i64 internal {
bb0:
  %q = sdiv i64 100:i64, %arg0
  %c = icmp ne i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  ret %q
bb2:
  ret 0:i64
}
