; Constant-global folding source: sums a 4-element const table with a
; counted loop. The pair's target folds the whole sum to a constant.
module "global_sum_fold"
global @table : i64 x 4 const internal = [10:i64, 20:i64, 30:i64, 40:i64]

fn @f() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, 4:i64
  condbr %c, bb2, bb3
bb2:
  %p = gep i64, @table, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
