; Undef-narrowing target: a defined value degraded to undef. This is
; the unsound direction — undef does not refine 42.
; expect: refuted
module "undef_narrow"

fn @f() -> i64 internal {
bb0:
  %u = add i64 undef:i64, 0:i64
  ret %u
}
