; GVN source: the same `add` computed twice. The pair's target reuses
; the first computation.
module "gvn_cse"

fn @f(i64, i64) -> i64 internal {
bb0:
  %x = add i64 %arg0, %arg1
  %y = add i64 %arg0, %arg1
  %z = mul i64 %x, %y
  ret %z
}
