; SCCP source: a branch whose condition is a compile-time constant —
; the false arm is dead. The pair's target folds the branch away.
module "sccp_fold"

fn @f(i64) -> i64 internal {
bb0:
  %c = icmp slt i64 1:i64, 2:i64
  condbr %c, bb1, bb2
bb1:
  %r = add i64 %arg0, 7:i64
  ret %r
bb2:
  ret 0:i64
}
