; Phi-reordering source: a diamond merging two arms through a phi.
; The pair's target lists the incoming edges in the opposite order.
module "phi_reorder"

fn @f(i64) -> i64 internal {
bb0:
  %c = icmp sgt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  %a = add i64 %arg0, 1:i64
  br bb3
bb2:
  %b = sub i64 %arg0, 1:i64
  br bb3
bb3:
  %p = phi i64 [bb1: %a], [bb2: %b]
  ret %p
}
