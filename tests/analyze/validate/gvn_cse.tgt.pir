; GVN target: the redundant `add` eliminated.
; expect: proved
module "gvn_cse"

fn @f(i64, i64) -> i64 internal {
bb0:
  %x = add i64 %arg0, %arg1
  %z = mul i64 %x, %x
  ret %z
}
