; Bogus-GVN source: a subtraction. The pair's target swaps its
; operands as if `sub` were commutative.
module "gvn_operand_swap"

fn @f(i64, i64) -> i64 internal {
bb0:
  %d = sub i64 %arg0, %arg1
  ret %d
}
