; Trap-hoisting source: the `sdiv` only executes under the nonzero
; guard, so @f is total. The pair's target hoists the division above
; the guard, introducing a division-by-zero trap for %arg0 == 0.
module "licm_trap_hoist"

fn @f(i64) -> i64 internal {
bb0:
  %c = icmp ne i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  %q = sdiv i64 100:i64, %arg0
  ret %q
bb2:
  ret 0:i64
}
