; Store-forwarding target: the stack slot promoted away entirely.
; expect: proved
module "mem2reg_forward"

fn @f(i64) -> i64 internal {
bb0:
  %r = add i64 %arg0, 9:i64
  ret %r
}
