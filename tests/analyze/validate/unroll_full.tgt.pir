; Loop-unrolling target: the loop replaced by four explicit adds. The
; control-flow shapes share nothing textually; only the symbolic route
; can prove this pair.
; expect: proved
module "unroll_full"

fn @f(i64) -> i64 internal {
bb0:
  %t1 = add i64 0:i64, %arg0
  %t2 = add i64 %t1, %arg0
  %t3 = add i64 %t2, %arg0
  %t4 = add i64 %t3, %arg0
  ret %t4
}
