; LICM source: a loop-invariant `add` recomputed every iteration of a
; counted loop. The pair's target hoists it to the preheader.
module "licm_safe"

fn @f(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, 4:i64
  condbr %c, bb2, bb3
bb2:
  %t = add i64 %arg0, 5:i64
  %s2 = add i64 %s, %t
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
