; Symbolic-trip-count target: the rotated do-while form with a guard.
; The validator must refuse to guess: beyond the unrolling bound it
; reports inconclusive and the sanitizer escalates to differential
; execution instead.
; expect: inconclusive
module "symbolic_trip"

fn @f(i64) -> i64 internal {
bb0:
  %c0 = icmp slt i64 0:i64, %arg0
  condbr %c0, bb1, bb2
bb1:
  %i = phi i64 [bb0: 0:i64], [bb1: %i2]
  %s = phi i64 [bb0: 0:i64], [bb1: %s2]
  %s2 = add i64 %s, %arg0
  %i2 = add i64 %i, 1:i64
  %c = icmp slt i64 %i2, %arg0
  condbr %c, bb1, bb2
bb2:
  %sx = phi i64 [bb0: 0:i64], [bb1: %s2]
  ret %sx
}
