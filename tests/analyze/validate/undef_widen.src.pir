; Undef-widening source: @f returns undef (an `add` of undef). A pass
; may replace undef with any concrete value.
module "undef_widen"

fn @f() -> i64 internal {
bb0:
  %u = add i64 undef:i64, 0:i64
  ret %u
}
