; Store-forwarding source: a value round-trips through a stack slot.
; The pair's target forwards the stored value to the load.
module "mem2reg_forward"

fn @f(i64) -> i64 internal {
bb0:
  %slot = alloca i64 x 1
  store i64 %arg0, %slot
  %v = load i64, %slot
  %r = add i64 %v, 9:i64
  ret %r
}
