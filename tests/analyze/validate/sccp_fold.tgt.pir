; SCCP target: the constant branch and the dead arm removed.
; expect: proved
module "sccp_fold"

fn @f(i64) -> i64 internal {
bb0:
  %r = add i64 %arg0, 7:i64
  ret %r
}
