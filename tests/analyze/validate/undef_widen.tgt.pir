; Undef-widening target: undef refined to the concrete 42. Sound —
; every concrete value is a legal refinement of undef.
; expect: proved
module "undef_widen"

fn @f() -> i64 internal {
bb0:
  ret 42:i64
}
