; A pure unused instruction plus a block no path reaches.
; expect: dead-inst, unreachable-block
module "dead_code"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 1:i64, 2:i64
  ret 3:i64
bb1:
  ret 4:i64
}
