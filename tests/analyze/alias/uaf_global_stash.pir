; expect: alias-uaf
; Publishing a stack address through a global cell: the global outlives
; the frame, so any later dereference is a use-after-free.
module "uaf_global_stash"
global @slot : ptr x 1 mutable internal = []
fn @stash() -> void internal {
bb0:
  %p = alloca i64 x 1
  store ptr %p, @slot
  ret
}
