; expect:
; False-positive guard: function addresses are first-class tracked
; objects; storing and reloading one through a mutable global is benign.
module "fn_pointer_clean"
global @cb : ptr x 1 mutable internal = []
fn @callee(i64) -> i64 internal {
bb0:
  %r = add i64 %arg0, 1:i64
  ret %r
}
fn @main() -> ptr internal {
bb0:
  store ptr &@callee, @cb
  %f = load ptr, @cb
  ret %f
}
