; expect:
; False-positive guard: the callee initializes the slot through its
; argument, so the caller's load is neither uninitialized nor is the
; callee's store dead (the target is caller memory).
module "modref_clean"
fn @init(ptr) -> void internal {
bb0:
  store i64 7:i64, %arg0
  ret
}
fn @main() -> i64 internal {
bb0:
  %p = alloca i64 x 1
  call @init(%p) -> void
  %v = load i64, %p
  ret %v
}
