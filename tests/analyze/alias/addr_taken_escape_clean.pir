; expect:
; False-positive guard: @work's address escapes to unknown code, so its
; exported mod/ref summary saturates to top — which must not invent
; findings in @work itself or in @main.
module "addr_taken_escape_clean"
global @n : i64 x 1 mutable internal = [0:i64]
declare @register(ptr) -> void
fn @work() -> void internal {
bb0:
  store i64 1:i64, @n
  ret
}
fn @main(i64) -> i64 internal {
bb0:
  call @register(&@work) -> void
  %v = load i64, @n
  ret %v
}
