; expect: alias-uaf
; Returning the address of an own stack slot: the pointer dangles the
; moment the frame is popped. The points-to summary carries the alloca
; object through the `ret` export.
module "uaf_ret_local"
fn @leak() -> ptr internal {
bb0:
  %p = alloca i64 x 1
  ret %p
}
fn @main() -> i64 internal {
bb0:
  ret 0:i64
}
