; expect: store-dead
; Two separate unread cells of the same private slot: both stores are
; proven dead independently (distinct constant offsets).
module "dead_store_double"
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 2
  store i64 1:i64, %p
  %q = gep i64, %p, 1:i64
  store i64 2:i64, %q
  %v = add i64 %arg0, 1:i64
  ret %v
}
