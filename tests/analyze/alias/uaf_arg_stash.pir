; expect: alias-uaf
; Publishing a stack address through caller memory (a pointer argument):
; the symbolic Arg object marks the target as outliving the frame.
module "uaf_arg_stash"
fn @stash(ptr) -> void internal {
bb0:
  %p = alloca i64 x 1
  store ptr %p, %arg0
  ret
}
