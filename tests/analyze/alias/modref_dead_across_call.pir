; expect: store-dead
; The call's ref summary covers only @g, so it cannot observe the
; private slot: the store stays dead across the call. A summary-free
; analysis would have to assume the call reads everything.
module "modref_dead_across_call"
global @g : i64 x 1 mutable internal = [3:i64]
fn @geta() -> i64 internal {
bb0:
  %v = load i64, @g
  ret %v
}
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 1
  store i64 %arg0, %p
  %v = call @geta() -> i64
  ret %v
}
