; expect: store-dead
; The slot is frame-private, the store is in bounds, and nothing on any
; path reads it back.
module "dead_store_simple"
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 1
  store i64 %arg0, %p
  ret %arg0
}
