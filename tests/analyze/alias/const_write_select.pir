; expect: const-write
; Both select arms are immutable globals, so every object the stored-to
; pointer can refer to is read-only.
module "const_write_select"
global @a : i64 x 1 const internal = [1:i64]
global @b : i64 x 1 const internal = [2:i64]
fn @main(i64) -> void internal {
bb0:
  %c = icmp sgt i64 %arg0, 0:i64
  %p = select ptr %c, @a, @b
  store i64 9:i64, %p
  ret
}
