; expect: uninit-load
; The loaded pointer is a phi over two never-written private slots; the
; syntactic lint cannot see through the merge, the points-to one can.
module "uninit_phi"
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 1
  %q = alloca i64 x 1
  %c = icmp sgt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %r = phi ptr [bb1: %p], [bb2: %q]
  %v = load i64, %r
  ret %v
}
