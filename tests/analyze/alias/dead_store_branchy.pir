; expect: store-dead
; Cross-block proof: the store to %p is dead because no block reachable
; from bb0 may read it; the store to %q stays (read in bb1).
module "dead_store_branchy"
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 1
  %q = alloca i64 x 1
  store i64 7:i64, %p
  store i64 %arg0, %q
  %c = icmp sgt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  %v = load i64, %q
  ret %v
bb2:
  ret 0:i64
}
