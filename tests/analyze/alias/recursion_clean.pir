; expect:
; False-positive guard: the recursive ref summary still names the
; argument object, so the caller's store has a may-reader and survives.
module "recursion_clean"
fn @sum(ptr, i64) -> i64 internal {
bb0:
  %c = icmp sgt i64 %arg1, 0:i64
  condbr %c, bb1, bb2
bb1:
  %v = load i64, %arg0
  %n = sub i64 %arg1, 1:i64
  %r = call @sum(%arg0, %n) -> i64
  %s = add i64 %v, %r
  ret %s
bb2:
  ret 0:i64
}
fn @main(i64) -> i64 internal {
bb0:
  %p = alloca i64 x 1
  store i64 %arg0, %p
  %t = call @sum(%p, 3:i64) -> i64
  ret %t
}
