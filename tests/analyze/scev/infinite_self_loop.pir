; expect: infinite-loop
; A single-block loop whose only terminator branches back to itself:
; there is no exit edge at all, so the loop can never terminate.
module "infinite_self_loop"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  br bb1
}
