; expect:
; False-positive guard: a downward counted loop (10..0 by -1) moves
; *toward* its bound — the away-walk heuristic must not fire.
module "clean_counted_down"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 10:i64], [bb2: %n]
  %c = icmp sgt i64 %i, 0:i64
  condbr %c, bb2, bb3
bb2:
  %n = sub i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
