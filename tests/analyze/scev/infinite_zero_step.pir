; expect: infinite-loop
; The induction variable never advances (step 0), so the controlling
; `slt` test holds forever.
module "infinite_zero_step"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 0:i64
  br bb1
bb3:
  ret %i
}
