; expect:
; False-positive guard: a 4x3 nested counted loop — both levels have
; exact trips and the nest produces no findings.
module "clean_nested"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb4: %ni]
  %ci = icmp slt i64 %i, 4:i64
  condbr %ci, bb2, bb5
bb2:
  br bb3
bb3:
  %j = phi i64 [bb2: 0:i64], [bb3a: %nj]
  %cj = icmp slt i64 %j, 3:i64
  condbr %cj, bb3a, bb4
bb3a:
  %nj = add i64 %j, 1:i64
  br bb3
bb4:
  %ni = add i64 %i, 1:i64
  br bb1
bb5:
  ret %i
}
