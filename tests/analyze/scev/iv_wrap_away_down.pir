; expect: iv-overflow
; The walk moves *away* from the `slt` upper bound (negative step):
; only a signed wrap around i64 can ever make the test fail.
module "iv_wrap_away_down"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %n = sub i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
