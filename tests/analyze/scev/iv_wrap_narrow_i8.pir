; expect: iv-overflow
; i8 walk 0, 100, -56, 44, ...: the loop does exit (the trip count is
; exact), but only after the induction variable wraps its 8-bit type.
module "iv_wrap_narrow_i8"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i8 [bb0: 0:i8], [bb2: %n]
  %c = icmp slt i8 %i, 120:i8
  condbr %c, bb2, bb3
bb2:
  %n = add i8 %i, 100:i8
  br bb1
bb3:
  ret 0:i64
}
