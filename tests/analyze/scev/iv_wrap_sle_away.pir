; expect: iv-overflow
; Same away-walk as iv_wrap_away_down but under `sle`: the inclusive
; predicate takes the same only-a-wrap-exits classification.
module "iv_wrap_sle_away"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp sle i64 %i, 100:i64
  condbr %c, bb2, bb3
bb2:
  %n = sub i64 %i, 3:i64
  br bb1
bb3:
  ret %i
}
