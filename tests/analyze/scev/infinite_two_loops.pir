; expect: infinite-loop
; Two separately diagnosed non-terminating loops in one module: a
; zero-step spin in @spin and a no-exit self loop in @main.
module "infinite_two_loops"
fn @spin() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 5:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 0:i64
  br bb1
bb3:
  ret %i
}
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  br bb1
}
