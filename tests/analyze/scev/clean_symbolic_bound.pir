; expect:
; False-positive guard: the bound is a function argument the analysis
; cannot resolve to a constant — the trip stays Unknown, but an unknown
; trip is not evidence of non-termination and must not be flagged.
module "clean_symbolic_bound"
fn @count(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, %arg0
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
fn @main() -> i64 internal {
bb0:
  %a = call @count(7:i64) -> i64
  ret %a
}
