; expect: infinite-loop
; Downward even walk 10, 8, 6, ... against an odd `ne` bound: the
; parity mismatch holds for negative steps too.
module "infinite_ne_parity_down"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 10:i64], [bb2: %n]
  %c = icmp ne i64 %i, 3:i64
  condbr %c, bb2, bb3
bb2:
  %n = sub i64 %i, 2:i64
  br bb1
bb3:
  ret %i
}
