; expect: infinite-loop
; `i != 9` with i = 0, 2, 4, ...: an even walk can never equal an odd
; bound, so the exit condition provably never triggers.
module "infinite_ne_parity"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp ne i64 %i, 9:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 2:i64
  br bb1
bb3:
  ret %i
}
