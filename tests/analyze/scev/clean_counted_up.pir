; expect:
; False-positive guard: the canonical counted loop (0..10 by 1) has an
; exact trip of 10 and must produce no findings.
module "clean_counted_up"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
