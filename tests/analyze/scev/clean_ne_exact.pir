; expect:
; False-positive guard: `i != 10` with a unit step lands exactly on the
; bound — the ne-residue test is solvable and the loop exits cleanly.
module "clean_ne_exact"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp ne i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
