; expect: infinite-loop
; Step 4 reaches only multiples of 4, and 6 mod 4 = 2: the residue test
; (2^tz(step) must divide bound - init) proves the `ne` exit unsolvable.
module "infinite_ne_pow2"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp ne i64 %i, 6:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 4:i64
  br bb1
bb3:
  ret %i
}
