; expect: iv-overflow
; Walking up from 10 while the loop continues as long as `i > 0`: the
; exit needs i to drop to zero, which only signed overflow can deliver.
module "iv_wrap_away_up"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 10:i64], [bb2: %n]
  %c = icmp sgt i64 %i, 0:i64
  condbr %c, bb2, bb3
bb2:
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
