; expect: iv-overflow
; i8 decrement against `slt 10`: the walk runs down through -128,
; wraps to 127 and exits — exact trip, but flagged as wrapping.
module "iv_wrap_i8_downwrap"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i8 [bb0: 0:i8], [bb2: %n]
  %c = icmp slt i8 %i, 10:i8
  condbr %c, bb2, bb3
bb2:
  %n = sub i8 %i, 1:i8
  br bb1
bb3:
  ret 0:i64
}
