; Branching on undef: the undef-propagation analysis must flag the condbr.
; expect: undef-control
module "undef_control"

fn @main() -> i64 internal {
bb0:
  condbr undef:i1, bb1, bb2
bb1:
  ret 1:i64
bb2:
  ret 2:i64
}
