; expect: loop-carried-uaf
; Each iteration dereferences the pointer stored by the PREVIOUS
; iteration (the feeding store sits after the load in the body), and
; that pointer is a stack slot allocated inside the loop: a slot from a
; dead frame-iteration is read back.
module "uaf_prior_iteration_slot"
fn @main() -> i64 internal {
bb0:
  %cell = alloca ptr x 1
  %first = alloca i64 x 1
  store ptr %first, %cell
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %old = load ptr, %cell
  %v = load i64, %old
  %slot = alloca i64 x 1
  store i64 %v, %slot
  store ptr %slot, %cell
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
