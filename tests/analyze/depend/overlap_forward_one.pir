; expect: overlap-copy
; memcpy(a+1, a, 4): source and destination windows overlap by three
; elements — the copy direction matters and memcpy forbids it.
module "overlap_forward_one"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %d = gep i64, %a, 1:i64
  memcpy i64 %d, %a, 4:i64
  ret 0:i64
}
