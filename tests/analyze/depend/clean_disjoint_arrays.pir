; expect:
; b[i] = a[i] over distinct allocas: the alias analysis disambiguates
; every cross-array pair and the loop is parallel-safe — nothing to
; report.
module "clean_disjoint_arrays"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 16
  %b = alloca i64 x 16
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %ps = gep i64, %a, %i
  %v = load i64, %ps
  %pd = gep i64, %b, %i
  store i64 %v, %pd
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
