; expect: overlap-copy
; The overlapping endpoints are built by chained geps (1 + 1 vs 0): the
; symbolic subscript walk accumulates offsets through the chain.
module "overlap_chained_gep"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %m = gep i64, %a, 1:i64
  %d = gep i64, %m, 1:i64
  memcpy i64 %d, %a, 3:i64
  ret 0:i64
}
