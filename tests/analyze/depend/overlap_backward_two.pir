; expect: overlap-copy
; memcpy(a, a+2, 4): the backward-overlapping direction is flagged the
; same way — the subscript difference 2 is inside the length 4.
module "overlap_backward_two"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %s = gep i64, %a, 2:i64
  memcpy i64 %a, %s, 4:i64
  ret 0:i64
}
