; expect: overlap-copy
; The windows share exactly one element (offset difference 3, length
; 4): still an overlap — the boundary case the < length test must keep.
module "overlap_len_edge"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %d = gep i64, %a, 3:i64
  memcpy i64 %d, %a, 4:i64
  ret 0:i64
}
