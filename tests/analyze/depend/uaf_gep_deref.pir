; expect: loop-carried-uaf
; The previous iteration's slot is dereferenced through a gep off the
; loaded pointer — the deref set is closed over gep chains, so the
; indirection does not hide the stale read.
module "uaf_gep_deref"
fn @main() -> i64 internal {
bb0:
  %cell = alloca ptr x 1
  %first = alloca i64 x 4
  store ptr %first, %cell
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 8:i64
  condbr %c, bb2, bb3
bb2:
  %old = load ptr, %cell
  %q = gep i64, %old, 1:i64
  %v = load i64, %q
  %slot = alloca i64 x 4
  %s1 = gep i64, %slot, 1:i64
  store i64 %v, %s1
  store ptr %slot, %cell
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
