; expect:
; The slot is allocated, stored and reloaded within one iteration (the
; feeding store precedes the load), so no stale pointer crosses the
; back edge — a false-positive guard for loop-carried-uaf.
module "clean_same_iteration_slot"
fn @main() -> i64 internal {
bb0:
  %cell = alloca ptr x 1
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %slot = alloca i64 x 1
  store i64 %i, %slot
  store ptr %slot, %cell
  %p = load ptr, %cell
  %v = load i64, %p
  %n = add i64 %v, 1:i64
  br bb1
bb3:
  ret 0:i64
}
