; expect:
; a[2i] = a[2i+1]: even and odd cells never meet (the strong-SIV gcd
; refutation), so the loop carries nothing despite the shared base.
module "clean_strided_parity"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 32
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %e = mul i64 %i, 2:i64
  %o = add i64 %e, 1:i64
  %ps = gep i64, %a, %o
  %v = load i64, %ps
  %pd = gep i64, %a, %e
  store i64 %v, %pd
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
