; expect: overlap-copy
; Two independent overlapping copies in one function: each is reported
; at its own instruction.
module "overlap_two_copies"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %b = alloca i64 x 8
  %da = gep i64, %a, 1:i64
  memcpy i64 %da, %a, 2:i64
  %db = gep i64, %b, 2:i64
  memcpy i64 %db, %b, 3:i64
  ret 0:i64
}
