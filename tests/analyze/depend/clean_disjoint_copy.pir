; expect:
; memcpy(a+4, a, 4): the windows touch but do not overlap — a false-
; positive guard for the strict < length comparison.
module "clean_disjoint_copy"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 8
  %d = gep i64, %a, 4:i64
  memcpy i64 %d, %a, 4:i64
  ret 0:i64
}
