; expect: loop-carried-uaf
; Two independent handoff cells, each carrying a loop-local slot across
; the back edge: both loads read a prior iteration's allocation.
module "uaf_two_cells"
fn @main() -> i64 internal {
bb0:
  %ca = alloca ptr x 1
  %cb = alloca ptr x 1
  %fa = alloca i64 x 1
  %fb = alloca i64 x 1
  store ptr %fa, %ca
  store ptr %fb, %cb
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 6:i64
  condbr %c, bb2, bb3
bb2:
  %oa = load ptr, %ca
  %va = load i64, %oa
  %ob = load ptr, %cb
  %vb = load i64, %ob
  %sa = alloca i64 x 1
  %sb = alloca i64 x 1
  store i64 %va, %sa
  store i64 %vb, %sb
  store ptr %sa, %ca
  store ptr %sb, %cb
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
