; Call arity disagrees with the callee signature; structurally broken, so
; only the verifier finding is reported.
; expect: verify
module "bad_call"

declare @g(i64) -> i64

fn @main() -> i64 internal {
bb0:
  %0 = call @g() -> i64
  ret %0
}
