; A global and a function sharing one name: the verifier only checks
; function-vs-function clashes, so the cross-namespace collision is the
; lint suite's to catch.
; expect: dup-symbol
module "dup_symbol"
global @main : i64 x 1 const internal = [0:i64]

fn @main() -> i64 internal {
bb0:
  ret 0:i64
}
