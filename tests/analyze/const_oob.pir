; Constant-index gep past the end of a 4-element global.
; expect: const-oob
module "const_oob"
global @tbl : i64 x 4 const internal = [1:i64, 2:i64, 3:i64, 4:i64]

fn @main() -> i64 internal {
bb0:
  %0 = gep i64, @tbl, 6:i64
  %1 = load i64, %0
  ret %1
}
