; A well-formed module: verifies and produces no findings at any severity.
; expect:
module "clean"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 2:i64, 3:i64
  %1 = mul i64 %0, %0
  ret %1
}
