; Storing through a pointer into a non-mutable global.
; expect: const-write
module "const_write"
global @k : i64 x 1 const internal = [7:i64]

fn @main() -> i64 internal {
bb0:
  store i64 9:i64, @k
  %0 = load i64, @k
  ret %0
}
