; Dividing by a value derived from undef: the division may trap.
; expect: undef-trap
module "undef_trap"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 undef:i64, 0:i64
  %1 = sdiv i64 10:i64, %0
  ret %1
}
