; expect: range-trap
; The masked index is in [0, 3]; adding 4 puts every possible offset
; outside the 4-element allocation. The index is not a constant chain,
; so this is absint's finding, not const-oob's.
module "oob_load"

global @tbl : i64 x 4 const internal = [1:i64, 2:i64, 3:i64, 4:i64]

fn @main(i64) -> i64 internal {
bb0:
  %0 = and i64 %arg0, 3:i64
  %1 = add i64 %0, 4:i64
  %2 = gep i64, @tbl, %1
  %3 = load i64, %2
  ret %3
}
