; expect:
; False-positive guard: the divisor is in [1, 8] (never zero), the gep
; offset is in [0, 7] (in bounds for 8 elements) and the branch is
; genuinely undecidable.
module "clean_ranges"

global @tbl : i64 x 8 const internal = [0:i64, 1:i64, 2:i64, 3:i64, 4:i64, 5:i64, 6:i64, 7:i64]

fn @main(i64) -> i64 internal {
bb0:
  %0 = and i64 %arg0, 7:i64
  %1 = add i64 %0, 1:i64
  %2 = srem i64 %arg0, %1
  %3 = gep i64, @tbl, %0
  %4 = load i64, %3
  %5 = add i64 %2, %4
  %6 = icmp slt i64 %5, 20:i64
  condbr %6, bb1, bb2
bb1:
  ret %5
bb2:
  ret 0:i64
}
