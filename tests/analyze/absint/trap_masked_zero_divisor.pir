; expect: range-trap
; `and x, 0` has every bit known zero: the srem divisor is exactly 0.
module "trap_masked_zero_divisor"

fn @main(i64) -> i64 internal {
bb0:
  %0 = and i64 %arg0, 0:i64
  %1 = srem i64 %arg0, %0
  ret %1
}
