; expect: null-deref
; Loading through a literal null pointer.
module "null_load"

fn @main() -> i64 internal {
bb0:
  %0 = load i64, null
  ret %0
}
