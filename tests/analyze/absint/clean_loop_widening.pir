; expect:
; False-positive guard: the loop counter widens to top but nothing in
; the body is provably wrong, so the file stays clean.
module "clean_loop_widening"

fn @main(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, %arg0
  condbr %c, bb2, bb3
bb2:
  %s2 = add i64 %s, %i
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
