; expect: range-trap
; Multiplying by zero collapses the interval to the singleton 0, so the
; sdiv divisor is provably zero for every input.
module "trap_mul_zero_divisor"

fn @main(i64) -> i64 internal {
bb0:
  %0 = mul i64 %arg0, 0:i64
  %1 = sdiv i64 %arg0, %0
  ret %1
}
