; expect: dead-branch
; A masked value is in [0, 15], so `> 100` is provably false and the
; then edge can never run.
module "dead_branch_false"

fn @main(i64) -> i64 internal {
bb0:
  %0 = and i64 %arg0, 15:i64
  %1 = icmp sgt i64 %0, 100:i64
  condbr %1, bb1, bb2
bb1:
  ret 1:i64
bb2:
  ret %0
}
