; expect: null-deref
; memcpy with a provably null destination (the source is a real buffer).
module "null_memcpy"

global @src : i64 x 4 internal = [1:i64, 2:i64, 3:i64, 4:i64]

fn @main() -> i64 internal {
bb0:
  %0 = gep i64, @src, 0:i64
  memcpy i64 null, %0, 2:i64
  ret 0:i64
}
