; expect: dead-branch
; A masked value is in [0, 7], so `< 8` is provably true and the else
; edge can never run.
module "dead_branch_true"

fn @main(i64) -> i64 internal {
bb0:
  %0 = and i64 %arg0, 7:i64
  %1 = icmp slt i64 %0, 8:i64
  condbr %1, bb1, bb2
bb1:
  ret %0
bb2:
  ret 0:i64
}
