; expect: range-trap
; The internal helper is only ever called with divisor 0; the round-two
; argument summaries specialize it to its call sites and prove the trap.
module "trap_arg_summary"

fn @div(i64, i64) -> i64 internal {
bb0:
  %0 = sdiv i64 %arg0, %arg1
  ret %0
}

fn @main(i64) -> i64 internal {
bb0:
  %0 = call @div(%arg0, 0:i64) -> i64
  ret %0
}
