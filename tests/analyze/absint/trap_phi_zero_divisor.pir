; expect: range-trap
; Both phi incomings are 0; the join keeps the singleton across the
; control-flow merge.
module "trap_phi_zero_divisor"

fn @main(i64) -> i64 internal {
bb0:
  %c = icmp slt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %p = phi i64 [bb1: 0:i64], [bb2: 0:i64]
  %r = srem i64 %arg0, %p
  ret %r
}
