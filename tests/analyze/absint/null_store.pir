; expect: null-deref
; The phi merges two null incomings: the store target is provably null
; whichever path ran.
module "null_store"

fn @main(i64) -> i64 internal {
bb0:
  %c = icmp slt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %p = phi ptr [bb1: null], [bb2: null]
  store i64 7:i64, %p
  ret 0:i64
}
