; expect: range-trap
; The select condition is unknown but both arms are 0, so the joined
; fact is still the singleton 0.
module "trap_select_zero_divisor"

fn @main(i64) -> i64 internal {
bb0:
  %c = icmp slt i64 %arg0, 10:i64
  %s = select i64 %c, 0:i64, 0:i64
  %r = sdiv i64 %arg0, %s
  ret %r
}
