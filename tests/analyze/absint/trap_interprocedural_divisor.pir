; expect: range-trap
; The callee's return summary (exactly 0) flows through the call graph
; into the caller's divisor.
module "trap_interprocedural_divisor"

fn @zero() -> i64 internal {
bb0:
  ret 0:i64
}

fn @main(i64) -> i64 internal {
bb0:
  %0 = call @zero() -> i64
  %1 = sdiv i64 %arg0, %0
  ret %1
}
