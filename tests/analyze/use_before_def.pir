; The value is defined on one branch only but used after the merge. The
; structural verifier's dominance check rejects this outright, so the
; report is the single verify finding (the dataflow use-before-def lint
; covers modules that reach the analyses through `run_all` directly).
; expect: verify
module "use_before_def"

fn @main(i1) -> i64 internal {
bb0:
  condbr %arg0, bb1, bb2
bb1:
  %0 = add i64 1:i64, 2:i64
  br bb2
bb2:
  ret %0
}
