; Loading from an alloca that is never stored to and never escapes.
; expect: uninit-load
module "uninit_load"

fn @main() -> i64 internal {
bb0:
  %0 = alloca i64 x 2
  %1 = load i64, %0
  ret %1
}
