//! Nightly serve load bench (opt-in: `POSETRL_SERVE_SWEEP=1`).
//!
//! Stands up a `posetrl-serve` server over a quick-trained policy and
//! drives the standard 1/8/64-client schedule (cold → warm → repeat) over
//! the workload corpus, archiving per-phase p50/p99 latency, throughput,
//! and hit rates as `results/serve_bench.json` for the nightly CI
//! artifact.
//!
//! Hard gates: the repeat-traffic phase must be served almost entirely
//! from the content-addressed response store (**warm hit rate ≥ 0.9**)
//! and the whole schedule must finish with **zero protocol errors** —
//! closed-loop clients never outrun admission control at the default
//! queue depths, so any `overloaded` (or worse) response is a server bug,
//! not load shedding.

use posetrl_serve::server::Server;
use posetrl_serve::{corpus, quick_model, run_load, ServeConfig, DEFAULT_PHASES};
use std::sync::Arc;

#[test]
fn serve_bench_archives_load_report() {
    if std::env::var("POSETRL_SERVE_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    let cfg = ServeConfig::from_env().expect("POSETRL_SERVE_* must parse");
    let model = Arc::new(quick_model());
    let corpus = corpus(12);
    let server = Server::new(model, cfg, None);
    let report = run_load(&server, &corpus, &DEFAULT_PHASES);
    drop(server);

    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/serve_bench.json",
        serde_json::to_string_pretty(&report.to_value()).unwrap(),
    )
    .unwrap();
    for p in &report.phases {
        eprintln!(
            "[serve-bench] {:>6}: {:>3} clients, {:>5} requests, p50 {}us, p99 {}us, \
             {:.1} rps, store-hit {:.2}",
            p.name, p.clients, p.requests, p.p50_us, p.p99_us, p.throughput_rps, p.store_hit_rate
        );
    }

    assert!(
        report.warm_hit_rate >= 0.9,
        "repeat-traffic phase must be ≥ 0.9 store hits, got {:.3}",
        report.warm_hit_rate
    );
    assert_eq!(
        report.protocol_errors, 0,
        "closed-loop load must produce zero protocol errors"
    );
    assert!(
        report.phases.iter().all(|p| p.requests > 0),
        "every phase must actually issue traffic"
    );
}
