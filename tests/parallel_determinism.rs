//! The engine's determinism contract, enforced end to end.
//!
//! `posetrl::engine` promises bit-identical training for any worker count,
//! with the evaluation cache on or off (see the module docs for why the
//! generational design makes that possible). These tests pin the contract:
//! same seed ⇒ identical episode rewards, identical replay contents (via
//! bit-identical final network weights — any divergence in replay order or
//! content would diverge the weights), and an identical final greedy
//! pipeline, for workers ∈ {1, 2, 8}.

use posetrl::actions::ActionSet;
use posetrl::engine::{train_parallel, EngineConfig};
use posetrl::eval::{evaluate_suite, evaluate_suite_parallel, ParallelEval};
use posetrl::EvalCache;
use posetrl_target::TargetArch;
use posetrl_workloads::{mibench, training_suite, Benchmark};
use std::sync::Arc;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn engine_cfg(workers: usize, cache: bool) -> EngineConfig {
    EngineConfig {
        workers,
        cache,
        validate_every: 2,
        seed: 0xC0FF_EE00,
        ..EngineConfig::quick()
    }
}

/// One full quick training run; returns everything identity-relevant.
fn run(workers: usize, cache: bool, programs: &[Benchmark]) -> (Vec<u64>, String, Vec<Vec<usize>>) {
    run_with(engine_cfg(workers, cache), workers, programs)
}

fn run_with(
    cfg: EngineConfig,
    workers: usize,
    programs: &[Benchmark],
) -> (Vec<u64>, String, Vec<Vec<usize>>) {
    let valset = &programs[..3];
    let (model, report) = train_parallel(&cfg, ActionSet::odg(), programs, valset);
    assert_eq!(report.workers, workers.max(1));
    let greedy: Vec<Vec<usize>> = programs
        .iter()
        .step_by(29)
        .map(|b| model.predict_sequence(b.module.clone()))
        .collect();
    (bits(&report.episode_rewards), model.agent.to_json(), greedy)
}

#[test]
fn training_is_bit_identical_across_worker_counts() {
    let programs = training_suite();
    let (rewards1, weights1, greedy1) = run(1, true, &programs);
    assert!(!rewards1.is_empty());
    for workers in [2, 8] {
        let (rewards, weights, greedy) = run(workers, true, &programs);
        assert_eq!(
            rewards1, rewards,
            "episode rewards must not depend on worker count ({workers})"
        );
        assert_eq!(
            weights1, weights,
            "replay contents / update order must not depend on worker count ({workers})"
        );
        assert_eq!(
            greedy1, greedy,
            "final greedy pipeline must not depend on worker count ({workers})"
        );
    }
}

#[test]
fn training_is_bit_identical_with_cache_disabled() {
    let programs = training_suite();
    let (rewards_on, weights_on, greedy_on) = run(2, true, &programs);
    let (rewards_off, weights_off, greedy_off) = run(2, false, &programs);
    assert_eq!(rewards_on, rewards_off, "the cache must be invisible");
    assert_eq!(weights_on, weights_off);
    assert_eq!(greedy_on, greedy_off);
}

#[test]
fn training_with_static_features_is_bit_identical() {
    // the absint + alias feature vector (40 dims since PR 8) rides along in
    // the state: it must not cost any determinism, for any worker count,
    // with the cache on or off. The ODG walks these runs train over include
    // the alias-backed `dse` pass, so points-to-driven rewrites are on the
    // training path too.
    let space = ActionSet::odg();
    assert!(
        (0..space.len()).any(|i| space.passes(i).contains(&"dse")),
        "the ODG action space must expose the dse pass"
    );
    let programs = training_suite();
    let run_sf = |workers: usize, cache: bool| {
        let mut cfg = engine_cfg(workers, cache);
        cfg.trainer.env.static_features = true;
        run_with(cfg, workers, &programs)
    };
    let (rewards1, weights1, greedy1) = run_sf(1, true);
    assert!(!rewards1.is_empty());
    for (workers, cache) in [(2, true), (8, true), (1, false), (2, false), (8, false)] {
        let (rewards, weights, greedy) = run_sf(workers, cache);
        assert_eq!(
            rewards1, rewards,
            "episode rewards diverged (workers={workers}, cache={cache})"
        );
        assert_eq!(
            weights1, weights,
            "weights diverged (workers={workers}, cache={cache})"
        );
        assert_eq!(
            greedy1, greedy,
            "greedy pipeline diverged (workers={workers}, cache={cache})"
        );
    }
    // feature-extended states really are wider than plain ones
    let plain = posetrl::env::PhaseEnv::new(posetrl::env::EnvConfig::default(), ActionSet::odg());
    let extended = posetrl::env::PhaseEnv::new(
        posetrl::env::EnvConfig {
            static_features: true,
            ..posetrl::env::EnvConfig::default()
        },
        ActionSet::odg(),
    );
    assert_eq!(
        extended.state_dim(),
        plain.state_dim() + posetrl_analyze::absint::features::FEATURE_DIM
    );
}

#[test]
fn training_is_bit_identical_with_incremental_on_and_off_across_workers() {
    // PR-7 contract, extended over the PR-8 memo classes: the per-function
    // incremental analysis manager must be invisible — same rewards, same
    // final weights, same greedy pipelines — for workers ∈ {1, 2, 8} with
    // incremental on or off. Static features are enabled so the absint AND
    // alias/memdep memos (not just the embed memo) are on the state path,
    // and the episodes apply `dse` through the ODG walks.
    let programs = training_suite();
    let run_inc = |workers: usize, incremental: bool| {
        let mut cfg = engine_cfg(workers, true);
        cfg.incremental = incremental;
        cfg.trainer.env.static_features = true;
        run_with(cfg, workers, &programs)
    };
    let (rewards1, weights1, greedy1) = run_inc(1, false);
    assert!(!rewards1.is_empty());
    for workers in [1usize, 2, 8] {
        for incremental in [false, true] {
            if workers == 1 && !incremental {
                continue; // the baseline itself
            }
            let (rewards, weights, greedy) = run_inc(workers, incremental);
            assert_eq!(
                rewards1, rewards,
                "episode rewards diverged (workers={workers}, incremental={incremental})"
            );
            assert_eq!(
                weights1, weights,
                "weights diverged (workers={workers}, incremental={incremental})"
            );
            assert_eq!(
                greedy1, greedy,
                "greedy pipeline diverged (workers={workers}, incremental={incremental})"
            );
        }
    }
}

#[test]
fn evaluation_numbers_are_identical_cached_parallel_vs_serial() {
    let programs = training_suite();
    let (model, _) = train_parallel(
        &engine_cfg(1, true),
        ActionSet::odg(),
        &programs,
        &programs[..1],
    );
    let benches: Vec<Benchmark> = mibench().into_iter().take(4).collect();

    let (serial, serial_stats) = evaluate_suite(&model, &benches, TargetArch::X86_64, true);
    // a sharded cache must be just as invisible as a single-shard one
    let cache = Arc::new(EvalCache::sharded(1 << 12, 4));
    for workers in [2, 8] {
        let (par, par_stats) = evaluate_suite_parallel(
            &model,
            &benches,
            TargetArch::X86_64,
            true,
            &ParallelEval::with_cache(workers, Arc::clone(&cache)),
        );
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.name, p.name, "result order is benchmark order");
            assert_eq!(s.oz_size, p.oz_size);
            assert_eq!(s.model_size, p.model_size);
            assert_eq!(s.sequence, p.sequence);
            assert_eq!(
                s.size_reduction_pct.to_bits(),
                p.size_reduction_pct.to_bits()
            );
            assert_eq!(s.oz_cycles.to_bits(), p.oz_cycles.to_bits());
            assert_eq!(s.model_cycles.to_bits(), p.model_cycles.to_bits());
            assert_eq!(
                s.runtime_improvement_pct.to_bits(),
                p.runtime_improvement_pct.to_bits()
            );
        }
        assert_eq!(
            serial_stats.avg_size_reduction_pct.to_bits(),
            par_stats.avg_size_reduction_pct.to_bits()
        );
    }
    // The second sweep re-evaluated the same modules: the shared cache must
    // have served hits rather than recomputing.
    let stats = cache.stats();
    assert!(stats.total_hits() > 0, "{}", stats.render());
    // Shard balance: episode traffic routes by the structural hash of each
    // intermediate module, so lookups must spread over the shards — every
    // shard sees traffic and none carries more than 2x its fair share.
    let lookups: Vec<u64> = cache
        .shard_stats()
        .iter()
        .map(|s| s.total_lookups())
        .collect();
    assert_eq!(lookups.len(), 4);
    let total: u64 = lookups.iter().sum();
    let fair = total as f64 / lookups.len() as f64;
    for (shard, &n) in lookups.iter().enumerate() {
        assert!(n > 0, "shard {shard} saw no traffic: {lookups:?}");
        assert!(
            (n as f64) <= 2.0 * fair,
            "shard {shard} is over 2x the fair share: {lookups:?}"
        );
    }
}
