//! Nightly dependence sweep (opt-in: `POSETRL_DEPEND_SWEEP=1`).
//!
//! Runs the loop data-dependence lints over the whole training corpus,
//! takes a census of the legality verdicts, and applies both
//! dependence-consuming transforms (`loop-vec`, `loop-fuse`; raw and
//! behind two canonicalizing prefixes), discharging every
//! module-changing application through the symbolic translation
//! validator. Archives the counts and the proved/refuted/inconclusive
//! rewrite rates as `results/depend_sweep.json` for the nightly CI
//! artifact.
//!
//! The hard gate: **zero refuted applications**. An inconclusive
//! verdict is acceptable (the validator's budgets are finite) and its
//! rate is reported; a refutation means a jam or fusion trusted a
//! dependence verdict the analysis did not actually prove.

use posetrl_analyze::{validate_transform, ValidateConfig};
use posetrl_ir::printer::print_module;
use posetrl_opt::manager::PassManager;
use std::collections::BTreeMap;

#[test]
fn depend_sweep_archives_lint_counts_and_rewrite_rates() {
    if std::env::var("POSETRL_DEPEND_SWEEP").is_err() {
        return; // nightly CI sets the variable; the default run skips
    }
    // corpus stride for quick local measurements; nightly runs at 1
    let step: usize = posetrl_analyze::env_budget_or_usage("POSETRL_DEPEND_SWEEP_STEP", 1);
    let pm = PassManager::new();
    let cfg = ValidateConfig::from_env();

    const PASSES: [&str; 2] = ["loop-vec", "loop-fuse"];
    const PREFIXES: [&[&str]; 3] = [
        &[],
        &["mem2reg", "instcombine"],
        &["loop-simplify", "simplifycfg"],
    ];

    let mut modules = 0usize;
    let mut lint_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut verdicts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut applications = 0usize;
    let mut changed = 0usize;
    let mut proved = 0usize;
    let mut refuted = 0usize;
    let mut inconclusive = 0usize;
    let mut per_pass: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // (changed, proved)
    let mut refutations: Vec<String> = Vec::new();

    for b in posetrl_workloads::training_suite().iter().step_by(step) {
        modules += 1;
        let mut diags = Vec::new();
        posetrl_analyze::depend::check(&b.module, &mut diags);
        for d in &diags {
            *lint_counts.entry(d.code.to_string()).or_default() += 1;
        }
        let md = posetrl_analyze::depend::analyze_module(&b.module);
        for fr in md.funcs.values() {
            for l in &fr.loops {
                *verdicts.entry("loops").or_default() += 1;
                if l.parallel_safe {
                    *verdicts.entry("parallel_safe").or_default() += 1;
                }
                if l.vector_safe {
                    *verdicts.entry("vector_safe").or_default() += 1;
                }
                if l.opaque_calls || l.truncated {
                    *verdicts.entry("opaque_or_truncated").or_default() += 1;
                }
                if l.deps.iter().any(|d| d.carried) {
                    *verdicts.entry("carries_dependence").or_default() += 1;
                }
            }
        }

        for pass in PASSES {
            for prefix in PREFIXES {
                let mut m = b.module.clone();
                for p in prefix {
                    pm.run_pass(&mut m, p).unwrap();
                }
                let pre = m.clone();
                pm.run_pass(&mut m, pass).unwrap();
                applications += 1;
                if print_module(&pre) == print_module(&m) {
                    continue; // no-op application: nothing to discharge
                }
                changed += 1;
                per_pass.entry(pass.to_string()).or_default().0 += 1;
                let mv = validate_transform(&pre, &m, &cfg);
                if mv.refuted() > 0 {
                    refuted += 1;
                    refutations.push(format!("{pass} after {prefix:?} on '{}'", b.name));
                } else if mv.all_proved() {
                    proved += 1;
                    per_pass.entry(pass.to_string()).or_default().1 += 1;
                } else {
                    inconclusive += 1;
                }
            }
        }
    }

    let proved_rate = proved as f64 / changed.max(1) as f64;
    let inconclusive_rate = inconclusive as f64 / changed.max(1) as f64;
    let passes: BTreeMap<String, serde_json::Value> = per_pass
        .iter()
        .map(|(p, (c, pr))| (p.clone(), serde_json::json!({ "changed": c, "proved": pr })))
        .collect();
    let consumers = serde_json::json!({
        "applications": applications,
        "changed": changed,
        "proved": proved,
        "refuted": refuted,
        "inconclusive": inconclusive,
        "proved_rate": proved_rate,
        "inconclusive_rate": inconclusive_rate,
        "per_pass": passes,
    });
    let verdicts: BTreeMap<String, usize> = verdicts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let payload = serde_json::json!({
        "modules": modules,
        "lints": lint_counts,
        "verdicts": verdicts,
        "consumers": consumers,
        "refutations": refutations,
    });
    std::fs::create_dir_all("results").unwrap();
    std::fs::write(
        "results/depend_sweep.json",
        serde_json::to_string_pretty(&payload).unwrap(),
    )
    .unwrap();
    eprintln!(
        "[depend-sweep] {modules} modules: {applications} consumer applications \
         ({changed} changed): {proved} proved, {refuted} refuted, \
         {inconclusive} inconclusive (proved rate {proved_rate:.3})"
    );

    assert_eq!(
        refuted, 0,
        "dependence-backed rewrites were refuted: {refutations:?}"
    );
    assert!(
        changed > 0,
        "no dependence consumer ever fired on the corpus — the sweep measured nothing"
    );
}
