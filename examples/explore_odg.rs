//! Explore the Oz Dependence Graph: build it from the Oz pass sequence,
//! inspect degrees/critical nodes, and derive walk sub-sequences —
//! Section IV-B of the paper, interactively.
//!
//! ```sh
//! cargo run --example explore_odg
//! ```

use posetrl_odg::graph::OzDependenceGraph;
use posetrl_odg::walks::{derive_subsequences, ODG_SUBSEQUENCES};

fn main() {
    let g = OzDependenceGraph::from_oz();
    println!(
        "ODG over LLVM 10's -Oz: {} nodes, {} edges",
        g.nodes().len(),
        g.edges().len()
    );

    println!("\nnode degrees (top 10):");
    let mut degrees: Vec<(&str, usize)> = g.degrees().into_iter().collect();
    degrees.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    for (n, d) in degrees.iter().take(10) {
        println!("  {n:<26} {d}");
    }

    println!("\ncritical nodes at k >= 8 (the paper's threshold):");
    for (n, d) in g.critical_nodes(8) {
        println!("  {n} (degree {d})");
    }

    let walks = derive_subsequences(&g, 8, 16);
    println!(
        "\nderived {} walks between critical nodes; first five:",
        walks.len()
    );
    for w in walks.iter().take(5) {
        println!("  {}", w.join(" -> "));
    }

    let derived: std::collections::BTreeSet<Vec<&str>> = walks.into_iter().collect();
    let verbatim = ODG_SUBSEQUENCES
        .iter()
        .filter(|s| derived.contains(**s))
        .count();
    println!(
        "\n{} of the paper's 34 Table III sub-sequences appear verbatim among the derived walks",
        verbatim
    );

    println!("\nTable III as used by the RL agent (first five actions):");
    for (i, seq) in ODG_SUBSEQUENCES.iter().take(5).enumerate() {
        println!("  action {i}: {}", seq.join(" "));
    }
}
