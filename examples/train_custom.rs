//! Train POSET-RL on your own IR and your own action space.
//!
//! Demonstrates the full public surface: parsing textual IR, building a
//! custom action set, configuring the reward trade-off (α/β), training,
//! saving/loading the model, and applying it.
//!
//! ```sh
//! cargo run --release --example train_custom
//! ```

use posetrl::actions::ActionSet;
use posetrl::env::EnvConfig;
use posetrl::trainer::{train, TrainedModel, TrainerConfig};
use posetrl_ir::parser::parse_module;
use posetrl_target::{size::object_size, TargetArch};
use posetrl_workloads::{Benchmark, ProgramKind, ProgramSpec, SizeClass, Suite};

/// A hand-written module, exactly as you might feed from your own frontend.
const MY_PROGRAM: &str = r#"
module "hand_written"
global @weights : i64 x 8 mutable internal = [3:i64, 1:i64, 4:i64, 1:i64, 5:i64, 9:i64, 2:i64, 6:i64]
declare @print_i64(i64) -> void

fn @dot(i64) -> i64 internal {
bb0:
  %acc = alloca i64 x 1
  store i64 0:i64, %acc
  %i = alloca i64 x 1
  store i64 0:i64, %i
  br bb1
bb1:
  %iv = load i64, %i
  %c = icmp slt i64 %iv, 8:i64
  condbr %c, bb2, bb3
bb2:
  %p = gep i64, @weights, %iv
  %w = load i64, %p
  %scaled = mul i64 %w, %arg0
  %a = load i64, %acc
  %a2 = add i64 %a, %scaled
  store i64 %a2, %acc
  %iv2 = add i64 %iv, 1:i64
  store i64 %iv2, %i
  br bb1
bb3:
  %r = load i64, %acc
  ret %r
}

fn @main() -> i64 internal {
bb0:
  %x = call @dot(3:i64) -> i64
  call @print_i64(%x) -> void
  %y = call @dot(7:i64) -> i64
  call @print_i64(%y) -> void
  %s = add i64 %x, %y
  ret %s
}
"#;

fn main() {
    // 1) your own training corpus: a few generated programs + your module
    let mut corpus: Vec<Benchmark> = posetrl_workloads::training_suite()
        .into_iter()
        .take(8)
        .collect();
    let my_module = parse_module(MY_PROGRAM).expect("IR parses");
    corpus.push(Benchmark {
        name: "hand_written".into(),
        suite: Suite::Training,
        spec: ProgramSpec {
            name: "hand_written".into(),
            kind: ProgramKind::NumericKernel,
            size: SizeClass::Small,
            seed: 0,
        },
        module: my_module.clone(),
    });

    // 2) a custom action space: a few loop recipes + cleanup combos
    let actions = ActionSet::custom(
        "my-space",
        vec![
            vec!["mem2reg".into(), "instcombine".into(), "simplifycfg".into()],
            vec![
                "loop-simplify".into(),
                "lcssa".into(),
                "loop-rotate".into(),
                "licm".into(),
            ],
            vec![
                "loop-simplify".into(),
                "lcssa".into(),
                "indvars".into(),
                "loop-unroll".into(),
            ],
            vec!["gvn".into(), "sccp".into(), "adce".into()],
            vec!["inline".into(), "globaldce".into(), "deadargelim".into()],
            vec!["dse".into(), "memcpyopt".into(), "instsimplify".into()],
        ],
    );

    // 3) bias the reward toward size (alpha) twice as hard as the paper
    let config = TrainerConfig {
        total_steps: 1_500,
        env: EnvConfig {
            alpha: 20.0,
            beta: 5.0,
            episode_len: 8,
            ..EnvConfig::default()
        },
        ..TrainerConfig::default()
    };

    println!(
        "training on {} programs with {} custom actions...",
        corpus.len(),
        actions.len()
    );
    let model = train(&config, actions, &corpus);
    println!("final mean episode reward: {:+.3}", model.final_mean_reward);

    // 4) persist and restore (what you would ship)
    let json = model.to_json();
    let restored = TrainedModel::from_json(&json).expect("model round-trips");
    println!("serialized model: {} KiB", json.len() / 1024);

    // 5) apply to the hand-written module
    let before = object_size(&my_module, TargetArch::X86_64).total;
    let (optimized, seq) = restored.optimize(my_module);
    let after = object_size(&optimized, TargetArch::X86_64).total;
    println!("\nhand_written: {before} B -> {after} B  (actions {seq:?})");
    println!(
        "optimized IR:\n{}",
        posetrl_ir::printer::print_module(&optimized)
    );
}
