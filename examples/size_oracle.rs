//! Phase-ordering landscape probe: compare `-Oz` against (a) random action
//! sequences and (b) a greedy 1-step size oracle over the ODG action space.
//! Shows why the search problem needs lookahead — the paper's motivation
//! for reinforcement learning.
//!
//! ```sh
//! cargo run --release --example size_oracle
//! ```

use posetrl::actions::ActionSet;
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_target::{size::object_size, TargetArch};
use posetrl_workloads::mibench;

fn main() {
    let pm = PassManager::new();
    let actions = ActionSet::odg();
    let arch = TargetArch::X86_64;

    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10}",
        "benchmark", "Oz", "random", "greedy", "greedy Δ%"
    );
    let mut greedy_total = 0.0;
    let mut n = 0.0;
    for b in mibench() {
        // -Oz baseline
        let mut oz = b.module.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        let oz_size = object_size(&oz, arch).total;

        // a fixed pseudo-random 15-action episode
        let mut random = b.module.clone();
        let mut h = 0x12345678u64 ^ b.name.len() as u64;
        for _ in 0..15 {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            let a = (h % actions.len() as u64) as usize;
            pm.run_pipeline(&mut random, &actions.passes(a)).unwrap();
        }
        let random_size = object_size(&random, arch).total;

        // greedy: at each step pick the action that shrinks the object most
        let mut cur = b.module.clone();
        for _ in 0..15 {
            let cur_size = object_size(&cur, arch).total;
            let mut best: Option<(u64, posetrl_ir::Module)> = None;
            for i in 0..actions.len() {
                let mut trial = cur.clone();
                pm.run_pipeline(&mut trial, &actions.passes(i)).unwrap();
                let s = object_size(&trial, arch).total;
                if best.as_ref().map(|(bs, _)| s < *bs).unwrap_or(true) {
                    best = Some((s, trial));
                }
            }
            let (best_size, best_module) = best.unwrap();
            if best_size >= cur_size {
                break; // greedy local optimum
            }
            cur = best_module;
        }
        let greedy_size = object_size(&cur, arch).total;
        let delta = 100.0 * (oz_size as f64 - greedy_size as f64) / oz_size as f64;
        greedy_total += delta;
        n += 1.0;
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>+9.2}%",
            b.name, oz_size, random_size, greedy_size, delta
        );
    }
    println!("\ngreedy avg vs Oz: {:+.2}%", greedy_total / n);
    println!("greedy 1-step lookahead gets trapped (inline must grow code before");
    println!("globaldce can shrink it) — the multi-step credit assignment the DQN learns.");
}
