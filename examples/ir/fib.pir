; Naive recursive Fibonacci — exercises call-boundary type checking and
; branchy control flow. Lint-clean by design.
module "fib"

fn @fib(i64) -> i64 internal {
bb0:
  %c = icmp slt i64 %arg0, 2:i64
  condbr %c, bb1, bb2
bb1:
  ret %arg0
bb2:
  %n1 = sub i64 %arg0, 1:i64
  %n2 = sub i64 %arg0, 2:i64
  %f1 = call @fib(%n1) -> i64
  %f2 = call @fib(%n2) -> i64
  %s = add i64 %f1, %f2
  ret %s
}

fn @main() -> i64 internal {
bb0:
  %r = call @fib(10:i64) -> i64
  ret %r
}
