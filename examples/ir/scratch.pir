; Stack scratch space: stores before every load so the uninitialized-load
; lint stays silent; the stored running maximum is re-read after the loop.
module "scratch"

fn @main() -> i64 internal {
bb0:
  %best = alloca i64 x 1
  store i64 0:i64, %best
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb3: %i2]
  %c = icmp slt i64 %i, 8:i64
  condbr %c, bb2, bb4
bb2:
  %sq = mul i64 %i, %i
  %m = srem i64 %sq, 5:i64
  %cur = load i64, %best
  %gt = icmp sgt i64 %m, %cur
  condbr %gt, bb5, bb3
bb5:
  store i64 %m, %best
  br bb3
bb3:
  %i2 = add i64 %i, 1:i64
  br bb1
bb4:
  %r = load i64, %best
  ret %r
}
