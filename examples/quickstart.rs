//! Quickstart: build a program, train a small POSET-RL agent, and compare
//! its predicted phase ordering against `-Oz`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use posetrl::actions::ActionSet;
use posetrl::eval::evaluate_suite;
use posetrl::trainer::{train, TrainerConfig};
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_target::{size::object_size, TargetArch};
use posetrl_workloads::{mibench, training_suite};

fn main() {
    // 1) a corpus of unoptimized programs (the paper's training set)
    let programs = training_suite();
    println!("training corpus: {} programs", programs.len());
    let sample = &programs[0];
    println!(
        "sample program '{}': {} instructions before optimization",
        sample.name,
        sample.module.num_insts()
    );

    // 2) the standard compiler baseline: the -Oz pipeline
    let pm = PassManager::new();
    let mut oz = sample.module.clone();
    pm.run_pipeline(&mut oz, &pipelines::oz())
        .expect("Oz pipeline");
    println!(
        "-Oz: {} instructions, {} bytes (x86-64 object)",
        oz.num_insts(),
        object_size(&oz, TargetArch::X86_64).total
    );

    // 3) train a small Double-DQN agent over the ODG action space
    println!("\ntraining a small agent (a few thousand env steps)...");
    let config = TrainerConfig::default();
    let model = train(&config, ActionSet::odg(), &programs);
    println!("final mean episode reward: {:+.3}", model.final_mean_reward);

    // 4) let the agent pick the phase ordering for an unseen benchmark
    let benches: Vec<_> = mibench().into_iter().take(4).collect();
    let (results, stats) = evaluate_suite(&model, &benches, TargetArch::X86_64, false);
    println!("\nagent vs -Oz on unseen MiBench programs (object size):");
    for r in &results {
        println!(
            "  {:<14} Oz {:>6} B | agent {:>6} B | {:+.2}%  (actions: {:?})",
            r.name, r.oz_size, r.model_size, r.size_reduction_pct, r.sequence
        );
    }
    println!(
        "suite: min {:+.2}% avg {:+.2}% max {:+.2}%",
        stats.min_size_reduction_pct, stats.avg_size_reduction_pct, stats.max_size_reduction_pct
    );
}
