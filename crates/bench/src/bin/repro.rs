//! The reproduction harness.
//!
//! ```text
//! repro [--scale quick|standard|paper] [--sanitize off|verify|validate|full] <experiment>...
//!
//! experiments:
//!   table1      the Oz pass sequence (Table I)
//!   table2      the 15 manual sub-sequences (Table II)
//!   table3      the 34 ODG sub-sequences (Table III)
//!   odgstats    ODG node/edge/degree statistics (Section IV-B)
//!   scevstats   SCEV + static-profile corpus statistics (DESIGN.md §15)
//!   dependstats loop data-dependence corpus statistics (DESIGN.md §16)
//!   fig1        O3 vs Oz runtime/size on SPEC (Fig. 1)
//!   table4      % size reduction vs Oz (Table IV)
//!   table5      % execution-time improvement vs Oz (Table V)
//!   fig5        per-benchmark runtime & size series (Fig. 5)
//!   table6      predicted sub-sequences (Table VI)
//!   enginestats parallel episode engine: sweep timings + cache hit rate
//!   servestats  posetrl-serve load bench: 1/8/64 clients, p50/p99, hit rates
//!   ablate-reward | ablate-ddqn | ablate-actions | ablate-embed
//!   all         everything above
//! ```
//!
//! Text output goes to stdout; machine-readable copies land in `results/`.
//!
//! `--sanitize` selects the pass-pipeline sanitizer level for the
//! `enginestats` experiment (`verify` re-checks the IR after every applied
//! pass; `validate` additionally attempts a static refinement proof of
//! each pass application, diff-executing only the inconclusive remainder;
//! `full` diff-executes everything and delta-reduces miscompiles).

use posetrl::experiments::{self, ExperimentContext, Scale};
use posetrl_analyze::SanitizeLevel;
use posetrl_bench::write_artifact;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Standard;
    let mut sanitize = SanitizeLevel::Off;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "standard" => Scale::Standard,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|standard|paper)");
                        std::process::exit(2);
                    }
                };
            }
            "--sanitize" => {
                let v = it.next().unwrap_or_default();
                sanitize = SanitizeLevel::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale quick|standard|paper] [--sanitize off|verify|validate|full] <experiment>..."
                );
                println!(
                    "experiments: table1 table2 table3 odgstats absintstats aliasstats scevstats dependstats fig1 table4 table5 fig5 table6"
                );
                println!(
                    "             enginestats servestats ablate-reward ablate-ddqn ablate-actions"
                );
                println!("             ablate-embed all");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    const KNOWN: [&str; 20] = [
        "all",
        "table1",
        "table2",
        "table3",
        "odgstats",
        "absintstats",
        "aliasstats",
        "scevstats",
        "dependstats",
        "fig1",
        "table4",
        "table5",
        "fig5",
        "table6",
        "enginestats",
        "servestats",
        "ablate-reward",
        "ablate-ddqn",
        "ablate-actions",
        "ablate-embed",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}' (see --help)");
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    // static experiments (no training)
    if want("table1") {
        run_table1();
    }
    if want("table2") {
        run_table2();
    }
    if want("table3") {
        run_table3();
    }
    if want("odgstats") {
        let s = experiments::odg_stats();
        emit("odgstats", &s.render(), &serde_json::to_value(&s).unwrap());
    }
    if want("absintstats") {
        let s = experiments::absint_stats();
        emit(
            "absintstats",
            &s.render(),
            &serde_json::to_value(&s).unwrap(),
        );
    }
    if want("aliasstats") {
        let s = experiments::alias_stats();
        emit(
            "aliasstats",
            &s.render(),
            &serde_json::to_value(&s).unwrap(),
        );
    }
    if want("scevstats") {
        let s = experiments::scev_stats();
        emit("scevstats", &s.render(), &serde_json::to_value(&s).unwrap());
    }
    if want("dependstats") {
        let s = experiments::depend_stats();
        emit(
            "dependstats",
            &s.render(),
            &serde_json::to_value(&s).unwrap(),
        );
    }
    if want("fig1") {
        let f = experiments::fig1(scale);
        emit("fig1", &f.render(), &serde_json::to_value(&f).unwrap());
    }
    if want("enginestats") {
        let s = experiments::engine_stats(scale, sanitize);
        emit(
            "enginestats",
            &s.render(),
            &serde_json::to_value(&s).unwrap(),
        );
    }
    if want("servestats") {
        match posetrl_serve::servestats() {
            Ok((text, json)) => emit("servestats", &text, &json),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    // trained experiments share one context
    let needs_ctx = [
        "table4",
        "table5",
        "fig5",
        "table6",
        "ablate-reward",
        "ablate-ddqn",
        "ablate-actions",
        "ablate-embed",
    ]
    .iter()
    .any(|e| want(e));
    if !needs_ctx {
        return;
    }
    eprintln!("[repro] training models at {scale:?} scale ...");
    let ctx = ExperimentContext::new(scale);
    eprintln!("[repro] training done; running experiments");

    if want("table4") {
        let t = experiments::table4(&ctx);
        emit("table4", &t.render(), &serde_json::to_value(&t).unwrap());
    }
    if want("table5") {
        let t = experiments::table5(&ctx);
        emit("table5", &t.render(), &serde_json::to_value(&t).unwrap());
    }
    if want("fig5") {
        let f = experiments::fig5(&ctx);
        emit("fig5", &f.render(), &serde_json::to_value(&f).unwrap());
    }
    if want("table6") {
        let t = experiments::table6(&ctx);
        emit("table6", &t.render(), &serde_json::to_value(&t).unwrap());
    }
    if want("ablate-reward") {
        let a = experiments::ablate_reward(&ctx);
        emit(
            "ablate-reward",
            &a.render(),
            &serde_json::to_value(&a).unwrap(),
        );
    }
    if want("ablate-ddqn") {
        let a = experiments::ablate_ddqn(&ctx);
        emit(
            "ablate-ddqn",
            &a.render(),
            &serde_json::to_value(&a).unwrap(),
        );
    }
    if want("ablate-actions") {
        let a = experiments::ablate_actions(&ctx);
        emit(
            "ablate-actions",
            &a.render(),
            &serde_json::to_value(&a).unwrap(),
        );
    }
    if want("ablate-embed") {
        let a = experiments::ablate_embed(&ctx);
        emit(
            "ablate-embed",
            &a.render(),
            &serde_json::to_value(&a).unwrap(),
        );
    }
}

fn emit(name: &str, text: &str, json: &serde_json::Value) {
    println!("==== {name} ====");
    println!("{text}");
    write_artifact(name, text, json);
}

fn run_table1() {
    let seq = posetrl_opt::pipelines::oz();
    let unique: std::collections::BTreeSet<&str> = seq.iter().copied().collect();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table I: the Oz sequence ({} passes, {} unique)",
        seq.len(),
        unique.len()
    );
    let flags: Vec<String> = seq.iter().map(|p| format!("-{p}")).collect();
    let _ = writeln!(text, "{}", flags.join(" "));
    emit(
        "table1",
        &text,
        &serde_json::json!({ "passes": seq, "unique": unique.len() }),
    );
}

fn run_table2() {
    let mut text = String::from("Table II: manual sub-sequences\n");
    for (i, seq) in posetrl_odg::manual::MANUAL_SUBSEQUENCES.iter().enumerate() {
        let flags: Vec<String> = seq.iter().map(|p| format!("-{p}")).collect();
        let _ = writeln!(text, "{:>2}  {}", i + 1, flags.join(" "));
    }
    emit(
        "table2",
        &text,
        &serde_json::json!({ "subsequences": posetrl_odg::manual::MANUAL_SUBSEQUENCES.to_vec() }),
    );
}

fn run_table3() {
    let mut text = String::from("Table III: ODG sub-sequences\n");
    for (i, seq) in posetrl_odg::walks::ODG_SUBSEQUENCES.iter().enumerate() {
        let flags: Vec<String> = seq.iter().map(|p| format!("-{p}")).collect();
        let _ = writeln!(text, "{:>2}  {}", i + 1, flags.join(" "));
    }
    emit(
        "table3",
        &text,
        &serde_json::json!({ "subsequences": posetrl_odg::walks::ODG_SUBSEQUENCES.to_vec() }),
    );
}
