//! Trains one ODG/x86 model at a given step budget and reports suite stats —
//! a calibration probe for the trainer schedule.
use posetrl::actions::ActionSet;
use posetrl::env::EnvConfig;
use posetrl::eval::evaluate_suite;
use posetrl::trainer::{train, TrainerConfig};
use posetrl_rl::dqn::DqnConfig;
use posetrl_target::TargetArch;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9000);
    let cfg = TrainerConfig {
        total_steps: steps,
        env: EnvConfig::default(),
        agent: DqnConfig {
            eps_decay_steps: steps * 2 / 3,
            lr: 5e-4,
            ..DqnConfig::default()
        },
        max_programs: None,
        log_every: 1005,
    };
    let programs = posetrl_workloads::training_suite();
    let model = train(&cfg, ActionSet::odg(), &programs);
    eprintln!("final mean reward: {:.3}", model.final_mean_reward);
    for (name, benches) in [
        ("SPEC-2017", posetrl_workloads::spec2017()),
        ("MiBench", posetrl_workloads::mibench()),
    ] {
        let (_, stats) = evaluate_suite(&model, &benches, TargetArch::X86_64, false);
        println!(
            "{name}: min {:+.2} avg {:+.2} max {:+.2}",
            stats.min_size_reduction_pct,
            stats.avg_size_reduction_pct,
            stats.max_size_reduction_pct
        );
    }
}
