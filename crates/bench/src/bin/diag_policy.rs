//! Diagnoses a freshly trained ODG policy: predicted sequences, per-step
//! rewards, and absolute size trajectories vs Oz.
use posetrl::actions::ActionSet;
use posetrl::env::{EnvConfig, PhaseEnv};
use posetrl::trainer::{train, TrainerConfig};
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_rl::dqn::DqnConfig;
use posetrl_target::{size::object_size, TargetArch};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);
    let cfg = TrainerConfig {
        total_steps: steps,
        env: EnvConfig::default(),
        agent: DqnConfig {
            eps_decay_steps: steps * 2 / 3,
            lr: 5e-4,
            ..DqnConfig::default()
        },
        max_programs: None,
        log_every: 0,
    };
    let programs = posetrl_workloads::training_suite();
    let model = train(&cfg, ActionSet::odg(), &programs);
    eprintln!("reward {:.2}", model.final_mean_reward);
    let pm = PassManager::new();
    for b in posetrl_workloads::mibench().into_iter().take(4) {
        let base = object_size(&b.module, TargetArch::X86_64).total;
        let mut oz = b.module.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        let ozs = object_size(&oz, TargetArch::X86_64).total;
        let mut env = PhaseEnv::new(EnvConfig::default(), ActionSet::odg());
        let mut state = env.reset(b.module.clone());
        print!("{:<14} base={base} oz={ozs} | ", b.name);
        loop {
            let a = model.agent.act_greedy(&state);
            let r = env.step(a);
            print!("{a}:{} ", r.size);
            state = r.state;
            if r.done {
                break;
            }
        }
        println!();
    }
}
