//! Greedy size-oracle probe: per step, try every ODG action and keep the one
//! that shrinks the module most. Upper-bounds what a trained policy can do.
use posetrl::actions::ActionSet;
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_target::{size::object_size, TargetArch};

fn main() {
    let pm = PassManager::new();
    let actions = ActionSet::odg();
    let arch = TargetArch::X86_64;
    let mut improvements = Vec::new();
    for b in posetrl_workloads::mibench()
        .into_iter()
        .chain(posetrl_workloads::spec2017())
    {
        let mut oz = b.module.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        let oz_size = object_size(&oz, arch).total;

        let mut cur = b.module.clone();
        for _ in 0..15 {
            let cur_size = object_size(&cur, arch).total;
            let mut best: Option<(u64, posetrl_ir::Module)> = None;
            for i in 0..actions.len() {
                let mut trial = cur.clone();
                let passes: Vec<&str> = actions.passes(i);
                pm.run_pipeline(&mut trial, &passes).unwrap();
                let s = object_size(&trial, arch).total;
                if best.as_ref().map(|(bs, _)| s < *bs).unwrap_or(true) {
                    best = Some((s, trial));
                }
            }
            let (bs, bm) = best.unwrap();
            if bs >= cur_size {
                break;
            }
            cur = bm;
        }
        let model_size = object_size(&cur, arch).total;
        let red = 100.0 * (oz_size as f64 - model_size as f64) / oz_size as f64;
        improvements.push(red);
        println!(
            "{:<16} oz={} oracle={} reduction={:+.2}%",
            b.name, oz_size, model_size, red
        );
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("average oracle size reduction vs Oz: {avg:+.2}%");
}
