//! Probes fixed ODG action sequences against Oz: is Oz parity reachable in
//! the ODG action space at all?
use posetrl::actions::ActionSet;
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use posetrl_target::{size::object_size, TargetArch};

fn main() {
    let pm = PassManager::new();
    let actions = ActionSet::odg();
    let arch = TargetArch::X86_64;
    // candidate fixed sequences (0-based Table III indices)
    let candidates: Vec<(&str, Vec<usize>)> = vec![
        // inliner-first, then scalar opts, loops, cleanup
        (
            "inline-scalar-loop-clean",
            vec![23, 32, 5, 7, 28, 9, 13, 3, 0, 18, 19, 1, 22, 6, 0],
        ),
        // mimic Oz phases: early (30), inline (26), scalar (33), loops (7,9,12), late (0,1), final (18)
        (
            "oz-like",
            vec![31, 25, 33, 6, 12, 7, 9, 3, 13, 0, 1, 21, 18, 5, 22],
        ),
        // mostly cleanup + ipo
        (
            "cleanup-heavy",
            vec![23, 2, 5, 3, 9, 0, 1, 22, 18, 23, 2, 5, 3, 0, 1],
        ),
    ];
    for b in posetrl_workloads::mibench()
        .into_iter()
        .chain(posetrl_workloads::spec2017())
    {
        let mut oz = b.module.clone();
        pm.run_pipeline(&mut oz, &pipelines::oz()).unwrap();
        let oz_size = object_size(&oz, arch).total;
        print!("{:<16} oz={:>6}", b.name, oz_size);
        for (name, seq) in &candidates {
            let mut m = b.module.clone();
            for &a in seq {
                pm.run_pipeline(&mut m, &actions.passes(a)).unwrap();
            }
            let s = object_size(&m, arch).total;
            let red = 100.0 * (oz_size as f64 - s as f64) / oz_size as f64;
            print!("  {name}={s} ({red:+.1}%)");
        }
        println!();
    }
}
