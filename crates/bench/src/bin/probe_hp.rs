//! Hyper-parameter probe: trains one ODG/x86 model with CLI-given settings
//! and reports average size reduction vs Oz on MiBench + SPEC-2017.
use posetrl::actions::ActionSet;
use posetrl::env::EnvConfig;
use posetrl::eval::evaluate_suite;
use posetrl::trainer::{train, TrainerConfig};
use posetrl_rl::dqn::DqnConfig;
use posetrl_target::TargetArch;

fn arg<T: std::str::FromStr>(i: usize, d: T) -> T {
    std::env::args()
        .nth(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or(d)
}

fn main() {
    let steps: u64 = arg(1, 12000);
    let gamma: f64 = arg(2, 0.9);
    let lr: f64 = arg(3, 3e-4);
    let updates: usize = arg(4, 2);
    let h1: usize = arg(5, 256);
    let h2: usize = arg(6, 128);
    let eps_end: f64 = arg(7, 0.05);
    let cfg = TrainerConfig {
        total_steps: steps,
        env: EnvConfig::default(),
        agent: DqnConfig {
            eps_decay_steps: steps * 2 / 3,
            lr,
            gamma,
            batch_size: 64,
            updates_per_step: updates,
            hidden: if h2 == 0 { vec![h1] } else { vec![h1, h2] },
            eps_end,
            target_sync_every: 500,
            replay_capacity: 30_000,
            ..DqnConfig::default()
        },
        max_programs: None,
        log_every: 0,
    };
    let programs = posetrl_workloads::training_suite();
    let model = train(&cfg, ActionSet::odg(), &programs);
    let mut parts = Vec::new();
    for (name, benches) in [
        ("mi", posetrl_workloads::mibench()),
        ("s17", posetrl_workloads::spec2017()),
    ] {
        let (_, stats) = evaluate_suite(&model, &benches, TargetArch::X86_64, false);
        parts.push(format!(
            "{name}: min {:+.1} avg {:+.1} max {:+.1}",
            stats.min_size_reduction_pct,
            stats.avg_size_reduction_pct,
            stats.max_size_reduction_pct
        ));
    }
    println!(
        "steps={steps} gamma={gamma} lr={lr} upd={updates} h=[{h1},{h2}] eps_end={eps_end} reward={:.2} | {}",
        model.final_mean_reward,
        parts.join(" | ")
    );
}
