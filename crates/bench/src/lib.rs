//! Shared helpers for the reproduction harness and the Criterion benches.

use posetrl_ir::Module;
use posetrl_workloads::{generate, ProgramKind, ProgramSpec, SizeClass};

/// A deterministic medium-sized module used by the micro-benchmarks.
pub fn bench_module(seed: u64) -> Module {
    generate(&ProgramSpec {
        name: format!("bench{seed}"),
        kind: ProgramKind::Mixed,
        size: SizeClass::Medium,
        seed,
    })
}

/// Writes an experiment artifact (text + JSON) under `results/`.
///
/// # Panics
///
/// Panics on I/O errors — the harness should fail loudly rather than
/// silently drop results.
pub fn write_artifact(name: &str, text: &str, json: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(dir.join(format!("{name}.txt")), text).expect("write text artifact");
    std::fs::write(
        dir.join(format!("{name}.json")),
        serde_json::to_string_pretty(json).expect("serialize artifact"),
    )
    .expect("write json artifact");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_module_is_reusable() {
        let m = bench_module(1);
        assert!(m.num_insts() > 100);
        posetrl_ir::verifier::verify_module(&m).unwrap();
    }
}
