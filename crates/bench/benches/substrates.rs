//! Micro-benchmarks of the substrates: embedding, size model, MCA model,
//! interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl_bench::bench_module;
use posetrl_embed::Embedder;
use posetrl_ir::interp::Interpreter;
use posetrl_target::{mca, size::object_size, TargetArch};
use std::hint::black_box;

fn bench_embedding(c: &mut Criterion) {
    let m = bench_module(1);
    let e = Embedder::default();
    c.bench_function("embed_module_medium", |b| {
        b.iter(|| black_box(e.embed_module(black_box(&m))))
    });
}

fn bench_size_model(c: &mut Criterion) {
    let m = bench_module(2);
    c.bench_function("object_size_x86", |b| {
        b.iter(|| black_box(object_size(black_box(&m), TargetArch::X86_64).total))
    });
    c.bench_function("object_size_aarch64", |b| {
        b.iter(|| black_box(object_size(black_box(&m), TargetArch::AArch64).total))
    });
}

fn bench_mca(c: &mut Criterion) {
    let m = bench_module(3);
    c.bench_function("mca_analyze_x86", |b| {
        b.iter(|| black_box(mca::analyze(black_box(&m), TargetArch::X86_64).throughput))
    });
}

fn bench_interp(c: &mut Criterion) {
    let m = bench_module(4);
    c.bench_function("interpret_main", |b| {
        b.iter(|| {
            let out = Interpreter::new(black_box(&m)).run("main", &[]);
            black_box(out.profile.total_steps)
        })
    });
}

criterion_group!(
    benches,
    bench_embedding,
    bench_size_model,
    bench_mca,
    bench_interp
);
criterion_main!(benches);
