//! Throughput of the interprocedural abstract interpreter: the full
//! module analysis (the `rangeopt` and lint front-end) and the static
//! feature extraction that rides in every RL state when
//! `EnvConfig::static_features` is on.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl_analyze::{absint, IncrementalAnalysisManager};
use posetrl_bench::bench_module;
use std::hint::black_box;

fn bench_analyze_module(c: &mut Criterion) {
    let m = bench_module(5);
    c.bench_function("absint_analyze_module", |b| {
        b.iter(|| black_box(absint::analyze_module(black_box(&m))))
    });
}

/// Incremental-vs-full: the same module analysis through a warmed
/// [`IncrementalAnalysisManager`], so every `analyze_function` leaf is a
/// per-function memo hit. Compare against `absint_analyze_module` (the
/// from-scratch path) — the results are bit-identical.
fn bench_analyze_module_incremental(c: &mut Criterion) {
    let m = bench_module(5);
    let mgr = IncrementalAnalysisManager::new();
    let full = absint::analyze_module(&m);
    let warm = absint::analyze_module_with(&m, Some(&mgr));
    assert_eq!(full, warm, "incremental analysis must be bit-identical");
    c.bench_function("absint_analyze_module_incremental_warm", |b| {
        b.iter(|| black_box(absint::analyze_module_with(black_box(&m), Some(&mgr))))
    });
    eprintln!("[absint] {}", mgr.stats().render());
}

fn bench_features(c: &mut Criterion) {
    let m = bench_module(6);
    c.bench_function("absint_module_features", |b| {
        b.iter(|| black_box(absint::features::module_features(black_box(&m))))
    });
}

fn bench_lints(c: &mut Criterion) {
    let m = bench_module(7);
    let mi = absint::analyze_module(&m);
    c.bench_function("absint_lint_with", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            absint::lint_with(black_box(&m), black_box(&mi), &mut out);
            black_box(out.len())
        })
    });
}

criterion_group!(
    benches,
    bench_analyze_module,
    bench_analyze_module_incremental,
    bench_features,
    bench_lints
);
criterion_main!(benches);
