//! Benchmarks of the RL stack: DQN inference/training and full
//! environment steps (the unit of training cost).

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl::actions::ActionSet;
use posetrl::env::{EnvConfig, PhaseEnv};
use posetrl_bench::bench_module;
use posetrl_rl::dqn::{DqnAgent, DqnConfig};
use posetrl_rl::replay::Transition;
use std::hint::black_box;

fn bench_dqn(c: &mut Criterion) {
    let cfg = DqnConfig {
        state_dim: 300,
        n_actions: 34,
        ..DqnConfig::default()
    };
    let mut agent = DqnAgent::new(cfg);
    let state = vec![0.1; 300];
    c.bench_function("dqn_forward_300x128x64x34", |b| {
        b.iter(|| black_box(agent.q_values(black_box(&state))))
    });
    // pre-fill replay so observe() trains each call
    for i in 0..128 {
        agent.observe(Transition {
            state: vec![0.01 * i as f64; 300],
            action: (i % 34) as usize,
            reward: 0.1,
            next_state: vec![0.01 * (i + 1) as f64; 300],
            done: i % 15 == 14,
        });
    }
    c.bench_function("dqn_train_batch32", |b| {
        b.iter(|| {
            agent.observe(Transition {
                state: vec![0.5; 300],
                action: 3,
                reward: 0.2,
                next_state: vec![0.4; 300],
                done: false,
            })
        })
    });
}

fn bench_env_step(c: &mut Criterion) {
    let module = bench_module(20);
    c.bench_function("env_episode_15_odg_actions", |b| {
        b.iter(|| {
            let mut env = PhaseEnv::new(EnvConfig::default(), ActionSet::odg());
            env.reset(module.clone());
            let mut total = 0.0;
            for a in [23, 8, 5, 30, 13, 0, 19, 33, 10, 2, 27, 17, 6, 31, 21] {
                total += env.step(a).reward;
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_dqn, bench_env_step);
criterion_main!(benches);
