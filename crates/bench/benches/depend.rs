//! Throughput of the loop data-dependence analysis: the full module
//! pass (the `loop-vec`/`loop-fuse` legality front-end and the depend
//! lints) and the same analysis through a warmed incremental manager,
//! where every per-function leaf is a memo hit.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl_analyze::{depend, IncrementalAnalysisManager};
use posetrl_bench::bench_module;
use std::hint::black_box;

fn bench_analyze_module(c: &mut Criterion) {
    let m = bench_module(5);
    c.bench_function("depend_analyze_module", |b| {
        b.iter(|| black_box(depend::analyze_module(black_box(&m))))
    });
}

/// Incremental-vs-full: compare against `depend_analyze_module` (the
/// from-scratch path) — the results are bit-identical by contract, and
/// the warm path also serves the scev and alias inputs from their own
/// memo classes.
fn bench_analyze_module_incremental(c: &mut Criterion) {
    let m = bench_module(5);
    let mgr = IncrementalAnalysisManager::new();
    let full = depend::analyze_module(&m);
    let warm = depend::analyze_module_with(&m, Some(&mgr));
    assert_eq!(full, warm, "incremental analysis must be bit-identical");
    c.bench_function("depend_analyze_module_incremental_warm", |b| {
        b.iter(|| black_box(depend::analyze_module_with(black_box(&m), Some(&mgr))))
    });
    eprintln!("[depend] {}", mgr.stats().render());
}

fn bench_lints(c: &mut Criterion) {
    let m = bench_module(7);
    c.bench_function("depend_check", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            depend::check(black_box(&m), &mut out);
            black_box(out.len())
        })
    });
}

criterion_group!(
    benches,
    bench_analyze_module,
    bench_analyze_module_incremental,
    bench_lints
);
criterion_main!(benches);
