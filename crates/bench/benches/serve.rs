//! Benchmarks of the serving stack: batched vs. solo NN inference (the
//! one-matmul-for-N-states claim) and protocol encode/decode cost per
//! request line.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl_rl::dqn::{DqnAgent, DqnConfig};
use posetrl_serve::protocol::{parse_request, Request};
use posetrl_target::TargetArch;
use std::hint::black_box;

fn bench_batched_inference(c: &mut Criterion) {
    let cfg = DqnConfig {
        state_dim: 300,
        n_actions: 34,
        ..DqnConfig::default()
    };
    let agent = DqnAgent::new(cfg);
    let policy = agent.policy();
    let states: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            (0..300)
                .map(|d| 0.01 * ((i * 7 + d) % 100) as f64)
                .collect()
        })
        .collect();
    c.bench_function("policy_act_greedy_x16_solo", |b| {
        b.iter(|| {
            for s in &states {
                black_box(policy.act_greedy(black_box(s)));
            }
        })
    });
    c.bench_function("policy_act_greedy_batch16", |b| {
        b.iter(|| black_box(policy.act_greedy_batch(black_box(&states))))
    });
}

fn bench_protocol(c: &mut Criterion) {
    let module = "x".repeat(8 * 1024);
    let line = Request {
        id: "bench-request".into(),
        module,
        arch: TargetArch::X86_64,
        max_steps: Some(15),
    }
    .to_json();
    c.bench_function("protocol_parse_request_8k", |b| {
        b.iter(|| black_box(parse_request(black_box(&line)).unwrap()))
    });
    let req = parse_request(&line).unwrap();
    c.bench_function("protocol_encode_request_8k", |b| {
        b.iter(|| black_box(black_box(&req).to_json()))
    });
}

criterion_group!(benches, bench_batched_inference, bench_protocol);
criterion_main!(benches);
