//! Serial vs parallel+cached validation sweeps (PR 2 acceptance bench).
//!
//! `eval_serial_uncached` is the pre-engine path: every criterion iteration
//! re-runs the full `-Oz` baseline and greedy rollout per benchmark.
//! `eval_parallel_cached_2w` / `_8w` share one `EvalCache` across all
//! iterations — after the first (cold) iteration every sweep is served from
//! memoized step/measure/embed entries, which is exactly what repeated
//! per-epoch validation looks like during training. The numbers are
//! bit-identical across all three (tests/parallel_determinism.rs); only the
//! wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl::actions::ActionSet;
use posetrl::engine::{train_parallel, EngineConfig};
use posetrl::env::{EnvConfig, PhaseEnv};
use posetrl::eval::{evaluate_suite, evaluate_suite_parallel, ParallelEval};
use posetrl::trainer::TrainedModel;
use posetrl::EvalCache;
use posetrl_analyze::IncrementalAnalysisManager;
use posetrl_target::TargetArch;
use posetrl_workloads::{mibench, training_suite, Benchmark};
use std::hint::black_box;
use std::sync::Arc;

fn sweep_fixture() -> (TrainedModel, Vec<Benchmark>) {
    let (model, _) = train_parallel(
        &EngineConfig::quick(),
        ActionSet::odg(),
        &training_suite(),
        &[],
    );
    let benches: Vec<Benchmark> = mibench().into_iter().take(6).collect();
    (model, benches)
}

fn bench_validation_sweeps(c: &mut Criterion) {
    let (model, benches) = sweep_fixture();
    let arch = TargetArch::X86_64;

    c.bench_function("eval_serial_uncached", |b| {
        b.iter(|| {
            let (results, _) = evaluate_suite(&model, &benches, arch, false);
            black_box(results.len())
        })
    });

    for workers in [2usize, 8] {
        let cache = EvalCache::shared();
        let opts = ParallelEval::with_cache(workers, Arc::clone(&cache));
        c.bench_function(&format!("eval_parallel_cached_{workers}w"), |b| {
            b.iter(|| {
                let (results, _) = evaluate_suite_parallel(&model, &benches, arch, false, &opts);
                black_box(results.len())
            })
        });
        eprintln!("[parallel_eval] {workers}w {}", cache.stats().render());
    }
}

/// Incremental-vs-full on the warm episode path: a fixed 15-step episode
/// replayed with and without a (persistent, hence warm after the first
/// iteration) per-function [`IncrementalAnalysisManager`]. With the
/// manager attached, each step re-embeds and re-analyzes only the
/// functions the step's passes touched; without it, every step restarts
/// from scratch. No `EvalCache` is attached, so the comparison isolates
/// the per-function memoization (a step memo would hide the analysis
/// work entirely). States are bit-identical either way
/// (tests/incremental_equivalence.rs).
fn bench_incremental_episode(c: &mut Criterion) {
    let module = mibench()
        .into_iter()
        .next()
        .expect("mibench is non-empty")
        .module;
    let actions = ActionSet::odg();
    let seq: [usize; 15] = [8, 23, 30, 13, 5, 19, 0, 33, 21, 10, 2, 27, 17, 6, 31];
    let cfg = EnvConfig {
        static_features: true,
        ..EnvConfig::default()
    };
    for incremental in [false, true] {
        let label = if incremental {
            "episode_15step_incremental_warm"
        } else {
            "episode_15step_full"
        };
        let mut env = PhaseEnv::new(cfg.clone(), actions.clone());
        let mgr = incremental.then(|| Arc::new(IncrementalAnalysisManager::new()));
        env.set_incremental(mgr.clone());
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut state = env.reset(module.clone());
                for &a in &seq {
                    state = env.step(a).state;
                }
                black_box(state.len())
            })
        });
        if let Some(mgr) = &mgr {
            eprintln!("[parallel_eval] {}", mgr.stats().render());
        }
    }
}

criterion_group!(benches, bench_validation_sweeps, bench_incremental_episode);
criterion_main!(benches);
