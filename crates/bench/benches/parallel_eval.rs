//! Serial vs parallel+cached validation sweeps (PR 2 acceptance bench).
//!
//! `eval_serial_uncached` is the pre-engine path: every criterion iteration
//! re-runs the full `-Oz` baseline and greedy rollout per benchmark.
//! `eval_parallel_cached_2w` / `_8w` share one `EvalCache` across all
//! iterations — after the first (cold) iteration every sweep is served from
//! memoized step/measure/embed entries, which is exactly what repeated
//! per-epoch validation looks like during training. The numbers are
//! bit-identical across all three (tests/parallel_determinism.rs); only the
//! wall clock differs.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl::actions::ActionSet;
use posetrl::engine::{train_parallel, EngineConfig};
use posetrl::eval::{evaluate_suite, evaluate_suite_parallel, ParallelEval};
use posetrl::trainer::TrainedModel;
use posetrl::EvalCache;
use posetrl_target::TargetArch;
use posetrl_workloads::{mibench, training_suite, Benchmark};
use std::hint::black_box;
use std::sync::Arc;

fn sweep_fixture() -> (TrainedModel, Vec<Benchmark>) {
    let (model, _) = train_parallel(
        &EngineConfig::quick(),
        ActionSet::odg(),
        &training_suite(),
        &[],
    );
    let benches: Vec<Benchmark> = mibench().into_iter().take(6).collect();
    (model, benches)
}

fn bench_validation_sweeps(c: &mut Criterion) {
    let (model, benches) = sweep_fixture();
    let arch = TargetArch::X86_64;

    c.bench_function("eval_serial_uncached", |b| {
        b.iter(|| {
            let (results, _) = evaluate_suite(&model, &benches, arch, false);
            black_box(results.len())
        })
    });

    for workers in [2usize, 8] {
        let cache = EvalCache::shared();
        let opts = ParallelEval::with_cache(workers, Arc::clone(&cache));
        c.bench_function(&format!("eval_parallel_cached_{workers}w"), |b| {
            b.iter(|| {
                let (results, _) = evaluate_suite_parallel(&model, &benches, arch, false, &opts);
                black_box(results.len())
            })
        });
        eprintln!("[parallel_eval] {workers}w {}", cache.stats().render());
    }
}

criterion_group!(benches, bench_validation_sweeps);
criterion_main!(benches);
