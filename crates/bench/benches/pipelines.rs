//! Benchmarks of the optimization pipelines and individual hot passes.

use criterion::{criterion_group, criterion_main, Criterion};
use posetrl_bench::bench_module;
use posetrl_opt::manager::PassManager;
use posetrl_opt::pipelines;
use std::hint::black_box;

fn bench_oz_pipeline(c: &mut Criterion) {
    let m = bench_module(10);
    let pm = PassManager::new();
    c.bench_function("pipeline_oz_medium", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            pm.run_pipeline(&mut m2, &pipelines::oz()).unwrap();
            black_box(m2.num_insts())
        })
    });
}

fn bench_o3_pipeline(c: &mut Criterion) {
    let m = bench_module(10);
    let pm = PassManager::new();
    c.bench_function("pipeline_o3_medium", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            pm.run_pipeline(&mut m2, &pipelines::o3()).unwrap();
            black_box(m2.num_insts())
        })
    });
}

fn bench_hot_passes(c: &mut Criterion) {
    let m = bench_module(11);
    let pm = PassManager::new();
    for pass in [
        "mem2reg",
        "instcombine",
        "gvn",
        "simplifycfg",
        "sccp",
        "licm",
        "inline",
    ] {
        c.bench_function(&format!("pass_{pass}"), |b| {
            b.iter(|| {
                let mut m2 = m.clone();
                pm.run_pass(&mut m2, pass).unwrap();
                black_box(m2.num_insts())
            })
        });
    }
}

criterion_group!(
    benches,
    bench_oz_pipeline,
    bench_o3_pipeline,
    bench_hot_passes
);
criterion_main!(benches);
