//! Interpreter edge-semantics tests: the total, deterministic definitions
//! that constant folding and the property tests rely on.

use posetrl_ir::interp::{ExecError, InterpConfig, Interpreter, RtVal};
use posetrl_ir::parser::parse_module;
use posetrl_ir::verifier::verify_module;

fn run(text: &str, entry: &str, args: &[RtVal]) -> posetrl_ir::interp::ExecOutcome {
    let m = parse_module(text).expect("parse");
    verify_module(&m).expect("verify");
    Interpreter::new(&m).run(entry, args)
}

#[test]
fn integer_wrapping_matches_type_width() {
    let text = r#"
module "m"
fn @f(i64) -> i64 internal {
bb0:
  %t = trunc %arg0 to i8
  %d = add i8 %t, 100:i8
  %w = sext %d to i64
  ret %w
}
"#;
    // 100 (i8) + 100 = 200 -> wraps to -56
    let out = run(text, "f", &[RtVal::Int(100)]);
    assert_eq!(out.result, Ok(Some(RtVal::Int(-56))));
}

#[test]
fn srem_sign_follows_dividend() {
    let text = r#"
module "m"
fn @f(i64, i64) -> i64 internal {
bb0:
  %r = srem i64 %arg0, %arg1
  ret %r
}
"#;
    assert_eq!(
        run(text, "f", &[RtVal::Int(-7), RtVal::Int(3)]).result,
        Ok(Some(RtVal::Int(-1)))
    );
    assert_eq!(
        run(text, "f", &[RtVal::Int(7), RtVal::Int(-3)]).result,
        Ok(Some(RtVal::Int(1)))
    );
}

#[test]
fn sdiv_min_by_minus_one_wraps() {
    let text = r#"
module "m"
fn @f(i64) -> i64 internal {
bb0:
  %r = sdiv i64 %arg0, -1:i64
  ret %r
}
"#;
    // defined as wrapping, not UB: i64::MIN / -1 == i64::MIN
    let out = run(text, "f", &[RtVal::Int(i64::MIN)]);
    assert_eq!(out.result, Ok(Some(RtVal::Int(i64::MIN))));
}

#[test]
fn negative_gep_offset_out_of_bounds_traps() {
    let text = r#"
module "m"
global @g : i64 x 4 mutable internal = []
fn @f() -> i64 internal {
bb0:
  %p = gep i64, @g, -1:i64
  %v = load i64, %p
  ret %v
}
"#;
    assert_eq!(run(text, "f", &[]).result, Err(ExecError::OutOfBounds));
}

#[test]
fn gep_negative_then_positive_is_fine() {
    let text = r#"
module "m"
global @g : i64 x 4 mutable internal = [10:i64, 20:i64, 30:i64, 40:i64]
fn @f() -> i64 internal {
bb0:
  %p = gep i64, @g, 3:i64
  %q = gep i64, %p, -2:i64
  %v = load i64, %q
  ret %v
}
"#;
    assert_eq!(run(text, "f", &[]).result, Ok(Some(RtVal::Int(20))));
}

#[test]
fn overlapping_memcpy_is_element_ordered() {
    // memcpy reads the whole source snapshot first (memmove semantics)
    let text = r#"
module "m"
global @g : i64 x 4 mutable internal = [1:i64, 2:i64, 3:i64, 4:i64]
fn @f() -> i64 internal {
bb0:
  %src = gep i64, @g, 0:i64
  %dst = gep i64, @g, 1:i64
  memcpy i64 %dst, %src, 3:i64
  %p = gep i64, @g, 3:i64
  %v = load i64, %p
  ret %v
}
"#;
    // snapshot copy: g becomes [1,1,2,3]
    assert_eq!(run(text, "f", &[]).result, Ok(Some(RtVal::Int(3))));
}

#[test]
fn store_wrong_type_traps() {
    let text = r#"
module "m"
global @g : i64 x 1 mutable internal = []
fn @f() -> i64 internal {
bb0:
  store i32 1:i32, @g
  ret 0:i64
}
"#;
    match run(text, "f", &[]).result {
        Err(ExecError::TypeError(_)) => {}
        other => panic!("expected type error, got {other:?}"),
    }
}

#[test]
fn global_state_resets_between_runs() {
    let text = r#"
module "m"
global @counter : i64 x 1 mutable internal = [0:i64]
fn @main() -> i64 internal {
bb0:
  %v = load i64, @counter
  %v2 = add i64 %v, 1:i64
  store i64 %v2, @counter
  ret %v2
}
"#;
    let m = parse_module(text).unwrap();
    for _ in 0..3 {
        let out = Interpreter::new(&m).run("main", &[]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(1))), "each run starts fresh");
    }
}

#[test]
fn profile_counts_match_control_flow() {
    let text = r#"
module "m"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
"#;
    let m = parse_module(text).unwrap();
    let out = Interpreter::new(&m).run("main", &[]);
    let fid = m.func_by_name("main").unwrap();
    let f = m.func(fid).unwrap();
    // the add executes exactly 10 times, the compare 11 times
    let count_of = |kind: &str| -> u64 {
        f.inst_ids()
            .iter()
            .filter(|&&id| f.op(id).kind_name() == kind)
            .map(|&id| out.profile.counts.get(&(fid, id)).copied().unwrap_or(0))
            .sum()
    };
    assert_eq!(count_of("add"), 10);
    assert_eq!(count_of("icmp"), 11);
    assert_eq!(count_of("condbr"), 11);
}

#[test]
fn fuel_counts_phis_lazily_not_at_block_entry() {
    // phi evaluation at block entry must not consume unbounded fuel
    let text = r#"
module "m"
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb1: %i2]
  %i2 = add i64 %i, 1:i64
  %c = icmp slt i64 %i2, 100:i64
  condbr %c, bb1, bb2
bb2:
  ret %i2
}
"#;
    let m = parse_module(text).unwrap();
    let out = Interpreter::with_config(
        &m,
        InterpConfig {
            fuel: 5_000,
            max_depth: 8,
        },
    )
    .run("main", &[]);
    assert_eq!(out.result, Ok(Some(RtVal::Int(100))));
}
