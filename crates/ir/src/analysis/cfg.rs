//! Control-flow graph: successors, predecessors, reachability and orderings.

use crate::module::{BlockId, Function};
use std::collections::{HashMap, HashSet};

/// A snapshot of the function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Entry block.
    pub entry: BlockId,
    /// Successor lists.
    pub succs: HashMap<BlockId, Vec<BlockId>>,
    /// Predecessor lists.
    pub preds: HashMap<BlockId, Vec<BlockId>>,
    /// Blocks reachable from the entry, in reverse post-order.
    pub rpo: Vec<BlockId>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in f.block_ids() {
            succs.insert(b, f.successors(b));
            preds.entry(b).or_default();
        }
        // Build predecessor lists in block order, not map order: pred-list
        // order reaches the printed form (phi incomings follow it), so it
        // must be a deterministic function of the module.
        for b in f.block_ids() {
            for &s in &succs[&b] {
                preds.entry(s).or_default().push(b);
            }
        }
        let rpo = Self::reverse_post_order(f.entry, &succs);
        Cfg {
            entry: f.entry,
            succs,
            preds,
            rpo,
        }
    }

    fn reverse_post_order(entry: BlockId, succs: &HashMap<BlockId, Vec<BlockId>>) -> Vec<BlockId> {
        let mut visited = HashSet::new();
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-successor-index).
        let mut stack = vec![(entry, 0usize)];
        visited.insert(entry);
        while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
            let ss = succs.get(&b).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx < ss.len() {
                let next = ss[*idx];
                *idx += 1;
                if visited.insert(next) {
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> HashSet<BlockId> {
        self.rpo.iter().copied().collect()
    }

    /// Post-order position of each reachable block (used by dominators).
    pub fn rpo_index(&self) -> HashMap<BlockId, usize> {
        self.rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect()
    }

    /// Predecessors of `b` restricted to reachable blocks.
    pub fn reachable_preds(&self, b: BlockId) -> Vec<BlockId> {
        let reach = self.reachable();
        self.preds
            .get(&b)
            .map(|ps| ps.iter().copied().filter(|p| reach.contains(p)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::Ty;
    use crate::value::Value;

    /// entry -> {a, b} -> merge, plus an unreachable block.
    fn diamond() -> Function {
        let mut f = Function::new("d", vec![], Ty::Void);
        let entry = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let merge = f.add_block();
        let dead = f.add_block();
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: a,
                else_bb: b,
            },
        );
        f.append_inst(a, Op::Br { target: merge });
        f.append_inst(b, Op::Br { target: merge });
        f.append_inst(merge, Op::Ret { val: None });
        f.append_inst(dead, Op::Ret { val: None });
        f
    }

    #[test]
    fn rpo_visits_entry_first_and_skips_unreachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo[0], f.entry);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        for (&b, ss) in &cfg.succs {
            for s in ss {
                assert!(cfg.preds[s].contains(&b));
            }
        }
        assert_eq!(cfg.preds[&BlockId(3)].len(), 2);
    }

    #[test]
    fn reachable_excludes_dead_block() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.reachable().contains(&BlockId(4)));
    }
}
