//! Dominator tree via the Cooper–Harvey–Kennedy algorithm.

use crate::analysis::cfg::Cfg;
use crate::module::{BlockId, Function};
use std::collections::HashMap;

/// Dominator tree of the reachable CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (the entry maps to itself).
    pub idom: HashMap<BlockId, BlockId>,
    /// Children in the dominator tree.
    pub children: HashMap<BlockId, Vec<BlockId>>,
    entry: BlockId,
    /// Depth of each block in the dominator tree (entry = 0).
    depth: HashMap<BlockId, u32>,
}

impl DomTree {
    /// Computes the dominator tree for `f` using its `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let entry = f.entry;
        let rpo = &cfg.rpo;
        let index: HashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds = cfg.preds.get(&b).cloned().unwrap_or_default();
                let mut new_idom: Option<BlockId> = None;
                for p in preds {
                    if !index.contains_key(&p) || !idom.contains_key(&p) {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(cur, p, &idom, &index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            children.entry(d).or_default();
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for v in children.values_mut() {
            v.sort();
        }

        let mut depth = HashMap::new();
        depth.insert(entry, 0u32);
        // children follow parents in rpo order not guaranteed; BFS instead.
        let mut queue = vec![entry];
        while let Some(b) = queue.pop() {
            let d = depth[&b];
            for &c in children.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                depth.insert(c, d + 1);
                queue.push(c);
            }
        }

        DomTree {
            idom,
            children,
            entry,
            depth,
        }
    }

    fn intersect(
        mut a: BlockId,
        mut b: BlockId,
        idom: &HashMap<BlockId, BlockId>,
        index: &HashMap<BlockId, usize>,
    ) -> BlockId {
        while a != b {
            while index[&a] > index[&b] {
                a = idom[&a];
            }
            while index[&b] > index[&a] {
                b = idom[&b];
            }
        }
        a
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Depth of `b` in the dominator tree (entry = 0), if reachable.
    pub fn depth(&self, b: BlockId) -> Option<u32> {
        self.depth.get(&b).copied()
    }

    /// Pre-order walk of the dominator tree from the entry.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            if let Some(cs) = self.children.get(&b) {
                for &c in cs.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::Ty;
    use crate::value::Value;

    /// entry -> a -> {b, c}; b -> d; c -> d; d -> ret
    fn build() -> (Function, BlockId, BlockId, BlockId, BlockId, BlockId) {
        let mut f = Function::new("f", vec![], Ty::Void);
        let entry = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let c = f.add_block();
        let d = f.add_block();
        f.append_inst(entry, Op::Br { target: a });
        f.append_inst(
            a,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: b,
                else_bb: c,
            },
        );
        f.append_inst(b, Op::Br { target: d });
        f.append_inst(c, Op::Br { target: d });
        f.append_inst(d, Op::Ret { val: None });
        (f, entry, a, b, c, d)
    }

    #[test]
    fn idoms_of_diamond() {
        let (f, entry, a, b, c, d) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom[&a], entry);
        assert_eq!(dt.idom[&b], a);
        assert_eq!(dt.idom[&c], a);
        assert_eq!(dt.idom[&d], a);
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, entry, a, b, _c, d) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert!(dt.dominates(entry, d));
        assert!(dt.dominates(a, d));
        assert!(!dt.dominates(b, d));
        assert!(dt.dominates(b, b));
        assert!(dt.strictly_dominates(entry, a));
        assert!(!dt.strictly_dominates(a, a));
    }

    #[test]
    fn depth_and_preorder() {
        let (f, entry, a, b, c, d) = build();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.depth(entry), Some(0));
        assert_eq!(dt.depth(a), Some(1));
        assert_eq!(dt.depth(b), Some(2));
        assert_eq!(dt.depth(d), Some(2));
        let pre = dt.preorder();
        assert_eq!(pre[0], entry);
        assert_eq!(pre.len(), 5);
        let pos = |x: BlockId| pre.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c) && pos(a) < pos(d));
    }

    #[test]
    fn loop_back_edge_does_not_confuse_idom() {
        // entry -> h; h -> {body, exit}; body -> h
        let mut f = Function::new("f", vec![], Ty::Void);
        let entry = f.entry;
        let h = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.append_inst(entry, Op::Br { target: h });
        f.append_inst(
            h,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: body,
                else_bb: exit,
            },
        );
        f.append_inst(body, Op::Br { target: h });
        f.append_inst(exit, Op::Ret { val: None });
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom[&h], entry);
        assert_eq!(dt.idom[&body], h);
        assert_eq!(dt.idom[&exit], h);
        assert!(dt.dominates(h, body));
        assert!(!dt.dominates(body, h));
    }
}
