//! Standard control-flow and data-flow analyses over [`crate::Function`].

pub mod cfg;
pub mod dom;
pub mod liveness;
pub mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
