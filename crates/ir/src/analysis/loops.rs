//! Natural loop detection from dominance back-edges.

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::module::{BlockId, Function};
use std::collections::{BTreeSet, HashMap};

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Blocks belonging to the loop (includes the header). Ordered so that
    /// passes iterating the body visit blocks in a deterministic order.
    pub blocks: BTreeSet<BlockId>,
    /// Latch blocks: in-loop predecessors of the header (back-edge sources).
    pub latches: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

impl Loop {
    /// Blocks outside the loop that are branched to from inside.
    pub fn exit_blocks(&self, f: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            for s in f.successors(b) {
                if !self.blocks.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out.sort();
        out
    }

    /// In-loop blocks that branch outside (exiting blocks).
    pub fn exiting_blocks(&self, f: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            if f.successors(b).iter().any(|s| !self.blocks.contains(s)) {
                out.push(b);
            }
        }
        out.sort();
        out
    }

    /// The unique preheader: the single out-of-loop predecessor of the
    /// header whose only successor is the header. `None` when the CFG is not
    /// in loop-simplified form.
    pub fn preheader(&self, f: &Function, cfg: &Cfg) -> Option<BlockId> {
        let preds = cfg.preds.get(&self.header)?;
        let outside: Vec<BlockId> = preds
            .iter()
            .copied()
            .filter(|p| !self.blocks.contains(p))
            .collect();
        match outside.as_slice() {
            [p] if f.successors(*p) == vec![self.header] => Some(*p),
            _ => None,
        }
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops sorted outer-to-inner (by depth, then header id).
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects natural loops using back edges `latch -> header` where the
    /// header dominates the latch. Multiple back edges to the same header are
    /// merged into one loop (as LLVM does).
    pub fn compute(_f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopForest {
        let mut by_header: HashMap<BlockId, Loop> = HashMap::new();
        for &b in &cfg.rpo {
            for s in cfg.succs.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                if dt.dominates(*s, b) {
                    // back edge b -> s
                    let l = by_header.entry(*s).or_insert_with(|| Loop {
                        header: *s,
                        blocks: BTreeSet::from([*s]),
                        latches: Vec::new(),
                        depth: 0,
                    });
                    l.latches.push(b);
                    // collect the natural-loop body by walking predecessors
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if l.blocks.insert(x) {
                            for p in cfg.preds.get(&x).map(|v| v.as_slice()).unwrap_or(&[]) {
                                stack.push(*p);
                            }
                        }
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header.into_values().collect();
        // depth = 1 + number of other loops whose body strictly contains our header
        let snapshots: Vec<(BlockId, BTreeSet<BlockId>)> =
            loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
        for l in &mut loops {
            let mut depth = 1;
            for (h, blocks) in &snapshots {
                if *h != l.header && blocks.contains(&l.header) {
                    depth += 1;
                }
            }
            l.depth = depth;
            l.latches.sort();
            l.latches.dedup();
        }
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops }
    }

    /// Loop nesting depth of `b` (0 when not in any loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.loops.iter().filter(|l| l.blocks.contains(&b)).count() as u32
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&b))
            .max_by_key(|l| l.depth)
    }

    /// The loop headed by `h`, if any.
    pub fn loop_with_header(&self, h: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::types::Ty;
    use crate::value::Value;

    /// entry -> outer_h; outer_h -> {inner_h, exit}; inner_h -> {inner_body, outer_latch};
    /// inner_body -> inner_h; outer_latch -> outer_h
    fn nested() -> (Function, BlockId, BlockId) {
        let mut f = Function::new("f", vec![], Ty::Void);
        let entry = f.entry;
        let outer_h = f.add_block();
        let inner_h = f.add_block();
        let inner_body = f.add_block();
        let outer_latch = f.add_block();
        let exit = f.add_block();
        f.append_inst(entry, Op::Br { target: outer_h });
        f.append_inst(
            outer_h,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: inner_h,
                else_bb: exit,
            },
        );
        f.append_inst(
            inner_h,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: inner_body,
                else_bb: outer_latch,
            },
        );
        f.append_inst(inner_body, Op::Br { target: inner_h });
        f.append_inst(outer_latch, Op::Br { target: outer_h });
        f.append_inst(exit, Op::Ret { val: None });
        (f, outer_h, inner_h)
    }

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        LoopForest::compute(f, &cfg, &dt)
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let (f, outer_h, inner_h) = nested();
        let lf = forest(&f);
        assert_eq!(lf.loops.len(), 2);
        let outer = lf.loop_with_header(outer_h).unwrap();
        let inner = lf.loop_with_header(inner_h).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.contains(&inner_h));
        assert!(!inner.blocks.contains(&outer_h));
        assert_eq!(lf.depth_of(inner_h), 2);
        assert_eq!(lf.depth_of(outer_h), 1);
        assert_eq!(lf.depth_of(f.entry), 0);
    }

    #[test]
    fn exits_and_latches() {
        let (f, outer_h, inner_h) = nested();
        let lf = forest(&f);
        let inner = lf.loop_with_header(inner_h).unwrap();
        assert_eq!(inner.latches.len(), 1);
        let exits = inner.exit_blocks(&f);
        assert_eq!(exits.len(), 1); // outer_latch
        let outer = lf.loop_with_header(outer_h).unwrap();
        assert_eq!(outer.exiting_blocks(&f), vec![outer_h]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry;
        f.append_inst(e, Op::Ret { val: None });
        assert!(forest(&f).loops.is_empty());
    }

    #[test]
    fn preheader_detection() {
        let (f, outer_h, _) = nested();
        let cfg = Cfg::compute(&f);
        let lf = forest(&f);
        let outer = lf.loop_with_header(outer_h).unwrap();
        assert_eq!(outer.preheader(&f, &cfg), Some(f.entry));
    }
}
