//! Block-level liveness of instruction results.

use crate::analysis::cfg::Cfg;
use crate::inst::{InstId, Op};
use crate::module::{BlockId, Function};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Live-in/live-out sets of instruction results per block.
///
/// Phi operands are treated edge-sensitively: a phi's incoming value is live
/// out of the corresponding predecessor, not live-in to the phi's block.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Values (instruction results) live on entry to each block.
    pub live_in: HashMap<BlockId, HashSet<InstId>>,
    /// Values live on exit of each block.
    pub live_out: HashMap<BlockId, HashSet<InstId>>,
}

impl Liveness {
    /// Computes liveness with a standard backward fixed-point iteration.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        // use[b]: values used in b before being defined in b (phi uses
        // attributed to predecessors); def[b]: values defined in b.
        let mut use_set: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        let mut def_set: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        // phi_uses[p] = values used by phis in successors along edge p->succ
        let mut phi_uses: HashMap<BlockId, HashSet<InstId>> = HashMap::new();

        for &b in &cfg.rpo {
            let mut uses = HashSet::new();
            let mut defs: HashSet<InstId> = HashSet::new();
            for &id in &f.block(b).unwrap().insts {
                match f.op(id) {
                    Op::Phi { incomings, .. } => {
                        for (pred, v) in incomings {
                            if let Value::Inst(d) = v {
                                phi_uses.entry(*pred).or_default().insert(*d);
                            }
                        }
                    }
                    op => {
                        for v in op.operands() {
                            if let Value::Inst(d) = v {
                                if !defs.contains(&d) {
                                    uses.insert(d);
                                }
                            }
                        }
                    }
                }
                if f.op(id).result_ty() != crate::types::Ty::Void {
                    defs.insert(id);
                }
            }
            use_set.insert(b, uses);
            def_set.insert(b, defs);
        }

        let mut live_in: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        let mut live_out: HashMap<BlockId, HashSet<InstId>> = HashMap::new();
        for &b in &cfg.rpo {
            live_in.insert(b, HashSet::new());
            live_out.insert(b, HashSet::new());
        }

        let mut changed = true;
        while changed {
            changed = false;
            // iterate in post-order for faster convergence of backward analysis
            for &b in cfg.rpo.iter().rev() {
                let mut out: HashSet<InstId> = phi_uses.get(&b).cloned().unwrap_or_default();
                for s in cfg.succs.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if let Some(li) = live_in.get(s) {
                        out.extend(li.iter().copied());
                    }
                }
                let mut inn: HashSet<InstId> = use_set[&b].clone();
                for &v in &out {
                    if !def_set[&b].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[&b] {
                    live_out.insert(b, out);
                    changed = true;
                }
                if inn != live_in[&b] {
                    live_in.insert(b, inn);
                    changed = true;
                }
            }
        }

        Liveness { live_in, live_out }
    }

    /// Returns `true` if the result of `id` is live into `b`.
    pub fn is_live_in(&self, b: BlockId, id: InstId) -> bool {
        self.live_in.get(&b).is_some_and(|s| s.contains(&id))
    }

    /// Maximum number of simultaneously live values across block boundaries —
    /// a cheap register-pressure proxy used by the cost models.
    pub fn max_pressure(&self) -> usize {
        self.live_in.values().map(|s| s.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, IntPred};
    use crate::types::Ty;

    #[test]
    fn value_live_across_branch() {
        // entry: x = arg0 + 1; condbr(arg-based) -> a, b
        // a: ret x ; b: ret 0
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let entry = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let x = f.append_inst(
            entry,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
        );
        let c = f.append_inst(
            entry,
            Op::Icmp {
                pred: IntPred::Sgt,
                ty: Ty::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(0),
            },
        );
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::Inst(c),
                then_bb: a,
                else_bb: b,
            },
        );
        f.append_inst(
            a,
            Op::Ret {
                val: Some(Value::Inst(x)),
            },
        );
        f.append_inst(
            b,
            Op::Ret {
                val: Some(Value::i64(0)),
            },
        );

        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(lv.is_live_in(a, x));
        assert!(!lv.is_live_in(b, x));
        assert!(lv.live_out[&entry].contains(&x));
        assert!(lv.max_pressure() >= 1);
    }

    #[test]
    fn phi_operand_live_out_of_pred_only() {
        // entry -> {a, b} -> merge(phi[a: x, b: 5])
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let entry = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let merge = f.add_block();
        let x = f.append_inst(
            entry,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
        );
        let c = f.append_inst(
            entry,
            Op::Icmp {
                pred: IntPred::Sgt,
                ty: Ty::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(0),
            },
        );
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::Inst(c),
                then_bb: a,
                else_bb: b,
            },
        );
        f.append_inst(a, Op::Br { target: merge });
        f.append_inst(b, Op::Br { target: merge });
        let phi = f.append_inst(
            merge,
            Op::Phi {
                ty: Ty::I64,
                incomings: vec![(a, Value::Inst(x)), (b, Value::i64(5))],
            },
        );
        f.append_inst(
            merge,
            Op::Ret {
                val: Some(Value::Inst(phi)),
            },
        );

        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // x is live out of block `a` (phi use), but not live-in to merge.
        assert!(lv.live_out[&a].contains(&x));
        assert!(!lv.is_live_in(merge, x));
    }
}
