//! Parser for the textual IR format produced by [`crate::printer`].

use crate::inst::{BinOp, CastKind, FloatPred, InstId, IntPred, Op};
use crate::module::{BlockId, FuncId, Function, Global, GlobalId, Linkage, Module};
use crate::types::Ty;
use crate::value::{Const, Value};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first malformed line.
///
/// # Example
///
/// ```
/// let text = r#"
/// module "m"
/// fn @id(i64) -> i64 internal {
/// bb0:
///   ret %arg0
/// }
/// "#;
/// let m = posetrl_ir::parser::parse_module(text)?;
/// assert!(m.func_by_name("id").is_some());
/// # Ok::<(), posetrl_ir::parser::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut module = Module::new("module");
    let mut func_names: HashMap<String, FuncId> = HashMap::new();
    let mut global_names: HashMap<String, GlobalId> = HashMap::new();

    // Pass 1: collect module name, globals and function signatures so calls
    // and global references can be resolved in pass 2.
    let mut i = 0;
    while i < lines.len() {
        let (ln, l) = lines[i];
        if let Some(rest) = l.strip_prefix("module ") {
            module.name = rest.trim().trim_matches('"').to_string();
            i += 1;
        } else if l.starts_with("global ") {
            let g = parse_global(ln, l)?;
            let name = g.name.clone();
            let id = module.add_global(g);
            global_names.insert(name, id);
            i += 1;
        } else if l.starts_with("declare ") {
            let (name, params, ret) = parse_signature(ln, l.trim_start_matches("declare ").trim())?;
            let id = module.add_function(Function::new_decl(name.clone(), params, ret));
            func_names.insert(name, id);
            i += 1;
        } else if l.starts_with("fn ") {
            let header = l.trim_start_matches("fn ").trim_end_matches('{').trim();
            let (sig, tail) = split_signature(header);
            let (name, params, ret) = parse_signature(ln, sig)?;
            let mut f = Function::new(name.clone(), params, ret);
            apply_fn_keywords(&mut f, tail);
            // remove the default entry block; blocks come from labels
            f.remove_block(f.entry);
            let id = module.add_function(f);
            func_names.insert(name, id);
            // skip body in pass 1
            i += 1;
            while i < lines.len() && lines[i].1 != "}" {
                i += 1;
            }
            i += 1; // the '}'
        } else {
            return Err(perr(ln, format!("unexpected top-level line: {l}")));
        }
    }

    // Pass 2: parse function bodies.
    let mut i = 0;
    while i < lines.len() {
        let (_, l) = lines[i];
        if l.starts_with("fn ") {
            let header = l.trim_start_matches("fn ").trim_end_matches('{').trim();
            let (sig, _) = split_signature(header);
            let (name, _, _) = parse_signature(lines[i].0, sig)?;
            let fid = func_names[&name];
            let mut body = Vec::new();
            i += 1;
            while i < lines.len() && lines[i].1 != "}" {
                body.push(lines[i]);
                i += 1;
            }
            i += 1;
            parse_body(&mut module, fid, &func_names, &global_names, &body)?;
        } else {
            i += 1;
        }
    }

    Ok(module)
}

fn strip_comment(l: &str) -> &str {
    match l.find(';') {
        Some(pos) => &l[..pos],
        None => l,
    }
}

fn split_signature(header: &str) -> (&str, &str) {
    // "@f(i64) -> i64 internal readnone" -> ("@f(i64) -> i64", "internal readnone")
    if let Some(arrow) = header.find("->") {
        let after = &header[arrow + 2..];
        let trimmed = after.trim_start();
        match trimmed.find(' ') {
            Some(sp) => {
                let cut = arrow + 2 + (after.len() - trimmed.len()) + sp;
                (&header[..cut], header[cut..].trim())
            }
            None => (header, ""),
        }
    } else {
        (header, "")
    }
}

fn apply_fn_keywords(f: &mut Function, tail: &str) {
    for word in tail.split_whitespace() {
        match word {
            "internal" => f.linkage = Linkage::Internal,
            "external" => f.linkage = Linkage::External,
            "readnone" => f.attrs.readnone = true,
            "readonly" => f.attrs.readonly = true,
            "norecurse" => f.attrs.norecurse = true,
            "nounwind" => f.attrs.nounwind = true,
            "willreturn" => f.attrs.willreturn = true,
            _ => {}
        }
    }
}

fn parse_ty(line: usize, s: &str) -> Result<Ty, ParseError> {
    match s.trim() {
        "void" => Ok(Ty::Void),
        "i1" => Ok(Ty::I1),
        "i8" => Ok(Ty::I8),
        "i32" => Ok(Ty::I32),
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        "ptr" => Ok(Ty::Ptr),
        other => Err(perr(line, format!("unknown type '{other}'"))),
    }
}

fn parse_signature(line: usize, s: &str) -> Result<(String, Vec<Ty>, Ty), ParseError> {
    // @name(i64, f64) -> i64
    let s = s.trim();
    let name_start = s
        .strip_prefix('@')
        .ok_or_else(|| perr(line, "expected '@name'"))?;
    let open = name_start
        .find('(')
        .ok_or_else(|| perr(line, "expected '('"))?;
    let name = name_start[..open].to_string();
    let close = name_start
        .rfind(')')
        .ok_or_else(|| perr(line, "expected ')'"))?;
    let params_str = &name_start[open + 1..close];
    let params: Vec<Ty> = if params_str.trim().is_empty() {
        Vec::new()
    } else {
        params_str
            .split(',')
            .map(|p| parse_ty(line, p))
            .collect::<Result<_, _>>()?
    };
    let after = name_start[close + 1..].trim();
    let ret_str = after
        .strip_prefix("->")
        .ok_or_else(|| perr(line, "expected '->'"))?;
    let ret = parse_ty(line, ret_str.split_whitespace().next().unwrap_or(""))?;
    Ok((name, params, ret))
}

fn parse_global(line: usize, l: &str) -> Result<Global, ParseError> {
    // global @name : ty x count mutable|const internal|external = [c, c]
    let rest = l.trim_start_matches("global ").trim();
    let name_end = rest
        .find(':')
        .ok_or_else(|| perr(line, "expected ':' in global"))?;
    let name = rest[..name_end]
        .trim()
        .strip_prefix('@')
        .ok_or_else(|| perr(line, "expected '@name'"))?
        .to_string();
    let after = rest[name_end + 1..].trim();
    let (head, init_str) = match after.find('=') {
        Some(eq) => (after[..eq].trim(), after[eq + 1..].trim()),
        None => (after, "[]"),
    };
    let mut words = head.split_whitespace();
    let ty = parse_ty(line, words.next().unwrap_or(""))?;
    if words.next() != Some("x") {
        return Err(perr(line, "expected 'x' in global"));
    }
    let count: u32 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| perr(line, "bad global count"))?;
    let mut mutable = true;
    let mut linkage = Linkage::Internal;
    for w in words {
        match w {
            "mutable" => mutable = true,
            "const" => mutable = false,
            "internal" => linkage = Linkage::Internal,
            "external" => linkage = Linkage::External,
            other => return Err(perr(line, format!("unknown global keyword '{other}'"))),
        }
    }
    let inner = init_str
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']');
    let init: Vec<Const> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|c| parse_const(line, c.trim()))
            .collect::<Result<_, _>>()?
    };
    Ok(Global {
        name,
        ty,
        count,
        init,
        mutable,
        linkage,
    })
}

fn parse_const(line: usize, s: &str) -> Result<Const, ParseError> {
    match s {
        "true" => return Ok(Const::bool(true)),
        "false" => return Ok(Const::bool(false)),
        "null" => return Ok(Const::Null),
        _ => {}
    }
    if let Some(rest) = s.strip_prefix("undef:") {
        return Ok(Const::Undef(parse_ty(line, rest)?));
    }
    let colon = s
        .rfind(':')
        .ok_or_else(|| perr(line, format!("bad constant '{s}'")))?;
    let (num, ty) = (&s[..colon], parse_ty(line, &s[colon + 1..])?);
    if ty == Ty::F64 {
        let v: f64 = num
            .parse()
            .map_err(|_| perr(line, format!("bad float '{num}'")))?;
        Ok(Const::Float(v))
    } else {
        let v: i64 = num
            .parse()
            .map_err(|_| perr(line, format!("bad integer '{num}'")))?;
        Ok(Const::int(ty, v))
    }
}

struct BodyCtx<'a> {
    funcs: &'a HashMap<String, FuncId>,
    globals: &'a HashMap<String, GlobalId>,
    values: HashMap<String, Value>,
    blocks: HashMap<String, BlockId>,
}

impl BodyCtx<'_> {
    fn value(&self, line: usize, s: &str) -> Result<Value, ParseError> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("%arg") {
            let idx: u32 = rest
                .parse()
                .map_err(|_| perr(line, format!("bad argument '{s}'")))?;
            return Ok(Value::Arg(idx));
        }
        if s.starts_with('%') {
            return self
                .values
                .get(s)
                .copied()
                .ok_or_else(|| perr(line, format!("unknown value '{s}'")));
        }
        if let Some(name) = s.strip_prefix("&@") {
            return self
                .funcs
                .get(name)
                .map(|&f| Value::Func(f))
                .ok_or_else(|| perr(line, format!("unknown function '{name}'")));
        }
        if let Some(name) = s.strip_prefix('@') {
            return self
                .globals
                .get(name)
                .map(|&g| Value::Global(g))
                .ok_or_else(|| perr(line, format!("unknown global '{name}'")));
        }
        parse_const(line, s).map(Value::Const)
    }

    fn block(&self, line: usize, s: &str) -> Result<BlockId, ParseError> {
        self.blocks
            .get(s.trim())
            .copied()
            .ok_or_else(|| perr(line, format!("unknown block '{s}'")))
    }
}

fn parse_body(
    module: &mut Module,
    fid: FuncId,
    funcs: &HashMap<String, FuncId>,
    globals: &HashMap<String, GlobalId>,
    lines: &[(usize, &str)],
) -> Result<(), ParseError> {
    // First: collect block labels in order.
    let mut ctx = BodyCtx {
        funcs,
        globals,
        values: HashMap::new(),
        blocks: HashMap::new(),
    };
    {
        let f = module.func_mut(fid).unwrap();
        let mut first = true;
        for &(ln, l) in lines {
            if let Some(label) = l.strip_suffix(':') {
                if !label.contains(' ') && !label.contains('=') {
                    let b = f.add_block();
                    if first {
                        f.entry = b;
                        first = false;
                    }
                    if ctx.blocks.insert(label.to_string(), b).is_some() {
                        return Err(perr(ln, format!("duplicate block label '{label}'")));
                    }
                }
            }
        }
        if first {
            return Err(perr(
                lines.first().map(|l| l.0).unwrap_or(0),
                "function has no blocks",
            ));
        }
    }

    // Two sub-passes over instructions so that forward references (loops,
    // phis) resolve: first create placeholder instructions to learn result
    // names, then re-parse operands.
    // Simpler single-pass approach: pre-scan result names and map them to
    // fresh instruction ids by parsing in order but patching operands later
    // would duplicate the grammar. Instead: scan result names, allocate
    // placeholder `Unreachable` ops, record ids, then re-parse each line and
    // overwrite the op in place.
    let mut placeholder_ids: Vec<(usize, InstId)> = Vec::new(); // (line idx, id)
    {
        let f = module.func_mut(fid).unwrap();
        let mut cur: Option<BlockId> = None;
        for (idx, &(ln, l)) in lines.iter().enumerate() {
            if let Some(label) = l.strip_suffix(':') {
                if !label.contains(' ') && !label.contains('=') {
                    cur = Some(ctx.blocks[label]);
                    continue;
                }
            }
            let b = cur.ok_or_else(|| perr(ln, "instruction before first label"))?;
            let id = f.append_inst(b, Op::Unreachable);
            placeholder_ids.push((idx, id));
            if let Some(eq) = l.find('=') {
                let name = l[..eq].trim();
                if name.starts_with('%') {
                    ctx.values.insert(name.to_string(), Value::Inst(id));
                }
            }
        }
    }

    for (idx, id) in placeholder_ids {
        let (ln, l) = lines[idx];
        let text = match l.find('=') {
            Some(eq) if l[..eq].trim().starts_with('%') && !l[..eq].trim().contains(' ') => {
                l[eq + 1..].trim()
            }
            _ => l,
        };
        let op = parse_op(module, &ctx, ln, text)?;
        module.func_mut(fid).unwrap().inst_mut(id).unwrap().op = op;
    }

    Ok(())
}

fn split_args(s: &str) -> Vec<&str> {
    // split on commas that are not inside brackets/parens
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '[' | '(' => depth += 1,
            ']' | ')' => depth -= 1,
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

fn parse_op(module: &Module, ctx: &BodyCtx, ln: usize, text: &str) -> Result<Op, ParseError> {
    let (mnemonic, rest) = match text.find(' ') {
        Some(sp) => (&text[..sp], text[sp + 1..].trim()),
        None => (text, ""),
    };

    let bin = |op: BinOp| -> Result<Op, ParseError> {
        let (ty_str, args) = rest
            .split_once(' ')
            .ok_or_else(|| perr(ln, "expected type"))?;
        let ty = parse_ty(ln, ty_str)?;
        let parts = split_args(args);
        if parts.len() != 2 {
            return Err(perr(ln, "binary op needs two operands"));
        }
        Ok(Op::Bin {
            op,
            ty,
            lhs: ctx.value(ln, parts[0])?,
            rhs: ctx.value(ln, parts[1])?,
        })
    };

    match mnemonic {
        "add" => bin(BinOp::Add),
        "sub" => bin(BinOp::Sub),
        "mul" => bin(BinOp::Mul),
        "sdiv" => bin(BinOp::SDiv),
        "srem" => bin(BinOp::SRem),
        "and" => bin(BinOp::And),
        "or" => bin(BinOp::Or),
        "xor" => bin(BinOp::Xor),
        "shl" => bin(BinOp::Shl),
        "ashr" => bin(BinOp::AShr),
        "lshr" => bin(BinOp::LShr),
        "fadd" => bin(BinOp::FAdd),
        "fsub" => bin(BinOp::FSub),
        "fmul" => bin(BinOp::FMul),
        "fdiv" => bin(BinOp::FDiv),
        "icmp" => {
            let mut words = rest.splitn(3, ' ');
            let pred = match words.next().unwrap_or("") {
                "eq" => IntPred::Eq,
                "ne" => IntPred::Ne,
                "slt" => IntPred::Slt,
                "sle" => IntPred::Sle,
                "sgt" => IntPred::Sgt,
                "sge" => IntPred::Sge,
                p => return Err(perr(ln, format!("unknown icmp predicate '{p}'"))),
            };
            let ty = parse_ty(ln, words.next().unwrap_or(""))?;
            let parts = split_args(words.next().unwrap_or(""));
            if parts.len() != 2 {
                return Err(perr(ln, "icmp needs two operands"));
            }
            Ok(Op::Icmp {
                pred,
                ty,
                lhs: ctx.value(ln, parts[0])?,
                rhs: ctx.value(ln, parts[1])?,
            })
        }
        "fcmp" => {
            let (pred_str, args) = rest.split_once(' ').ok_or_else(|| perr(ln, "bad fcmp"))?;
            let pred = match pred_str {
                "oeq" => FloatPred::Oeq,
                "one" => FloatPred::One,
                "olt" => FloatPred::Olt,
                "ole" => FloatPred::Ole,
                "ogt" => FloatPred::Ogt,
                "oge" => FloatPred::Oge,
                p => return Err(perr(ln, format!("unknown fcmp predicate '{p}'"))),
            };
            let parts = split_args(args);
            if parts.len() != 2 {
                return Err(perr(ln, "fcmp needs two operands"));
            }
            Ok(Op::Fcmp {
                pred,
                lhs: ctx.value(ln, parts[0])?,
                rhs: ctx.value(ln, parts[1])?,
            })
        }
        "select" => {
            let (ty_str, args) = rest.split_once(' ').ok_or_else(|| perr(ln, "bad select"))?;
            let ty = parse_ty(ln, ty_str)?;
            let parts = split_args(args);
            if parts.len() != 3 {
                return Err(perr(ln, "select needs three operands"));
            }
            Ok(Op::Select {
                ty,
                cond: ctx.value(ln, parts[0])?,
                tval: ctx.value(ln, parts[1])?,
                fval: ctx.value(ln, parts[2])?,
            })
        }
        "trunc" | "zext" | "sext" | "sitofp" | "fptosi" => {
            let kind = match mnemonic {
                "trunc" => CastKind::Trunc,
                "zext" => CastKind::ZExt,
                "sext" => CastKind::SExt,
                "sitofp" => CastKind::SiToFp,
                _ => CastKind::FpToSi,
            };
            let (val_str, to_str) = rest
                .split_once(" to ")
                .ok_or_else(|| perr(ln, "cast expects 'to'"))?;
            Ok(Op::Cast {
                kind,
                to: parse_ty(ln, to_str)?,
                val: ctx.value(ln, val_str)?,
            })
        }
        "alloca" => {
            let (ty_str, count_str) = rest
                .split_once(" x ")
                .ok_or_else(|| perr(ln, "alloca expects 'ty x count'"))?;
            let count: u32 = count_str
                .trim()
                .parse()
                .map_err(|_| perr(ln, "bad alloca count"))?;
            Ok(Op::Alloca {
                ty: parse_ty(ln, ty_str)?,
                count,
            })
        }
        "load" => {
            let parts = split_args(rest);
            if parts.len() != 2 {
                return Err(perr(ln, "load expects 'ty, ptr'"));
            }
            Ok(Op::Load {
                ty: parse_ty(ln, parts[0])?,
                ptr: ctx.value(ln, parts[1])?,
            })
        }
        "store" => {
            let (ty_str, args) = rest.split_once(' ').ok_or_else(|| perr(ln, "bad store"))?;
            let parts = split_args(args);
            if parts.len() != 2 {
                return Err(perr(ln, "store expects 'ty val, ptr'"));
            }
            Ok(Op::Store {
                ty: parse_ty(ln, ty_str)?,
                val: ctx.value(ln, parts[0])?,
                ptr: ctx.value(ln, parts[1])?,
            })
        }
        "gep" => {
            let parts = split_args(rest);
            if parts.len() != 3 {
                return Err(perr(ln, "gep expects 'ty, ptr, index'"));
            }
            Ok(Op::Gep {
                elem_ty: parse_ty(ln, parts[0])?,
                ptr: ctx.value(ln, parts[1])?,
                index: ctx.value(ln, parts[2])?,
            })
        }
        "call" => {
            // @name(args) -> ty
            let open = rest.find('(').ok_or_else(|| perr(ln, "bad call"))?;
            let name = rest[..open]
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| perr(ln, "bad callee"))?;
            let close = rest.rfind(')').ok_or_else(|| perr(ln, "bad call"))?;
            let args: Vec<Value> = split_args(&rest[open + 1..close])
                .into_iter()
                .map(|a| ctx.value(ln, a))
                .collect::<Result<_, _>>()?;
            let ret_str = rest[close + 1..]
                .trim()
                .strip_prefix("->")
                .ok_or_else(|| perr(ln, "call expects '-> ty'"))?;
            let callee = *ctx
                .funcs
                .get(name)
                .ok_or_else(|| perr(ln, format!("unknown callee '{name}'")))?;
            let _ = module; // callee resolution already done via ctx
            Ok(Op::Call {
                callee,
                args,
                ret_ty: parse_ty(ln, ret_str)?,
            })
        }
        "phi" => {
            let (ty_str, args) = rest.split_once(' ').ok_or_else(|| perr(ln, "bad phi"))?;
            let ty = parse_ty(ln, ty_str)?;
            let mut incomings = Vec::new();
            for part in split_args(args) {
                let inner = part.trim().trim_start_matches('[').trim_end_matches(']');
                let (b, v) = inner
                    .split_once(':')
                    .ok_or_else(|| perr(ln, "bad phi incoming"))?;
                incomings.push((ctx.block(ln, b)?, ctx.value(ln, v)?));
            }
            Ok(Op::Phi { ty, incomings })
        }
        "memcpy" | "memset" => {
            let (ty_str, args) = rest.split_once(' ').ok_or_else(|| perr(ln, "bad mem op"))?;
            let elem_ty = parse_ty(ln, ty_str)?;
            let parts = split_args(args);
            if parts.len() != 3 {
                return Err(perr(ln, "mem op expects three operands"));
            }
            if mnemonic == "memcpy" {
                Ok(Op::MemCpy {
                    elem_ty,
                    dst: ctx.value(ln, parts[0])?,
                    src: ctx.value(ln, parts[1])?,
                    len: ctx.value(ln, parts[2])?,
                })
            } else {
                Ok(Op::MemSet {
                    elem_ty,
                    dst: ctx.value(ln, parts[0])?,
                    val: ctx.value(ln, parts[1])?,
                    len: ctx.value(ln, parts[2])?,
                })
            }
        }
        "br" => Ok(Op::Br {
            target: ctx.block(ln, rest)?,
        }),
        "condbr" => {
            let parts = split_args(rest);
            if parts.len() != 3 {
                return Err(perr(ln, "condbr expects 'cond, bb, bb'"));
            }
            Ok(Op::CondBr {
                cond: ctx.value(ln, parts[0])?,
                then_bb: ctx.block(ln, parts[1])?,
                else_bb: ctx.block(ln, parts[2])?,
            })
        }
        "ret" => {
            if rest.is_empty() {
                Ok(Op::Ret { val: None })
            } else {
                Ok(Op::Ret {
                    val: Some(ctx.value(ln, rest)?),
                })
            }
        }
        "unreachable" => Ok(Op::Unreachable),
        other => Err(perr(ln, format!("unknown instruction '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    const LOOP_PROGRAM: &str = r#"
module "loopy"
global @data : i64 x 4 mutable internal = [1:i64, 2:i64, 3:i64, 4:i64]
declare @print_i64(i64) -> void

fn @sum(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %0 = phi i64 [bb0: 0:i64], [bb2: %3]
  %1 = phi i64 [bb0: 0:i64], [bb2: %4]
  %2 = icmp slt i64 %0, %arg0
  condbr %2, bb2, bb3
bb2:
  %p = gep i64, @data, %0
  %v = load i64, %p
  %3 = add i64 %0, 1:i64
  %4 = add i64 %1, %v
  br bb1
bb3:
  ret %1
}

fn @main() -> i64 internal {
bb0:
  %0 = call @sum(4:i64) -> i64
  call @print_i64(%0) -> void
  ret %0
}
"#;

    #[test]
    fn parses_and_verifies_loop_program() {
        let m = parse_module(LOOP_PROGRAM).expect("parses");
        verify_module(&m).expect("verifies");
        assert_eq!(m.name, "loopy");
        assert!(m.func_by_name("sum").is_some());
        assert!(m.global_by_name("data").is_some());
    }

    #[test]
    fn print_parse_round_trip_is_stable() {
        let m = parse_module(LOOP_PROGRAM).expect("parses");
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("reparses");
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn error_reports_line() {
        let bad = "module \"m\"\nfn @f() -> i64 internal {\nbb0:\n  frob i64 1:i64, 2:i64\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frob"));
    }

    #[test]
    fn unknown_value_rejected() {
        let bad = "module \"m\"\nfn @f() -> i64 internal {\nbb0:\n  ret %9\n}\n";
        assert!(parse_module(bad).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "module \"m\"\n; a comment\n\nfn @f() -> void internal {\nbb0: ; entry\n  ret\n}\n";
        let m = parse_module(text).expect("parses");
        verify_module(&m).expect("verifies");
    }
}
