//! Ergonomic construction of modules and functions.

use crate::inst::{BinOp, CastKind, FloatPred, InstId, IntPred, Op};
use crate::module::{BlockId, FuncId, Function, Global, GlobalId, Linkage, Module};
use crate::types::Ty;
use crate::value::{Const, Value};

/// Builds a [`Module`] incrementally.
///
/// # Example
///
/// ```
/// use posetrl_ir::builder::ModuleBuilder;
/// use posetrl_ir::{Ty, Value};
///
/// let mut mb = ModuleBuilder::new("m");
/// let f = mb.begin_function("double", vec![Ty::I64], Ty::I64);
/// {
///     let mut fb = mb.func_builder(f);
///     let two = Value::i64(2);
///     let r = fb.mul(Ty::I64, Value::Arg(0), two);
///     fb.ret(Some(r));
/// }
/// let m = mb.finish();
/// assert_eq!(m.num_insts(), 2);
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Adds a function with a body and returns its id. Use
    /// [`ModuleBuilder::func_builder`] to populate it.
    pub fn begin_function(&mut self, name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> FuncId {
        self.module.add_function(Function::new(name, params, ret))
    }

    /// Adds an external declaration.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Ty,
    ) -> FuncId {
        self.module
            .add_function(Function::new_decl(name, params, ret))
    }

    /// Adds a global variable.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Ty,
        count: u32,
        init: Vec<Const>,
        mutable: bool,
    ) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            ty,
            count,
            init,
            mutable,
            linkage: Linkage::Internal,
        })
    }

    /// Returns a cursor positioned at the entry block of `func`.
    pub fn func_builder(&mut self, func: FuncId) -> FunctionBuilder<'_> {
        let f = self
            .module
            .func_mut(func)
            .expect("building a removed function");
        let entry = f.entry;
        FunctionBuilder {
            func: f,
            cur: entry,
        }
    }

    /// Direct access to the module under construction.
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// A cursor that appends instructions to the current block of a function.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    func: &'a mut Function,
    cur: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// Wraps an existing function, positioned at its entry block.
    pub fn on(func: &'a mut Function) -> FunctionBuilder<'a> {
        let entry = func.entry;
        FunctionBuilder { func, cur: entry }
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Creates a new block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Switches the append cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Underlying function.
    pub fn func(&mut self) -> &mut Function {
        self.func
    }

    fn push(&mut self, op: Op) -> Value {
        let id = self.func.append_inst(self.cur, op);
        Value::Inst(id)
    }

    fn push_void(&mut self, op: Op) -> InstId {
        self.func.append_inst(self.cur, op)
    }

    // ---- arithmetic ---------------------------------------------------------

    /// Appends a binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Value, rhs: Value) -> Value {
        self.push(Op::Bin { op, ty, lhs, rhs })
    }

    /// Appends an integer/float `add`/`fadd` according to `ty`.
    pub fn add(&mut self, ty: Ty, lhs: Value, rhs: Value) -> Value {
        let op = if ty.is_float() {
            BinOp::FAdd
        } else {
            BinOp::Add
        };
        self.bin(op, ty, lhs, rhs)
    }

    /// Appends a `sub`/`fsub` according to `ty`.
    pub fn sub(&mut self, ty: Ty, lhs: Value, rhs: Value) -> Value {
        let op = if ty.is_float() {
            BinOp::FSub
        } else {
            BinOp::Sub
        };
        self.bin(op, ty, lhs, rhs)
    }

    /// Appends a `mul`/`fmul` according to `ty`.
    pub fn mul(&mut self, ty: Ty, lhs: Value, rhs: Value) -> Value {
        let op = if ty.is_float() {
            BinOp::FMul
        } else {
            BinOp::Mul
        };
        self.bin(op, ty, lhs, rhs)
    }

    /// Appends an integer comparison.
    pub fn icmp(&mut self, pred: IntPred, ty: Ty, lhs: Value, rhs: Value) -> Value {
        self.push(Op::Icmp { pred, ty, lhs, rhs })
    }

    /// Appends a float comparison.
    pub fn fcmp(&mut self, pred: FloatPred, lhs: Value, rhs: Value) -> Value {
        self.push(Op::Fcmp { pred, lhs, rhs })
    }

    /// Appends a select.
    pub fn select(&mut self, ty: Ty, cond: Value, tval: Value, fval: Value) -> Value {
        self.push(Op::Select {
            ty,
            cond,
            tval,
            fval,
        })
    }

    /// Appends a cast.
    pub fn cast(&mut self, kind: CastKind, to: Ty, val: Value) -> Value {
        self.push(Op::Cast { kind, to, val })
    }

    // ---- memory -------------------------------------------------------------

    /// Appends an alloca of `count` elements of `ty`.
    pub fn alloca(&mut self, ty: Ty, count: u32) -> Value {
        self.push(Op::Alloca { ty, count })
    }

    /// Appends a typed load.
    pub fn load(&mut self, ty: Ty, ptr: Value) -> Value {
        self.push(Op::Load { ty, ptr })
    }

    /// Appends a typed store.
    pub fn store(&mut self, ty: Ty, val: Value, ptr: Value) -> InstId {
        self.push_void(Op::Store { ty, val, ptr })
    }

    /// Appends pointer arithmetic.
    pub fn gep(&mut self, elem_ty: Ty, ptr: Value, index: Value) -> Value {
        self.push(Op::Gep {
            elem_ty,
            ptr,
            index,
        })
    }

    /// Appends a memcpy.
    pub fn memcpy(&mut self, elem_ty: Ty, dst: Value, src: Value, len: Value) -> InstId {
        self.push_void(Op::MemCpy {
            elem_ty,
            dst,
            src,
            len,
        })
    }

    /// Appends a memset.
    pub fn memset(&mut self, elem_ty: Ty, dst: Value, val: Value, len: Value) -> InstId {
        self.push_void(Op::MemSet {
            elem_ty,
            dst,
            val,
            len,
        })
    }

    // ---- calls and control flow ----------------------------------------------

    /// Appends a direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret_ty: Ty) -> Value {
        self.push(Op::Call {
            callee,
            args,
            ret_ty,
        })
    }

    /// Appends a phi node. Usually placed at the top of a block: prefer
    /// calling this right after [`FunctionBuilder::switch_to`].
    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, Value)>) -> Value {
        self.push(Op::Phi { ty, incomings })
    }

    /// Appends an unconditional branch and leaves the cursor unchanged.
    pub fn br(&mut self, target: BlockId) -> InstId {
        self.push_void(Op::Br { target })
    }

    /// Appends a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.push_void(Op::CondBr {
            cond,
            then_bb,
            else_bb,
        })
    }

    /// Appends a return.
    pub fn ret(&mut self, val: Option<Value>) -> InstId {
        self.push_void(Op::Ret { val })
    }

    /// Appends an unreachable terminator.
    pub fn unreachable(&mut self) -> InstId {
        self.push_void(Op::Unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::verify_module;

    #[test]
    fn loop_with_phi_verifies() {
        // sum = 0; for i in 0..n { sum += i }; return sum
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("sum_to_n", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(f);
            let header = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            let entry = fb.current_block();
            fb.br(header);

            fb.switch_to(header);
            let i = fb.phi(Ty::I64, vec![(entry, Value::i64(0))]);
            let sum = fb.phi(Ty::I64, vec![(entry, Value::i64(0))]);
            let cond = fb.icmp(IntPred::Slt, Ty::I64, i, Value::Arg(0));
            fb.cond_br(cond, body, exit);

            fb.switch_to(body);
            let sum2 = fb.add(Ty::I64, sum, i);
            let i2 = fb.add(Ty::I64, i, Value::i64(1));
            fb.br(header);

            // patch the phis with the back edge
            let f = fb.func();
            let iid = i.as_inst().unwrap();
            let sid = sum.as_inst().unwrap();
            if let Op::Phi { incomings, .. } = &mut f.inst_mut(iid).unwrap().op {
                incomings.push((body, i2));
            }
            if let Op::Phi { incomings, .. } = &mut f.inst_mut(sid).unwrap().op {
                incomings.push((body, sum2));
            }

            fb.switch_to(exit);
            fb.ret(Some(sum));
        }
        let m = mb.finish();
        verify_module(&m).expect("loop module verifies");
    }

    #[test]
    fn global_and_call() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.add_global("data", Ty::I64, 4, vec![Const::int(Ty::I64, 7)], true);
        let callee = mb.begin_function("get", vec![], Ty::I64);
        {
            let mut fb = mb.func_builder(callee);
            let v = fb.load(Ty::I64, Value::Global(g));
            fb.ret(Some(v));
        }
        let main = mb.begin_function("main", vec![], Ty::I64);
        {
            let mut fb = mb.func_builder(main);
            let r = fb.call(callee, vec![], Ty::I64);
            fb.ret(Some(r));
        }
        let m = mb.finish();
        verify_module(&m).expect("module verifies");
        assert_eq!(m.num_insts(), 4);
    }
}
