//! Structural module hashing.
//!
//! [`module_hash`] is a **fold over per-function digests plus the
//! module-level header**: each function's chunk of the canonical printed
//! form (the exact bytes [`crate::printer::write_module`] emits for it) is
//! digested on its own into a [`FunctionHash`], and the module hash absorbs
//! the header digest followed by every function digest in `func_ids` order.
//! Because the chunk decomposition of the printed stream is unambiguous
//! (header lines are `module`/`global` lines; every chunk starts with a
//! blank line followed by `fn @`/`declare @`, and no body line can start a
//! chunk), the fold keeps the printer contract of the original streaming
//! hash:
//!
//! - stable across [`Clone`] and across processes (no addresses, no
//!   randomized state),
//! - equal **iff** the printed forms are equal (up to the ~2⁻¹²⁸ collision
//!   probability of the double-FNV digest),
//! - sensitive to every instruction, operand, CFG edge, attribute, linkage
//!   and global-variable change the printer can express.
//!
//! The per-function digests are what make change tracking cheap: after a
//! pass runs, `posetrl-opt` diffs the [`function_hashes`] table to learn
//! exactly which functions changed, and the incremental analysis manager
//! in `posetrl-analyze` re-embeds/re-lints/re-analyzes only those.
//!
//! Two *fingerprints* ride alongside the print-chunk hashes:
//! [`function_fingerprint`] and [`globals_fingerprint`] digest the raw
//! arena representation (slot indices, raw instruction ids, operand ids).
//! Analyses whose outputs mention arena ids — absint `FuncFacts` indexed
//! by `InstId`, lint locations carrying arena `BlockId`s, embeddings
//! accumulated in arena order — must be memoized under the fingerprint,
//! not the print hash: two functions can print identically yet lay out
//! their arenas differently, and a print-keyed memo would then replay
//! facts whose ids point at the wrong slots.

use crate::module::{Function, Module};
use crate::printer::{write_function_entry, write_module_header};
use std::fmt::{self, Write};

/// A 128-bit structural digest of a module's canonical printed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleHash(pub u128);

impl fmt::Display for ModuleHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 128-bit structural digest of one function's chunk of the canonical
/// printed form (leading blank line + declare line or body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionHash(pub u128);

impl fmt::Display for FunctionHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
// A second, independent 64-bit stream: different offset basis (digits of π)
// and a different odd multiplier, so a collision must defeat both.
const ALT_OFFSET: u64 = 0x2437_53a4_7a8e_a36b;
const ALT_PRIME: u64 = 0x0000_0100_0000_0a07;

/// A `fmt::Write` sink that folds every byte into two FNV-1a streams.
struct HashSink {
    a: u64,
    b: u64,
}

impl HashSink {
    fn new() -> HashSink {
        HashSink {
            a: FNV_OFFSET,
            b: ALT_OFFSET,
        }
    }

    fn fold_byte(&mut self, byte: u8) {
        self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ byte as u64).wrapping_mul(ALT_PRIME);
    }

    /// Absorbs a fixed-width 128-bit digest (big-endian bytes).
    fn fold_digest(&mut self, d: u128) {
        for byte in d.to_be_bytes() {
            self.fold_byte(byte);
        }
    }

    fn digest(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

impl Write for HashSink {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for byte in s.bytes() {
            self.fold_byte(byte);
        }
        Ok(())
    }
}

/// Digests an arbitrary string with the same double-FNV scheme the
/// structural hashes use. Consumers (the incremental analysis manager)
/// use this to derive composite memo keys from digests + debug forms.
pub fn digest_str(s: &str) -> u128 {
    let mut sink = HashSink::new();
    sink.write_str(s).expect("hash sink cannot fail");
    sink.digest()
}

/// Digests the module-level header (module line + globals) of the
/// canonical printed form.
pub fn module_header_hash(m: &Module) -> u128 {
    let mut sink = HashSink::new();
    write_module_header(&mut sink, m).expect("hash sink cannot fail");
    sink.digest()
}

/// Digests one function's chunk of the canonical printed form without
/// materializing the string.
pub fn function_hash(m: &Module, f: &Function) -> FunctionHash {
    let mut sink = HashSink::new();
    write_function_entry(&mut sink, m, f).expect("hash sink cannot fail");
    FunctionHash(sink.digest())
}

/// Per-function hash table in `func_ids` order: `(name, chunk digest)`.
///
/// This is the unit the pass manager diffs to emit change sets.
pub fn function_hashes(m: &Module) -> Vec<(String, FunctionHash)> {
    m.func_ids()
        .map(|fid| {
            let f = m.func(fid).unwrap();
            (f.name.clone(), function_hash(m, f))
        })
        .collect()
}

/// Recombines a header digest and per-function digests (in `func_ids`
/// order) into the module hash. `module_hash(m)` is exactly
/// `fold_module_hash(module_header_hash(m), function_hashes(m) digests)`.
pub fn fold_module_hash(header: u128, funcs: impl IntoIterator<Item = u128>) -> ModuleHash {
    let mut sink = HashSink::new();
    sink.fold_digest(header);
    for d in funcs {
        sink.fold_digest(d);
    }
    ModuleHash(sink.digest())
}

/// Computes the structural hash of `m` as a fold over the header digest
/// and each function's chunk digest, without materializing any string.
pub fn module_hash(m: &Module) -> ModuleHash {
    fold_module_hash(
        module_header_hash(m),
        m.func_ids()
            .map(|fid| function_hash(m, m.func(fid).unwrap()).0),
    )
}

/// Digests the raw arena representation of `f`: slot indices, raw
/// instruction ids, and operand ids exactly as stored.
///
/// Unlike [`function_hash`] this is **not** renumbering-invariant — that
/// is the point. Any analysis result that mentions arena ids (absint
/// `FuncFacts`, lint `SourceLoc`s, arena-order embedding accumulation)
/// must be keyed by this fingerprint so a memo hit is guaranteed to
/// replay ids that are valid for the module in hand.
pub fn function_fingerprint(m: &Module, f: &Function) -> u128 {
    let mut sink = HashSink::new();
    write!(
        sink,
        "{}\x1f{:?}\x1f{:?}\x1f{:?}\x1f{:?}\x1f{}\x1f{}",
        f.name, f.params, f.ret, f.linkage, f.attrs, f.is_decl, f.entry.0
    )
    .expect("hash sink cannot fail");
    for b in f.block_ids() {
        write!(sink, "|b{}", b.0).expect("hash sink cannot fail");
        for &id in &f.block(b).unwrap().insts {
            // Op's Debug form spells out raw Value::Inst/Global/Func ids.
            write!(sink, ";{}:{:?}", id.0, f.op(id)).expect("hash sink cannot fail");
        }
    }
    let _ = m; // globals referenced by id are covered by `globals_fingerprint`
    sink.digest()
}

/// Digests every global in arena-slot order (raw slot index + full
/// contents). Analyses that read globals by `GlobalId` (const-memory
/// lints, absint base-object bounds) key their memos by
/// `(function_fingerprint, globals_fingerprint)`.
pub fn globals_fingerprint(m: &Module) -> u128 {
    let mut sink = HashSink::new();
    for gid in m.global_ids() {
        write!(sink, "|g{}:{:?}", gid.0, m.global(gid).unwrap()).expect("hash sink cannot fail");
    }
    sink.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::Linkage;
    use crate::printer::{print_module, write_function_entry, write_module_header};
    use crate::types::Ty;
    use crate::value::{Const, Value};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.add_global("tbl", Ty::I64, 4, vec![Const::int(Ty::I64, 7)], true);
        let f = mb.begin_function("f", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(f);
            let x = fb.add(Ty::I64, Value::Arg(0), Value::i64(1));
            let y = fb.mul(Ty::I64, x, Value::i64(3));
            fb.ret(Some(y));
        }
        mb.finish()
    }

    fn two_function_module() -> Module {
        let mut mb = ModuleBuilder::new("m2");
        let f = mb.begin_function("f", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(f);
            let x = fb.add(Ty::I64, Value::Arg(0), Value::i64(1));
            fb.ret(Some(x));
        }
        let g = mb.begin_function("g", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(g);
            let x = fb.mul(Ty::I64, Value::Arg(0), Value::i64(2));
            fb.ret(Some(x));
        }
        mb.finish()
    }

    #[test]
    fn stable_across_clone() {
        let m = sample_module();
        assert_eq!(module_hash(&m), module_hash(&m.clone()));
    }

    #[test]
    fn fold_matches_printed_chunks() {
        // module_hash is the fold of the header digest and per-function
        // chunk digests, and those chunks concatenate to the printed form.
        let m = two_function_module();

        let mut header = String::new();
        write_module_header(&mut header, &m).unwrap();
        let mut rebuilt = header.clone();
        let mut func_digests = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid).unwrap();
            let mut chunk = String::new();
            write_function_entry(&mut chunk, &m, f).unwrap();
            rebuilt.push_str(&chunk);
            func_digests.push(function_hash(&m, f).0);
        }
        assert_eq!(rebuilt, print_module(&m), "chunks must tile the print");
        assert_eq!(
            module_hash(&m),
            fold_module_hash(module_header_hash(&m), func_digests)
        );
    }

    #[test]
    fn function_hashes_cover_all_functions() {
        let m = two_function_module();
        let table = function_hashes(&m);
        assert_eq!(
            table.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["f", "g"]
        );
        assert_ne!(table[0].1, table[1].1);
    }

    #[test]
    fn sensitive_to_instruction_change() {
        let m0 = sample_module();
        let mut m1 = m0.clone();
        let fid = m1.func_by_name("f").unwrap();
        let f = m1.func_mut(fid).unwrap();
        let entry = f.entry;
        let first = f.block(entry).unwrap().insts[0];
        f.replace_uses_in(first, Value::i64(1), Value::i64(2));
        assert_ne!(module_hash(&m0), module_hash(&m1));
        let fid0 = m0.func_by_name("f").unwrap();
        assert_ne!(
            function_hash(&m0, m0.func(fid0).unwrap()),
            function_hash(&m1, m1.func(fid).unwrap())
        );
    }

    #[test]
    fn sensitive_to_cfg_and_global_changes() {
        let m0 = sample_module();

        // adding an (empty-printable) block changes the CFG shape — but an
        // empty block prints a label, so the hash must move
        let mut m1 = m0.clone();
        let fid = m1.func_by_name("f").unwrap();
        m1.func_mut(fid).unwrap().add_block();
        assert_ne!(module_hash(&m0), module_hash(&m1));

        // global initializer change
        let mut m2 = m0.clone();
        let gid = m2.global_by_name("tbl").unwrap();
        m2.global_mut(gid).unwrap().init[0] = Const::int(Ty::I64, 8);
        assert_ne!(module_hash(&m0), module_hash(&m2));
        assert_ne!(globals_fingerprint(&m0), globals_fingerprint(&m2));
        // ... but the function chunk is untouched
        let fid0 = m0.func_by_name("f").unwrap();
        assert_eq!(
            function_hash(&m0, m0.func(fid0).unwrap()),
            function_hash(&m2, m2.func(fid0).unwrap())
        );

        // linkage change
        let mut m3 = m0.clone();
        let fid = m3.func_by_name("f").unwrap();
        m3.func_mut(fid).unwrap().linkage = Linkage::External;
        assert_ne!(module_hash(&m0), module_hash(&m3));
    }

    #[test]
    fn module_name_participates() {
        let mut m1 = sample_module();
        m1.name = "other".into();
        assert_ne!(module_hash(&sample_module()), module_hash(&m1));
    }

    #[test]
    fn fingerprint_tracks_arena_layout_where_print_hash_cannot() {
        let m = sample_module();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid).unwrap();
        // fingerprint is self-consistent
        assert_eq!(function_fingerprint(&m, f), function_fingerprint(&m, f));
        // and moves when an instruction operand changes
        let mut m1 = m.clone();
        let f1 = m1.func_mut(fid).unwrap();
        let entry = f1.entry;
        let first = f1.block(entry).unwrap().insts[0];
        f1.replace_uses_in(first, Value::i64(1), Value::i64(2));
        assert_ne!(
            function_fingerprint(&m, f),
            function_fingerprint(&m1, m1.func(fid).unwrap())
        );
    }
}
