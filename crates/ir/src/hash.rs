//! Structural module hashing.
//!
//! [`module_hash`] digests the canonical textual form of a module (the
//! exact byte stream [`crate::printer::print_module`] produces) into a
//! 128-bit [`ModuleHash`]. Because the printer renumbers values and blocks
//! canonically, the hash is a *structural* identity:
//!
//! - stable across [`Clone`] and across processes (no addresses, no
//!   randomized state),
//! - equal **iff** the printed forms are equal (up to the ~2⁻¹²⁸ collision
//!   probability of the double-FNV digest),
//! - sensitive to every instruction, operand, CFG edge, attribute, linkage
//!   and global-variable change the printer can express.
//!
//! The evaluation cache in `posetrl` keys memoized embeddings, size/MCA
//! measurements and post-pass module states by this hash, so its
//! printer-equality contract is what makes cached and uncached runs
//! bit-identical (see DESIGN.md).

use crate::module::Module;
use crate::printer::write_module;
use std::fmt::{self, Write};

/// A 128-bit structural digest of a module's canonical printed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleHash(pub u128);

impl fmt::Display for ModuleHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
// A second, independent 64-bit stream: different offset basis (digits of π)
// and a different odd multiplier, so a collision must defeat both.
const ALT_OFFSET: u64 = 0x2437_53a4_7a8e_a36b;
const ALT_PRIME: u64 = 0x0000_0100_0000_0a07;

/// A `fmt::Write` sink that folds every byte into two FNV-1a streams.
struct HashSink {
    a: u64,
    b: u64,
}

impl Write for HashSink {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for byte in s.bytes() {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(ALT_PRIME);
        }
        Ok(())
    }
}

/// Computes the structural hash of `m` without materializing the printed
/// string.
pub fn module_hash(m: &Module) -> ModuleHash {
    let mut sink = HashSink {
        a: FNV_OFFSET,
        b: ALT_OFFSET,
    };
    write_module(&mut sink, m).expect("hash sink cannot fail");
    ModuleHash(((sink.a as u128) << 64) | sink.b as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::Linkage;
    use crate::printer::print_module;
    use crate::types::Ty;
    use crate::value::{Const, Value};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.add_global("tbl", Ty::I64, 4, vec![Const::int(Ty::I64, 7)], true);
        let f = mb.begin_function("f", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(f);
            let x = fb.add(Ty::I64, Value::Arg(0), Value::i64(1));
            let y = fb.mul(Ty::I64, x, Value::i64(3));
            fb.ret(Some(y));
        }
        mb.finish()
    }

    #[test]
    fn stable_across_clone() {
        let m = sample_module();
        assert_eq!(module_hash(&m), module_hash(&m.clone()));
    }

    #[test]
    fn matches_printed_form() {
        // the digest is a pure function of the printed bytes
        let m = sample_module();
        let h1 = module_hash(&m);
        let text = print_module(&m);
        let mut sink = HashSink {
            a: FNV_OFFSET,
            b: ALT_OFFSET,
        };
        sink.write_str(&text).unwrap();
        assert_eq!(h1, ModuleHash(((sink.a as u128) << 64) | sink.b as u128));
    }

    #[test]
    fn sensitive_to_instruction_change() {
        let m0 = sample_module();
        let mut m1 = m0.clone();
        let fid = m1.func_by_name("f").unwrap();
        let f = m1.func_mut(fid).unwrap();
        let entry = f.entry;
        let first = f.block(entry).unwrap().insts[0];
        f.replace_uses_in(first, Value::i64(1), Value::i64(2));
        assert_ne!(module_hash(&m0), module_hash(&m1));
    }

    #[test]
    fn sensitive_to_cfg_and_global_changes() {
        let m0 = sample_module();

        // adding an (empty-printable) block changes the CFG shape — but an
        // empty block prints a label, so the hash must move
        let mut m1 = m0.clone();
        let fid = m1.func_by_name("f").unwrap();
        m1.func_mut(fid).unwrap().add_block();
        assert_ne!(module_hash(&m0), module_hash(&m1));

        // global initializer change
        let mut m2 = m0.clone();
        let gid = m2.global_by_name("tbl").unwrap();
        m2.global_mut(gid).unwrap().init[0] = Const::int(Ty::I64, 8);
        assert_ne!(module_hash(&m0), module_hash(&m2));

        // linkage change
        let mut m3 = m0.clone();
        let fid = m3.func_by_name("f").unwrap();
        m3.func_mut(fid).unwrap().linkage = Linkage::External;
        assert_ne!(module_hash(&m0), module_hash(&m3));
    }

    #[test]
    fn module_name_participates() {
        let mut m1 = sample_module();
        m1.name = "other".into();
        assert_ne!(module_hash(&sample_module()), module_hash(&m1));
    }
}
