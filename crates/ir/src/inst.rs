//! Instructions and opcodes.

use crate::module::{BlockId, FuncId};
use crate::types::Ty;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of an instruction within its function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Integer/float binary arithmetic opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    AShr,
    LShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Returns `true` for floating point opcodes.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Returns `true` if the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Returns `true` if the operation is associative (exact for integers;
    /// floats are treated as non-associative).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Returns `true` if the operation can trap at runtime (division by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::SRem)
    }

    /// Canonical textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }

    /// All binary opcodes (for vocabulary construction and fuzzing).
    pub const ALL: [BinOp; 15] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::SDiv,
        BinOp::SRem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::AShr,
        BinOp::LShr,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
    ];
}

/// Integer comparison predicates (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl IntPred {
    /// The predicate with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> IntPred {
        match self {
            IntPred::Eq => IntPred::Eq,
            IntPred::Ne => IntPred::Ne,
            IntPred::Slt => IntPred::Sgt,
            IntPred::Sle => IntPred::Sge,
            IntPred::Sgt => IntPred::Slt,
            IntPred::Sge => IntPred::Sle,
        }
    }

    /// The logical negation of the predicate.
    pub fn inverted(self) -> IntPred {
        match self {
            IntPred::Eq => IntPred::Ne,
            IntPred::Ne => IntPred::Eq,
            IntPred::Slt => IntPred::Sge,
            IntPred::Sle => IntPred::Sgt,
            IntPred::Sgt => IntPred::Sle,
            IntPred::Sge => IntPred::Slt,
        }
    }

    /// Evaluates the predicate on two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            IntPred::Eq => a == b,
            IntPred::Ne => a != b,
            IntPred::Slt => a < b,
            IntPred::Sle => a <= b,
            IntPred::Sgt => a > b,
            IntPred::Sge => a >= b,
        }
    }

    /// Canonical textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntPred::Eq => "eq",
            IntPred::Ne => "ne",
            IntPred::Slt => "slt",
            IntPred::Sle => "sle",
            IntPred::Sgt => "sgt",
            IntPred::Sge => "sge",
        }
    }
}

/// Floating-point comparison predicates (ordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FloatPred {
    /// Evaluates the predicate on two floats (ordered: false on NaN).
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FloatPred::Oeq => a == b,
            FloatPred::One => a != b && !a.is_nan() && !b.is_nan(),
            FloatPred::Olt => a < b,
            FloatPred::Ole => a <= b,
            FloatPred::Ogt => a > b,
            FloatPred::Oge => a >= b,
        }
    }

    /// Canonical textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatPred::Oeq => "oeq",
            FloatPred::One => "one",
            FloatPred::Olt => "olt",
            FloatPred::Ole => "ole",
            FloatPred::Ogt => "ogt",
            FloatPred::Oge => "oge",
        }
    }
}

/// Cast opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CastKind {
    /// Integer truncation to a narrower type.
    Trunc,
    /// Zero extension to a wider integer type.
    ZExt,
    /// Sign extension to a wider integer type.
    SExt,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (round toward zero).
    FpToSi,
}

impl CastKind {
    /// Canonical textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Trunc => "trunc",
            CastKind::ZExt => "zext",
            CastKind::SExt => "sext",
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
        }
    }
}

/// The operation performed by an instruction.
///
/// # Undef and trap semantics
///
/// These rules are what the reference interpreter executes and what the
/// symbolic translation validator (`posetrl-analyze::validate`) proves
/// refinement against — an optimization may replace undef with any value
/// and may remove traps, but must never introduce either. Per opcode:
///
/// - `Bin`: `sdiv`/`srem` **trap** on a zero or undef divisor or an
///   undef dividend; every other binop propagates undef (any undef
///   operand makes the result undef) and never traps. Integer
///   arithmetic wraps (two's complement, no overflow UB).
/// - `Icmp`: an undef operand makes the `i1` result undef; operands of
///   differing widths compare as sign-extended `i64`s. Pointers compare
///   by a stable per-object ordinal, never trap.
/// - `Fcmp`: undef propagates to the result; never traps.
/// - `Select`: an undef `cond` **traps**; otherwise the chosen operand's
///   (value, undef) pair is passed through unchanged.
/// - `Cast`: undef flows through every cast kind; never traps
///   (`fptosi` saturates at the `i64` bounds).
/// - `Alloca`: fresh cells are **undef** until stored; never traps.
/// - `Load`/`Store`: out-of-bounds or type-mismatched access **traps**,
///   as does a store through a read-only (immutable global) pointer;
///   loading an undef cell yields undef.
/// - `Gep`: an undef base pointer or undef index **traps**; offsets are
///   not bounds-checked until dereferenced.
/// - `Call`: refines like its callee; external calls are observable
///   trace events (undef arguments are recorded as undef).
/// - `Phi`: a missing incoming edge **traps** (verifier-rejected, but
///   dynamically a type error); otherwise passes the chosen pair.
/// - `MemCpy`/`MemSet`: negative or out-of-bounds ranges **trap**;
///   copying undef cells preserves their undef-ness.
/// - `CondBr`: branching on an undef condition **traps** (this is where
///   deferred undef becomes UB).
/// - `Ret`: returning undef is defined and observable as undef.
/// - `Unreachable`: executing it **traps** (immediate UB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Binary arithmetic: `lhs op rhs`, both of type `ty`, result `ty`.
    Bin {
        op: BinOp,
        ty: Ty,
        lhs: Value,
        rhs: Value,
    },
    /// Integer comparison over operands of type `ty`, result `i1`.
    Icmp {
        pred: IntPred,
        ty: Ty,
        lhs: Value,
        rhs: Value,
    },
    /// Float comparison, result `i1`.
    Fcmp {
        pred: FloatPred,
        lhs: Value,
        rhs: Value,
    },
    /// `cond ? tval : fval`, result `ty`.
    Select {
        ty: Ty,
        cond: Value,
        tval: Value,
        fval: Value,
    },
    /// Type conversion of `val` to `to`.
    Cast { kind: CastKind, to: Ty, val: Value },
    /// Stack slot of `count` elements of `ty`; result `ptr`.
    Alloca { ty: Ty, count: u32 },
    /// Load a `ty` from `ptr`.
    Load { ty: Ty, ptr: Value },
    /// Store `val` (of type `ty`) to `ptr`. No result.
    Store { ty: Ty, val: Value, ptr: Value },
    /// Pointer arithmetic: `ptr + index` elements of `elem_ty`; result `ptr`.
    Gep {
        elem_ty: Ty,
        ptr: Value,
        index: Value,
    },
    /// Direct call; `ret_ty` is the callee's return type.
    Call {
        callee: FuncId,
        args: Vec<Value>,
        ret_ty: Ty,
    },
    /// SSA phi node merging `incomings` values on entry; result `ty`.
    Phi {
        ty: Ty,
        incomings: Vec<(BlockId, Value)>,
    },
    /// Copy `len` elements of `elem_ty` from `src` to `dst`. No result.
    MemCpy {
        elem_ty: Ty,
        dst: Value,
        src: Value,
        len: Value,
    },
    /// Set `len` elements of `elem_ty` at `dst` to `val`. No result.
    MemSet {
        elem_ty: Ty,
        dst: Value,
        val: Value,
        len: Value,
    },
    /// Unconditional branch. Terminator.
    Br { target: BlockId },
    /// Conditional branch on an `i1`. Terminator.
    CondBr {
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return. Terminator.
    Ret { val: Option<Value> },
    /// Unreachable point. Terminator.
    Unreachable,
}

impl Op {
    /// Returns `true` if this operation terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Op::Br { .. } | Op::CondBr { .. } | Op::Ret { .. } | Op::Unreachable
        )
    }

    /// The result type of the instruction (`Void` if it produces no value).
    pub fn result_ty(&self) -> Ty {
        match self {
            Op::Bin { ty, .. } => *ty,
            Op::Icmp { .. } | Op::Fcmp { .. } => Ty::I1,
            Op::Select { ty, .. } => *ty,
            Op::Cast { to, .. } => *to,
            Op::Alloca { .. } | Op::Gep { .. } => Ty::Ptr,
            Op::Load { ty, .. } => *ty,
            Op::Call { ret_ty, .. } => *ret_ty,
            Op::Phi { ty, .. } => *ty,
            Op::Store { .. }
            | Op::MemCpy { .. }
            | Op::MemSet { .. }
            | Op::Br { .. }
            | Op::CondBr { .. }
            | Op::Ret { .. }
            | Op::Unreachable => Ty::Void,
        }
    }

    /// Returns `true` if the instruction has no side effects and its result
    /// may be removed when unused. Calls are conservatively impure here;
    /// pass-level logic refines that using function attributes.
    pub fn is_pure(&self) -> bool {
        match self {
            Op::Bin { op, .. } => !op.can_trap(),
            Op::Icmp { .. }
            | Op::Fcmp { .. }
            | Op::Select { .. }
            | Op::Cast { .. }
            | Op::Gep { .. }
            | Op::Phi { .. } => true,
            // Alloca has no observable side effect but must not be duplicated
            // or hoisted casually; it is still removable when unused.
            Op::Alloca { .. } => true,
            _ => false,
        }
    }

    /// Returns `true` if the instruction writes memory or performs I/O
    /// (conservatively true for calls).
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::MemCpy { .. } | Op::MemSet { .. } | Op::Call { .. }
        )
    }

    /// Returns `true` if the instruction reads memory (conservatively true
    /// for calls).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::MemCpy { .. } | Op::Call { .. })
    }

    /// Iterates over the value operands of the instruction.
    pub fn operands(&self) -> Vec<Value> {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Icmp { lhs, rhs, .. } | Op::Fcmp { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            Op::Select {
                cond, tval, fval, ..
            } => vec![*cond, *tval, *fval],
            Op::Cast { val, .. } => vec![*val],
            Op::Alloca { .. } => vec![],
            Op::Load { ptr, .. } => vec![*ptr],
            Op::Store { val, ptr, .. } => vec![*val, *ptr],
            Op::Gep { ptr, index, .. } => vec![*ptr, *index],
            Op::Call { args, .. } => args.clone(),
            Op::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            Op::MemCpy { dst, src, len, .. } => vec![*dst, *src, *len],
            Op::MemSet { dst, val, len, .. } => vec![*dst, *val, *len],
            Op::Br { .. } => vec![],
            Op::CondBr { cond, .. } => vec![*cond],
            Op::Ret { val } => val.iter().copied().collect(),
            Op::Unreachable => vec![],
        }
    }

    /// Applies `f` to every value operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Op::Bin { lhs, rhs, .. } | Op::Icmp { lhs, rhs, .. } | Op::Fcmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::Select {
                cond, tval, fval, ..
            } => {
                *cond = f(*cond);
                *tval = f(*tval);
                *fval = f(*fval);
            }
            Op::Cast { val, .. } => *val = f(*val),
            Op::Alloca { .. } => {}
            Op::Load { ptr, .. } => *ptr = f(*ptr),
            Op::Store { val, ptr, .. } => {
                *val = f(*val);
                *ptr = f(*ptr);
            }
            Op::Gep { ptr, index, .. } => {
                *ptr = f(*ptr);
                *index = f(*index);
            }
            Op::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Op::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Op::MemCpy { dst, src, len, .. } => {
                *dst = f(*dst);
                *src = f(*src);
                *len = f(*len);
            }
            Op::MemSet { dst, val, len, .. } => {
                *dst = f(*dst);
                *val = f(*val);
                *len = f(*len);
            }
            Op::Br { .. } => {}
            Op::CondBr { cond, .. } => *cond = f(*cond),
            Op::Ret { val } => {
                if let Some(v) = val {
                    *v = f(*v);
                }
            }
            Op::Unreachable => {}
        }
    }

    /// The successor blocks of a terminator (empty for non-terminators).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br { target } => vec![*target],
            Op::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }

    /// Rewrites block references of a terminator or phi node.
    pub fn map_blocks(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Op::Br { target } => *target = f(*target),
            Op::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Op::Phi { incomings, .. } => {
                for (b, _) in incomings {
                    *b = f(*b);
                }
            }
            _ => {}
        }
    }

    /// A coarse opcode-kind name, used by embeddings and cost models.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Bin { op, .. } => op.mnemonic(),
            Op::Icmp { .. } => "icmp",
            Op::Fcmp { .. } => "fcmp",
            Op::Select { .. } => "select",
            Op::Cast { kind, .. } => kind.mnemonic(),
            Op::Alloca { .. } => "alloca",
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Gep { .. } => "gep",
            Op::Call { .. } => "call",
            Op::Phi { .. } => "phi",
            Op::MemCpy { .. } => "memcpy",
            Op::MemSet { .. } => "memset",
            Op::Br { .. } => "br",
            Op::CondBr { .. } => "condbr",
            Op::Ret { .. } => "ret",
            Op::Unreachable => "unreachable",
        }
    }
}

/// An instruction: an [`Op`] plus the block that currently owns it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Owning block (kept in sync by [`crate::module::Function`] mutators).
    pub block: BlockId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn terminator_classification() {
        assert!(Op::Ret { val: None }.is_terminator());
        assert!(Op::Unreachable.is_terminator());
        assert!(!Op::Alloca {
            ty: Ty::I64,
            count: 1
        }
        .is_terminator());
    }

    #[test]
    fn pred_swaps_and_inversions() {
        assert_eq!(IntPred::Slt.swapped(), IntPred::Sgt);
        assert_eq!(IntPred::Slt.inverted(), IntPred::Sge);
        assert!(IntPred::Sle.eval(3, 3));
        assert!(!IntPred::Sgt.eval(3, 3));
        assert!(FloatPred::Olt.eval(1.0, 2.0));
        assert!(!FloatPred::Oeq.eval(f64::NAN, f64::NAN));
        assert!(!FloatPred::One.eval(f64::NAN, 1.0));
    }

    #[test]
    fn operand_mapping_round_trip() {
        let mut op = Op::Select {
            ty: Ty::I64,
            cond: Value::Arg(0),
            tval: Value::i64(1),
            fval: Value::i64(2),
        };
        let before = op.operands();
        op.map_operands(|v| v);
        assert_eq!(before, op.operands());
        op.map_operands(|_| Value::i64(9));
        assert!(op.operands().iter().all(|v| v.const_int() == Some(9)));
    }

    #[test]
    fn purity() {
        assert!(Op::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            lhs: Value::i64(1),
            rhs: Value::i64(2)
        }
        .is_pure());
        assert!(!Op::Bin {
            op: BinOp::SDiv,
            ty: Ty::I64,
            lhs: Value::i64(1),
            rhs: Value::Arg(0)
        }
        .is_pure());
        assert!(!Op::Store {
            ty: Ty::I64,
            val: Value::i64(0),
            ptr: Value::Arg(0)
        }
        .is_pure());
    }

    #[test]
    fn successors_of_terminators() {
        let b = Op::CondBr {
            cond: Value::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Op::Ret { val: None }.successors().is_empty());
    }
}
