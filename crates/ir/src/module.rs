//! Modules, functions, blocks and globals.

use crate::inst::{Inst, InstId, Op};
use crate::types::Ty;
use crate::value::{Const, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Stable identifier of a global variable within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Stable identifier of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Symbol linkage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Visible outside the module; must be preserved.
    External,
    /// Module-private; may be removed or transformed freely.
    Internal,
}

/// Function attributes inferred by interprocedural passes.
///
/// These mirror the LLVM attributes that `-functionattrs`, `-attributor` and
/// friends infer, and are consulted by CSE/GVN/DCE to treat calls as pure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnAttrs {
    /// The function neither reads nor writes observable memory and performs
    /// no I/O: calls to it are pure expressions.
    pub readnone: bool,
    /// The function may read but does not write memory and performs no I/O.
    pub readonly: bool,
    /// The function does not call itself, directly or transitively.
    pub norecurse: bool,
    /// The function cannot unwind (always true in this IR; set by prune-eh).
    pub nounwind: bool,
    /// The function always returns (no infinite loops / unreachable exits).
    pub willreturn: bool,
}

/// A basic block: an ordered list of instruction ids, the last of which is a
/// terminator once the function is complete.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Ordered instruction ids.
    pub insts: Vec<InstId>,
}

/// A global variable: `count` elements of `ty` with optional initializer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Number of elements.
    pub count: u32,
    /// Initializer; when shorter than `count` the remainder is zero-filled.
    pub init: Vec<Const>,
    /// `false` marks a constant global.
    pub mutable: bool,
    /// Symbol linkage.
    pub linkage: Linkage,
}

impl Global {
    /// Footprint in bytes (element size × count).
    pub fn byte_size(&self) -> u64 {
        self.ty.byte_size() as u64 * self.count as u64
    }
}

/// A function: parameter/return types, attributes, and a CFG of blocks over
/// an instruction arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Symbol linkage.
    pub linkage: Linkage,
    /// `true` for external declarations without a body.
    pub is_decl: bool,
    /// Inferred attributes.
    pub attrs: FnAttrs,
    /// Entry block.
    pub entry: BlockId,
    insts: Vec<Option<Inst>>,
    blocks: Vec<Option<Block>>,
}

impl Function {
    /// Creates an empty function with a fresh entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            linkage: Linkage::Internal,
            is_decl: false,
            attrs: FnAttrs::default(),
            entry: BlockId(0),
            insts: Vec::new(),
            blocks: vec![Some(Block::default())],
        }
    }

    /// Creates an external declaration (no body).
    pub fn new_decl(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            linkage: Linkage::External,
            is_decl: true,
            attrs: FnAttrs::default(),
            entry: BlockId(0),
            insts: Vec::new(),
            blocks: Vec::new(),
        }
    }

    // ---- block management -------------------------------------------------

    /// Adds a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Some(Block::default()));
        id
    }

    /// Returns the block, if it still exists.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index()).and_then(|b| b.as_ref())
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> Option<&mut Block> {
        self.blocks.get_mut(id.index()).and_then(|b| b.as_mut())
    }

    /// Removes a block and all of its instructions.
    pub fn remove_block(&mut self, id: BlockId) {
        if let Some(Some(block)) = self.blocks.get(id.index()) {
            for iid in block.insts.clone() {
                self.insts[iid.index()] = None;
            }
        }
        if id.index() < self.blocks.len() {
            self.blocks[id.index()] = None;
        }
    }

    /// Iterates over live block ids in arena order (entry first by
    /// convention of the builder).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|_| BlockId(i as u32)))
    }

    /// Number of live blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    // ---- instruction management -------------------------------------------

    /// Returns the instruction, if it still exists.
    pub fn inst(&self, id: InstId) -> Option<&Inst> {
        self.insts.get(id.index()).and_then(|i| i.as_ref())
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> Option<&mut Inst> {
        self.insts.get_mut(id.index()).and_then(|i| i.as_mut())
    }

    /// The operation of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has been removed.
    pub fn op(&self, id: InstId) -> &Op {
        &self.inst(id).expect("instruction removed").op
    }

    /// Allocates an instruction in the arena without placing it in a block.
    fn alloc_inst(&mut self, op: Op, block: BlockId) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Some(Inst { op, block }));
        id
    }

    /// Appends an instruction to the end of `block`.
    pub fn append_inst(&mut self, block: BlockId, op: Op) -> InstId {
        let id = self.alloc_inst(op, block);
        self.blocks[block.index()]
            .as_mut()
            .expect("append to removed block")
            .insts
            .push(id);
        id
    }

    /// Inserts an instruction at `pos` within `block`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, op: Op) -> InstId {
        let id = self.alloc_inst(op, block);
        self.blocks[block.index()]
            .as_mut()
            .expect("insert into removed block")
            .insts
            .insert(pos, id);
        id
    }

    /// Inserts an instruction just before the terminator of `block`.
    pub fn insert_before_terminator(&mut self, block: BlockId, op: Op) -> InstId {
        let len = self.blocks[block.index()]
            .as_ref()
            .expect("removed block")
            .insts
            .len();
        let pos = len.saturating_sub(1);
        self.insert_inst(block, pos, op)
    }

    /// Removes `id` from its block and frees it in the arena.
    pub fn remove_inst(&mut self, id: InstId) {
        if let Some(inst) = self.insts.get(id.index()).and_then(|i| i.as_ref()) {
            let block = inst.block;
            if let Some(Some(b)) = self.blocks.get_mut(block.index()) {
                b.insts.retain(|&i| i != id);
            }
            self.insts[id.index()] = None;
        }
    }

    /// Moves an existing instruction to the end of `block` (before nothing;
    /// callers must maintain terminator position themselves).
    pub fn move_inst_to_end(&mut self, id: InstId, block: BlockId) {
        let old = self.inst(id).expect("moved instruction must exist").block;
        if let Some(Some(b)) = self.blocks.get_mut(old.index()) {
            b.insts.retain(|&i| i != id);
        }
        self.blocks[block.index()]
            .as_mut()
            .expect("removed block")
            .insts
            .push(id);
        self.insts[id.index()].as_mut().unwrap().block = block;
    }

    /// Moves an instruction to just before the terminator of `block`.
    pub fn move_inst_before_terminator(&mut self, id: InstId, block: BlockId) {
        let old = self.inst(id).expect("moved instruction must exist").block;
        if let Some(Some(b)) = self.blocks.get_mut(old.index()) {
            b.insts.retain(|&i| i != id);
        }
        let blk = self.blocks[block.index()].as_mut().expect("removed block");
        let pos = blk.insts.len().saturating_sub(1);
        blk.insts.insert(pos, id);
        self.insts[id.index()].as_mut().unwrap().block = block;
    }

    /// Iterates over live instruction ids across all blocks, in block order.
    pub fn inst_ids(&self) -> Vec<InstId> {
        let mut out = Vec::new();
        for bid in self.block_ids() {
            out.extend(self.block(bid).unwrap().insts.iter().copied());
        }
        out
    }

    /// Number of live instructions.
    pub fn num_insts(&self) -> usize {
        self.block_ids()
            .map(|b| self.block(b).unwrap().insts.len())
            .sum()
    }

    /// The terminator instruction of `block`, if the block is non-empty and
    /// properly terminated.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        let b = self.block(block)?;
        let last = *b.insts.last()?;
        if self.op(last).is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    /// Successor blocks of `block`.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        self.terminator(block)
            .map(|t| self.op(t).successors())
            .unwrap_or_default()
    }

    // ---- value rewriting ---------------------------------------------------

    /// Replaces every use of `from` with `to` in all instructions.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for inst in self.insts.iter_mut().flatten() {
            inst.op.map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Replaces uses of `from` with `to` within a single instruction.
    pub fn replace_uses_in(&mut self, id: InstId, from: Value, to: Value) {
        if let Some(inst) = self.inst_mut(id) {
            inst.op.map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Collects, for each instruction result, the instructions that use it.
    pub fn uses(&self) -> HashMap<InstId, Vec<InstId>> {
        let mut map: HashMap<InstId, Vec<InstId>> = HashMap::new();
        for id in self.inst_ids() {
            for v in self.op(id).operands() {
                if let Value::Inst(def) = v {
                    map.entry(def).or_default().push(id);
                }
            }
        }
        map
    }

    /// Predecessor map: for every live block, the blocks that branch to it.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut map: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in self.block_ids() {
            map.entry(b).or_default();
        }
        for b in self.block_ids() {
            for s in self.successors(b) {
                map.entry(s).or_default().push(b);
            }
        }
        map
    }

    /// Compacts phi nodes after `pred` stopped being a predecessor of
    /// `block`: removes matching incoming entries.
    pub fn remove_phi_incoming(&mut self, block: BlockId, pred: BlockId) {
        let ids: Vec<InstId> = match self.block(block) {
            Some(b) => b.insts.clone(),
            None => return,
        };
        for id in ids {
            if let Some(inst) = self.inst_mut(id) {
                if let Op::Phi { incomings, .. } = &mut inst.op {
                    incomings.retain(|(b, _)| *b != pred);
                }
            }
        }
    }

    /// Retargets phi incomings in `block` from `old_pred` to `new_pred`.
    pub fn retarget_phi_incoming(&mut self, block: BlockId, old_pred: BlockId, new_pred: BlockId) {
        let ids: Vec<InstId> = match self.block(block) {
            Some(b) => b.insts.clone(),
            None => return,
        };
        for id in ids {
            if let Some(inst) = self.inst_mut(id) {
                if let Op::Phi { incomings, .. } = &mut inst.op {
                    for (b, _) in incomings.iter_mut() {
                        if *b == old_pred {
                            *b = new_pred;
                        }
                    }
                }
            }
        }
    }
}

/// A translation unit: globals plus functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    /// Module name (used in diagnostics and experiment reports).
    pub name: String,
    functions: Vec<Option<Function>>,
    globals: Vec<Option<Global>>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Some(f));
        id
    }

    /// Adds a global variable, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Some(g));
        id
    }

    /// Returns the function, if it still exists.
    pub fn func(&self, id: FuncId) -> Option<&Function> {
        self.functions.get(id.index()).and_then(|f| f.as_ref())
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> Option<&mut Function> {
        self.functions.get_mut(id.index()).and_then(|f| f.as_mut())
    }

    /// Removes a function (used by globaldce).
    pub fn remove_function(&mut self, id: FuncId) {
        if id.index() < self.functions.len() {
            self.functions[id.index()] = None;
        }
    }

    /// Returns the global, if it still exists.
    pub fn global(&self, id: GlobalId) -> Option<&Global> {
        self.globals.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Mutable access to a global.
    pub fn global_mut(&mut self, id: GlobalId) -> Option<&mut Global> {
        self.globals.get_mut(id.index()).and_then(|g| g.as_mut())
    }

    /// Removes a global (used by globaldce).
    pub fn remove_global(&mut self, id: GlobalId) {
        if id.index() < self.globals.len() {
            self.globals[id.index()] = None;
        }
    }

    /// Iterates over live function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| FuncId(i as u32)))
    }

    /// Iterates over live global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        self.globals
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|_| GlobalId(i as u32)))
    }

    /// Looks up a function by symbol name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_ids()
            .find(|&id| self.func(id).unwrap().name == name)
    }

    /// Looks up a global by symbol name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_ids()
            .find(|&id| self.global(id).unwrap().name == name)
    }

    /// Total number of live instructions across all function bodies.
    pub fn num_insts(&self) -> usize {
        self.func_ids()
            .map(|f| self.func(f).unwrap().num_insts())
            .sum()
    }

    /// Applies `f` to every function body (skipping declarations).
    pub fn for_each_body(&mut self, mut f: impl FnMut(FuncId, &mut Function)) {
        let ids: Vec<FuncId> = self.func_ids().collect();
        for id in ids {
            let func = self.functions[id.index()].as_mut().unwrap();
            if !func.is_decl {
                f(id, func);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Op};
    use crate::value::Value;

    fn sample_function() -> Function {
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let entry = f.entry;
        let add = f.append_inst(
            entry,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
        );
        f.append_inst(
            entry,
            Op::Ret {
                val: Some(Value::Inst(add)),
            },
        );
        f
    }

    #[test]
    fn build_and_count() {
        let f = sample_function();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 2);
        assert!(f.terminator(f.entry).is_some());
    }

    #[test]
    fn remove_inst_unlinks_from_block() {
        let mut f = sample_function();
        let first = f.block(f.entry).unwrap().insts[0];
        f.remove_inst(first);
        assert_eq!(f.num_insts(), 1);
        assert!(f.inst(first).is_none());
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = sample_function();
        let add = f.block(f.entry).unwrap().insts[0];
        f.replace_all_uses(Value::Inst(add), Value::i64(42));
        let ret = f.terminator(f.entry).unwrap();
        assert_eq!(
            f.op(ret),
            &Op::Ret {
                val: Some(Value::i64(42))
            }
        );
    }

    #[test]
    fn predecessors_and_successors() {
        let mut f = Function::new("g", vec![], Ty::Void);
        let entry = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.append_inst(b1, Op::Ret { val: None });
        f.append_inst(b2, Op::Ret { val: None });
        assert_eq!(f.successors(entry), vec![b1, b2]);
        let preds = f.predecessors();
        assert_eq!(preds[&b1], vec![entry]);
        assert_eq!(preds[&b2], vec![entry]);
        assert!(preds[&entry].is_empty());
    }

    #[test]
    fn remove_block_frees_instructions() {
        let mut f = Function::new("g", vec![], Ty::Void);
        let b1 = f.add_block();
        let i = f.append_inst(b1, Op::Ret { val: None });
        f.remove_block(b1);
        assert!(f.inst(i).is_none());
        assert!(f.block(b1).is_none());
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new("m");
        let id = m.add_function(sample_function());
        assert_eq!(m.func_by_name("f"), Some(id));
        assert_eq!(m.func_by_name("missing"), None);
        m.remove_function(id);
        assert_eq!(m.func_by_name("f"), None);
    }

    #[test]
    fn phi_incoming_maintenance() {
        let mut f = Function::new("g", vec![], Ty::I64);
        let entry = f.entry;
        let b1 = f.add_block();
        let b2 = f.add_block();
        let merge = f.add_block();
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.append_inst(b1, Op::Br { target: merge });
        f.append_inst(b2, Op::Br { target: merge });
        let phi = f.append_inst(
            merge,
            Op::Phi {
                ty: Ty::I64,
                incomings: vec![(b1, Value::i64(1)), (b2, Value::i64(2))],
            },
        );
        f.append_inst(
            merge,
            Op::Ret {
                val: Some(Value::Inst(phi)),
            },
        );
        f.remove_phi_incoming(merge, b1);
        match f.op(phi) {
            Op::Phi { incomings, .. } => assert_eq!(incomings.len(), 1),
            _ => unreachable!(),
        }
        f.retarget_phi_incoming(merge, b2, b1);
        match f.op(phi) {
            Op::Phi { incomings, .. } => assert_eq!(incomings[0].0, b1),
            _ => unreachable!(),
        }
    }
}
