//! SSA values and constants.

use crate::inst::InstId;
use crate::module::{FuncId, GlobalId};
use crate::types::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A compile-time constant.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Const {
    /// An integer constant of the given integer type (value stored
    /// sign-extended to 64 bits, always within the type's range).
    Int { ty: Ty, val: i64 },
    /// A 64-bit float constant.
    Float(f64),
    /// The null pointer.
    Null,
    /// An undefined value of the given type.
    Undef(Ty),
}

impl Const {
    /// Creates an integer constant, wrapping `val` into the range of `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn int(ty: Ty, val: i64) -> Const {
        Const::Int {
            ty,
            val: ty.wrap(val),
        }
    }

    /// Creates a boolean (`i1`) constant.
    pub fn bool(b: bool) -> Const {
        Const::Int {
            ty: Ty::I1,
            val: b as i64,
        }
    }

    /// Creates a float constant.
    pub fn float(v: f64) -> Const {
        Const::Float(v)
    }

    /// The zero value of `ty` (null for pointers).
    pub fn zero(ty: Ty) -> Const {
        match ty {
            Ty::F64 => Const::Float(0.0),
            Ty::Ptr => Const::Null,
            Ty::Void => Const::Undef(Ty::Void),
            _ => Const::Int { ty, val: 0 },
        }
    }

    /// The type of this constant.
    pub fn ty(&self) -> Ty {
        match *self {
            Const::Int { ty, .. } => ty,
            Const::Float(_) => Ty::F64,
            Const::Null => Ty::Ptr,
            Const::Undef(ty) => ty,
        }
    }

    /// Integer payload if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Const::Int { val, .. } => Some(val),
            _ => None,
        }
    }

    /// Float payload if this is a float constant.
    pub fn as_float(&self) -> Option<f64> {
        match *self {
            Const::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if this constant is the integer or float zero / null.
    pub fn is_zero(&self) -> bool {
        match *self {
            Const::Int { val, .. } => val == 0,
            Const::Float(v) => v == 0.0,
            Const::Null => true,
            Const::Undef(_) => false,
        }
    }

    /// Returns `true` if this constant is the integer 1 or float 1.0.
    pub fn is_one(&self) -> bool {
        match *self {
            Const::Int { val, .. } => val == 1,
            Const::Float(v) => v == 1.0,
            _ => false,
        }
    }

    /// Returns `true` for `Undef`.
    pub fn is_undef(&self) -> bool {
        matches!(self, Const::Undef(_))
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::Int { ty: a, val: x }, Const::Int { ty: b, val: y }) => a == b && x == y,
            // Compare floats by bit pattern so that the IR value identity is
            // well-defined (NaN == NaN as an IR constant).
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            (Const::Null, Const::Null) => true,
            (Const::Undef(a), Const::Undef(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Const {}

impl Hash for Const {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match *self {
            Const::Int { ty, val } => {
                0u8.hash(state);
                ty.hash(state);
                val.hash(state);
            }
            Const::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Const::Null => 2u8.hash(state),
            Const::Undef(ty) => {
                3u8.hash(state);
                ty.hash(state);
            }
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Const::Int { val, .. } => write!(f, "{val}"),
            Const::Float(v) => write!(f, "{v:?}"),
            Const::Null => f.write_str("null"),
            Const::Undef(_) => f.write_str("undef"),
        }
    }
}

/// An SSA value: the operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The result of an instruction.
    Inst(InstId),
    /// The `n`-th function argument.
    Arg(u32),
    /// A literal constant.
    Const(Const),
    /// The address of a global variable.
    Global(GlobalId),
    /// A function reference (used only as a call-analysis marker).
    Func(FuncId),
}

impl Value {
    /// Convenience constructor for an `i64` constant value.
    pub fn i64(v: i64) -> Value {
        Value::Const(Const::int(Ty::I64, v))
    }

    /// Convenience constructor for an `i32` constant value.
    pub fn i32(v: i64) -> Value {
        Value::Const(Const::int(Ty::I32, v))
    }

    /// Convenience constructor for an `i1` constant value.
    pub fn bool(b: bool) -> Value {
        Value::Const(Const::bool(b))
    }

    /// Convenience constructor for an `f64` constant value.
    pub fn f64(v: f64) -> Value {
        Value::Const(Const::Float(v))
    }

    /// The constant payload, if this value is a constant.
    pub fn as_const(&self) -> Option<Const> {
        match *self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match *self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Returns `true` if the value is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns the integer constant payload, if any.
    pub fn const_int(&self) -> Option<i64> {
        self.as_const().and_then(|c| c.as_int())
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Value {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn const_int_wraps() {
        let c = Const::int(Ty::I8, 300);
        assert_eq!(c.as_int(), Some(44));
        assert_eq!(c.ty(), Ty::I8);
    }

    #[test]
    fn zero_and_one_classification() {
        assert!(Const::zero(Ty::I32).is_zero());
        assert!(Const::zero(Ty::F64).is_zero());
        assert!(Const::zero(Ty::Ptr).is_zero());
        assert!(Const::int(Ty::I64, 1).is_one());
        assert!(Const::Float(1.0).is_one());
        assert!(!Const::Undef(Ty::I64).is_zero());
    }

    #[test]
    fn float_identity_is_bitwise() {
        let nan1 = Const::Float(f64::NAN);
        let nan2 = Const::Float(f64::NAN);
        assert_eq!(nan1, nan2);
        let mut set = HashSet::new();
        set.insert(nan1);
        assert!(set.contains(&nan2));
        assert_ne!(Const::Float(0.0), Const::Float(-0.0));
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::i64(7).const_int(), Some(7));
        assert_eq!(Value::bool(true).const_int(), Some(1));
        assert!(Value::f64(2.5).is_const());
        assert_eq!(Value::Arg(0).as_const(), None);
    }
}
