//! Human-readable textual form of the IR.
//!
//! The format round-trips through [`crate::parser::parse_module`]:
//! instruction results are renumbered sequentially per function, so printing
//! is also a canonicalization step.

use crate::inst::{InstId, Op};
use crate::module::{BlockId, Function, Linkage, Module};
use crate::types::Ty;
use crate::value::{Const, Value};
use std::collections::HashMap;
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    write_module(&mut out, m).expect("writing to a String cannot fail");
    out
}

/// Streams the canonical textual form of `m` into any [`Write`] sink.
///
/// This is the same byte stream [`print_module`] returns; callers that only
/// need a digest of the text (e.g. [`crate::hash::module_hash`]) can pass a
/// hashing sink and avoid materializing the string.
pub fn write_module<W: Write>(out: &mut W, m: &Module) -> std::fmt::Result {
    write_module_header(out, m)?;
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        write_function_entry(out, m, f)?;
    }
    Ok(())
}

/// Streams the module-level prefix of the canonical form: the `module`
/// line plus every global.
///
/// Concatenating this with one [`write_function_entry`] per function in
/// `func_ids` order reproduces [`write_module`] byte for byte — the
/// decomposition [`crate::hash::module_hash`] folds over.
pub fn write_module_header<W: Write>(out: &mut W, m: &Module) -> std::fmt::Result {
    writeln!(out, "module \"{}\"", m.name)?;
    for gid in m.global_ids() {
        let g = m.global(gid).unwrap();
        let mutability = if g.mutable { "mutable" } else { "const" };
        let linkage = linkage_str(g.linkage);
        let init: Vec<String> = g.init.iter().map(print_const).collect();
        writeln!(
            out,
            "global @{} : {} x {} {} {} = [{}]",
            g.name,
            g.ty,
            g.count,
            mutability,
            linkage,
            init.join(", ")
        )?;
    }
    Ok(())
}

/// Streams one function's chunk of the canonical module form: the leading
/// blank line plus the declare line or the printed body (see
/// [`write_module_header`]).
pub fn write_function_entry<W: Write>(out: &mut W, m: &Module, f: &Function) -> std::fmt::Result {
    out.write_char('\n')?;
    if f.is_decl {
        let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
        writeln!(
            out,
            "declare @{}({}) -> {}",
            f.name,
            params.join(", "),
            f.ret
        )
    } else {
        write_function(out, m, f)
    }
}

fn linkage_str(l: Linkage) -> &'static str {
    match l {
        Linkage::External => "external",
        Linkage::Internal => "internal",
    }
}

fn attrs_str(f: &Function) -> String {
    let mut s = String::new();
    if f.attrs.readnone {
        s.push_str(" readnone");
    }
    if f.attrs.readonly {
        s.push_str(" readonly");
    }
    if f.attrs.norecurse {
        s.push_str(" norecurse");
    }
    if f.attrs.nounwind {
        s.push_str(" nounwind");
    }
    if f.attrs.willreturn {
        s.push_str(" willreturn");
    }
    s
}

/// Prints one function body with sequentially renumbered values.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    write_function(&mut out, m, f).expect("writing to a String cannot fail");
    out
}

/// Streams one function body (see [`write_module`]).
pub fn write_function<W: Write>(out: &mut W, m: &Module, f: &Function) -> std::fmt::Result {
    let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
    writeln!(
        out,
        "fn @{}({}) -> {} {}{} {{",
        f.name,
        params.join(", "),
        f.ret,
        linkage_str(f.linkage),
        attrs_str(f)
    )?;

    // sequential numbering of value-producing instructions, in block order
    let mut numbering: HashMap<InstId, usize> = HashMap::new();
    let mut next = 0usize;
    for b in f.block_ids() {
        for &id in &f.block(b).unwrap().insts {
            if f.op(id).result_ty() != Ty::Void {
                numbering.insert(id, next);
                next += 1;
            }
        }
    }

    // block label renumbering: entry first, then arena order
    let mut block_names: HashMap<BlockId, String> = HashMap::new();
    block_names.insert(f.entry, "bb0".to_string());
    let mut bn = 1usize;
    for b in f.block_ids() {
        if b != f.entry {
            block_names.insert(b, format!("bb{bn}"));
            bn += 1;
        }
    }

    let mut blocks: Vec<BlockId> = f.block_ids().collect();
    blocks.sort_by_key(|b| if *b == f.entry { 0 } else { b.index() + 1 });

    for b in blocks {
        writeln!(out, "{}:", block_names[&b])?;
        for &id in &f.block(b).unwrap().insts {
            writeln!(out, "  {}", print_inst(m, f, id, &numbering, &block_names))?;
        }
    }
    out.write_str("}\n")
}

fn print_const(c: &Const) -> String {
    match *c {
        Const::Int { ty, val } => {
            if ty == Ty::I1 {
                if val != 0 {
                    "true".into()
                } else {
                    "false".into()
                }
            } else {
                format!("{val}:{ty}")
            }
        }
        Const::Float(v) => format!("{v:?}:f64"),
        Const::Null => "null".into(),
        Const::Undef(ty) => format!("undef:{ty}"),
    }
}

fn print_value(m: &Module, v: Value, numbering: &HashMap<InstId, usize>) -> String {
    match v {
        Value::Inst(id) => match numbering.get(&id) {
            Some(n) => format!("%{n}"),
            None => format!("%?{}", id.0),
        },
        Value::Arg(i) => format!("%arg{i}"),
        Value::Const(c) => print_const(&c),
        Value::Global(g) => match m.global(g) {
            Some(g) => format!("@{}", g.name),
            None => "@?".into(),
        },
        Value::Func(fr) => match m.func(fr) {
            Some(f) => format!("&@{}", f.name),
            None => "&@?".into(),
        },
    }
}

fn print_inst(
    m: &Module,
    f: &Function,
    id: InstId,
    numbering: &HashMap<InstId, usize>,
    blocks: &HashMap<BlockId, String>,
) -> String {
    let pv = |v: Value| print_value(m, v, numbering);
    let pb = |b: BlockId| {
        blocks
            .get(&b)
            .cloned()
            .unwrap_or_else(|| format!("bb?{}", b.0))
    };
    let lhs = match numbering.get(&id) {
        Some(n) => format!("%{n} = "),
        None => String::new(),
    };
    let body = match f.op(id) {
        Op::Bin { op, ty, lhs, rhs } => {
            format!("{} {} {}, {}", op.mnemonic(), ty, pv(*lhs), pv(*rhs))
        }
        Op::Icmp { pred, ty, lhs, rhs } => {
            format!("icmp {} {} {}, {}", pred.mnemonic(), ty, pv(*lhs), pv(*rhs))
        }
        Op::Fcmp { pred, lhs, rhs } => {
            format!("fcmp {} {}, {}", pred.mnemonic(), pv(*lhs), pv(*rhs))
        }
        Op::Select {
            ty,
            cond,
            tval,
            fval,
        } => {
            format!("select {} {}, {}, {}", ty, pv(*cond), pv(*tval), pv(*fval))
        }
        Op::Cast { kind, to, val } => format!("{} {} to {}", kind.mnemonic(), pv(*val), to),
        Op::Alloca { ty, count } => format!("alloca {} x {}", ty, count),
        Op::Load { ty, ptr } => format!("load {}, {}", ty, pv(*ptr)),
        Op::Store { ty, val, ptr } => format!("store {} {}, {}", ty, pv(*val), pv(*ptr)),
        Op::Gep {
            elem_ty,
            ptr,
            index,
        } => format!("gep {}, {}, {}", elem_ty, pv(*ptr), pv(*index)),
        Op::Call {
            callee,
            args,
            ret_ty,
        } => {
            let callee_name = m
                .func(*callee)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "?".into());
            let args: Vec<String> = args.iter().map(|a| pv(*a)).collect();
            format!("call @{}({}) -> {}", callee_name, args.join(", "), ret_ty)
        }
        Op::Phi { ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, v)| format!("[{}: {}]", pb(*b), pv(*v)))
                .collect();
            format!("phi {} {}", ty, inc.join(", "))
        }
        Op::MemCpy {
            elem_ty,
            dst,
            src,
            len,
        } => {
            format!(
                "memcpy {} {}, {}, {}",
                elem_ty,
                pv(*dst),
                pv(*src),
                pv(*len)
            )
        }
        Op::MemSet {
            elem_ty,
            dst,
            val,
            len,
        } => {
            format!(
                "memset {} {}, {}, {}",
                elem_ty,
                pv(*dst),
                pv(*val),
                pv(*len)
            )
        }
        Op::Br { target } => format!("br {}", pb(*target)),
        Op::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("condbr {}, {}, {}", pv(*cond), pb(*then_bb), pb(*else_bb))
        }
        Op::Ret { val } => match val {
            Some(v) => format!("ret {}", pv(*v)),
            None => "ret".into(),
        },
        Op::Unreachable => "unreachable".into(),
    };
    format!("{lhs}{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::IntPred;

    #[test]
    fn prints_simple_function() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("f", vec![Ty::I64], Ty::I64);
        {
            let mut fb = mb.func_builder(f);
            let x = fb.add(Ty::I64, Value::Arg(0), Value::i64(1));
            let c = fb.icmp(IntPred::Slt, Ty::I64, x, Value::i64(10));
            let s = fb.select(Ty::I64, c, x, Value::i64(0));
            fb.ret(Some(s));
        }
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("fn @f(i64) -> i64 internal {"), "{text}");
        assert!(text.contains("%0 = add i64 %arg0, 1:i64"), "{text}");
        assert!(text.contains("%1 = icmp slt i64 %0, 10:i64"), "{text}");
        assert!(text.contains("ret %2"), "{text}");
    }

    #[test]
    fn prints_globals_and_decls() {
        let mut mb = ModuleBuilder::new("m");
        mb.add_global("tbl", Ty::I32, 3, vec![Const::int(Ty::I32, 5)], false);
        mb.declare_function("print_i64", vec![Ty::I64], Ty::Void);
        let m = mb.finish();
        let text = print_module(&m);
        assert!(
            text.contains("global @tbl : i32 x 3 const internal = [5:i32]"),
            "{text}"
        );
        assert!(text.contains("declare @print_i64(i64) -> void"), "{text}");
    }

    #[test]
    fn numbering_skips_void_results() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("f", vec![], Ty::Void);
        {
            let mut fb = mb.func_builder(f);
            let p = fb.alloca(Ty::I64, 1);
            fb.store(Ty::I64, Value::i64(3), p);
            let v = fb.load(Ty::I64, p);
            let _ = fb.add(Ty::I64, v, v);
            fb.ret(None);
        }
        let m = mb.finish();
        let text = print_module(&m);
        // store gets no %N; load is %1
        assert!(text.contains("store i64 3:i64, %0"), "{text}");
        assert!(text.contains("%1 = load i64, %0"), "{text}");
    }
}
