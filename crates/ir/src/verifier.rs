//! Structural and SSA verification.

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::inst::{InstId, Op};
use crate::module::{BlockId, FuncId, Function, Module};
use crate::types::Ty;
use crate::value::Value;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Structured location of a problem within a module.
///
/// Every field is optional so the same type describes module-level issues
/// (no function), function-level issues (no block) and instruction-level
/// issues (function + block + index). Both the verifier and the
/// `posetrl-analyze` lint suite report locations through this type so
/// diagnostics print uniformly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SourceLoc {
    /// Function the problem was found in, if any.
    pub func: Option<String>,
    /// Block within the function.
    pub block: Option<BlockId>,
    /// Index of the instruction within its block.
    pub inst_index: Option<usize>,
    /// Arena id of the instruction.
    pub inst: Option<InstId>,
}

impl SourceLoc {
    /// A module-level location (no function).
    pub fn module() -> SourceLoc {
        SourceLoc::default()
    }

    /// A function-level location.
    pub fn in_func(name: impl Into<String>) -> SourceLoc {
        SourceLoc {
            func: Some(name.into()),
            ..SourceLoc::default()
        }
    }

    /// Narrows the location to a block.
    pub fn at_block(mut self, b: BlockId) -> SourceLoc {
        self.block = Some(b);
        self
    }

    /// Narrows the location to an instruction at `index` within its block.
    pub fn at_inst(mut self, id: InstId, index: usize) -> SourceLoc {
        self.inst = Some(id);
        self.inst_index = Some(index);
        self
    }

    /// Locates instruction `id` within `f` (resolving block and index),
    /// falling back to a function-level location if it was removed.
    pub fn of_inst(f: &Function, id: InstId) -> SourceLoc {
        let loc = SourceLoc::in_func(&f.name);
        let Some(inst) = f.inst(id) else { return loc };
        let b = inst.block;
        let index = f
            .block(b)
            .and_then(|blk| blk.insts.iter().position(|&i| i == id));
        SourceLoc {
            block: Some(b),
            inst_index: index,
            inst: Some(id),
            ..loc
        }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            None => f.write_str("module"),
            Some(name) => {
                write!(f, "function '{name}'")?;
                if let Some(b) = self.block {
                    write!(f, " at {b}")?;
                    if let Some(i) = self.inst_index {
                        write!(f, "[{i}]")?;
                    }
                }
                if let Some(id) = self.inst {
                    write!(f, " ({id})")?;
                }
                Ok(())
            }
        }
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Where the problem was found.
    pub loc: SourceLoc,
    /// Human-readable description.
    pub message: String,
}

impl VerifyError {
    /// The function name the error points into, if any.
    pub fn func(&self) -> Option<&str> {
        self.loc.func.as_deref()
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loc == SourceLoc::module() {
            f.write_str(&self.message)
        } else {
            write!(f, "in {}: {}", self.loc, self.message)
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(loc: SourceLoc, message: impl Into<String>) -> VerifyError {
    VerifyError {
        loc,
        message: message.into(),
    }
}

/// Verifies every function of a module plus cross-function invariants.
///
/// # Errors
///
/// Returns the first violation found: malformed blocks (missing or misplaced
/// terminators), dangling references, phi/predecessor mismatches, type
/// errors, or SSA dominance violations.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if !names.insert(f.name.clone()) {
            return Err(err(
                SourceLoc::module(),
                format!("duplicate function name '{}'", f.name),
            ));
        }
        if !f.is_decl {
            verify_function(m, fid)?;
        }
    }
    Ok(())
}

/// Verifies a single function body.
///
/// # Errors
///
/// See [`verify_module`].
pub fn verify_function(m: &Module, fid: FuncId) -> Result<(), VerifyError> {
    let f = m.func(fid).expect("verify of removed function");
    let floc = || SourceLoc::in_func(&f.name);

    if f.block(f.entry).is_none() {
        return Err(err(floc(), "entry block was removed"));
    }

    // Structural block checks.
    for b in f.block_ids() {
        let block = f.block(b).unwrap();
        if block.insts.is_empty() {
            return Err(err(
                floc().at_block(b),
                format!("{b} is empty (needs a terminator)"),
            ));
        }
        for (i, &id) in block.insts.iter().enumerate() {
            let inst = f.inst(id).ok_or_else(|| {
                err(
                    floc().at_block(b),
                    format!("{b} references removed instruction {id}"),
                )
            })?;
            if inst.block != b {
                return Err(err(
                    floc().at_block(b).at_inst(id, i),
                    format!("{id} back-reference points to {} not {b}", inst.block),
                ));
            }
            let is_last = i + 1 == block.insts.len();
            if inst.op.is_terminator() != is_last {
                return Err(err(
                    floc().at_block(b).at_inst(id, i),
                    format!(
                        "{b}: terminator placement error at {id} ({})",
                        inst.op.kind_name()
                    ),
                ));
            }
            if matches!(inst.op, Op::Phi { .. }) {
                // phis must be grouped at the top
                let all_phis_before = block.insts[..i]
                    .iter()
                    .all(|&p| matches!(f.op(p), Op::Phi { .. }));
                if !all_phis_before {
                    return Err(err(
                        floc().at_block(b).at_inst(id, i),
                        format!("{b}: phi {id} not at block top"),
                    ));
                }
            }
        }
    }

    let cfg = Cfg::compute(f);
    let reachable = cfg.reachable();

    // The entry block must have no predecessors (as in LLVM); the
    // interpreter's phi handling and loop transforms rely on this.
    if cfg.preds.get(&f.entry).is_some_and(|p| !p.is_empty()) {
        return Err(err(
            floc().at_block(f.entry),
            "entry block has predecessors",
        ));
    }

    // Terminator targets and phi consistency.
    for b in f.block_ids() {
        for s in f.successors(b) {
            if f.block(s).is_none() {
                return Err(err(
                    floc().at_block(b),
                    format!("{b} branches to removed block {s}"),
                ));
            }
        }
    }
    for &b in &cfg.rpo {
        let preds: HashSet<BlockId> = cfg.preds[&b]
            .iter()
            .copied()
            .filter(|p| reachable.contains(p))
            .collect();
        for (i, &id) in f.block(b).unwrap().insts.iter().enumerate() {
            if let Op::Phi { incomings, .. } = f.op(id) {
                let iloc = || floc().at_block(b).at_inst(id, i);
                let inc: HashSet<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                if inc.len() != incomings.len() {
                    return Err(err(iloc(), format!("{id}: duplicate phi incoming blocks")));
                }
                for p in &inc {
                    if !preds.contains(p) && reachable.contains(p) {
                        return Err(err(
                            iloc(),
                            format!("{id}: phi incoming {p} is not a predecessor of {b}"),
                        ));
                    }
                }
                for p in &preds {
                    if !inc.contains(p) {
                        return Err(err(
                            iloc(),
                            format!("{id}: phi missing incoming for predecessor {p}"),
                        ));
                    }
                }
            }
        }
    }

    // Operand existence, argument indices, global/function references, types.
    for id in f.inst_ids() {
        let op = f.op(id);
        let iloc = || SourceLoc::of_inst(f, id);
        for v in op.operands() {
            match v {
                Value::Inst(d) => {
                    if f.inst(d).is_none() {
                        return Err(err(iloc(), format!("{id} uses removed instruction {d}")));
                    }
                }
                Value::Arg(i) => {
                    if i as usize >= f.params.len() {
                        return Err(err(iloc(), format!("{id} uses out-of-range argument {i}")));
                    }
                }
                Value::Global(g) => {
                    if m.global(g).is_none() {
                        return Err(err(iloc(), format!("{id} references removed global")));
                    }
                }
                Value::Func(fr) => {
                    if m.func(fr).is_none() {
                        return Err(err(iloc(), format!("{id} references removed function")));
                    }
                }
                Value::Const(_) => {}
            }
        }
        verify_types(m, f, id)?;
    }

    // SSA dominance: every use of an instruction result must be dominated by
    // its definition (phi uses checked at the incoming edge).
    let dt = DomTree::compute(f, &cfg);
    let pos: HashMap<InstId, (BlockId, usize)> = {
        let mut map = HashMap::new();
        for b in f.block_ids() {
            for (i, &id) in f.block(b).unwrap().insts.iter().enumerate() {
                map.insert(id, (b, i));
            }
        }
        map
    };
    for &b in &cfg.rpo {
        for (use_idx, &id) in f.block(b).unwrap().insts.iter().enumerate() {
            let iloc = || SourceLoc::in_func(&f.name).at_block(b).at_inst(id, use_idx);
            match f.op(id) {
                Op::Phi { incomings, .. } => {
                    for (pred, v) in incomings {
                        if !reachable.contains(pred) {
                            continue;
                        }
                        if let Value::Inst(d) = v {
                            let (db, _) = pos[d];
                            if !dt.dominates(db, *pred) {
                                return Err(err(
                                    iloc(),
                                    format!(
                                        "{id}: phi incoming {d} does not dominate edge from {pred}"
                                    ),
                                ));
                            }
                        }
                    }
                }
                op => {
                    for v in op.operands() {
                        if let Value::Inst(d) = v {
                            let (db, di) = pos[&d];
                            let ok = if db == b {
                                di < use_idx
                            } else {
                                dt.strictly_dominates(db, b) || dt.dominates(db, b)
                            };
                            if !ok {
                                return Err(err(
                                    iloc(),
                                    format!("{id}: use of {d} not dominated by its definition"),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(())
}

/// Type of a value within function `f`.
pub fn value_ty(_m: &Module, f: &Function, v: Value) -> Ty {
    match v {
        Value::Inst(id) => f.op(id).result_ty(),
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Ty::Void),
        Value::Const(c) => c.ty(),
        Value::Global(_) => Ty::Ptr,
        Value::Func(_) => Ty::Ptr,
    }
}

fn verify_types(m: &Module, f: &Function, id: InstId) -> Result<(), VerifyError> {
    let vt = |v: Value| value_ty(m, f, v);
    let want = |cond: bool, msg: String| -> Result<(), VerifyError> {
        if cond {
            Ok(())
        } else {
            Err(err(SourceLoc::of_inst(f, id), msg))
        }
    };
    match f.op(id) {
        Op::Bin { op, ty, lhs, rhs } => {
            want(
                vt(*lhs) == *ty && vt(*rhs) == *ty,
                format!(
                    "{id}: {} operand types {} / {} != {}",
                    op.mnemonic(),
                    vt(*lhs),
                    vt(*rhs),
                    ty
                ),
            )?;
            want(
                op.is_float() == ty.is_float(),
                format!("{id}: {} on wrong type class {ty}", op.mnemonic()),
            )
        }
        Op::Icmp { ty, lhs, rhs, .. } => want(
            vt(*lhs) == *ty && vt(*rhs) == *ty && (ty.is_int() || *ty == Ty::Ptr),
            format!("{id}: icmp operand type mismatch"),
        ),
        Op::Fcmp { lhs, rhs, .. } => want(
            vt(*lhs) == Ty::F64 && vt(*rhs) == Ty::F64,
            format!("{id}: fcmp operands must be f64"),
        ),
        Op::Select {
            ty,
            cond,
            tval,
            fval,
        } => want(
            vt(*cond) == Ty::I1 && vt(*tval) == *ty && vt(*fval) == *ty,
            format!("{id}: select type mismatch"),
        ),
        Op::Cast { kind, to, val } => {
            use crate::inst::CastKind::*;
            let from = vt(*val);
            let ok = match kind {
                Trunc => from.is_int() && to.is_int() && from.bit_width() > to.bit_width(),
                ZExt | SExt => from.is_int() && to.is_int() && from.bit_width() < to.bit_width(),
                SiToFp => from.is_int() && *to == Ty::F64,
                FpToSi => from == Ty::F64 && to.is_int(),
            };
            want(
                ok,
                format!("{id}: invalid cast {} from {from} to {to}", kind.mnemonic()),
            )
        }
        Op::Alloca { ty, count } => want(
            ty.is_storable() && *count > 0,
            format!("{id}: invalid alloca"),
        ),
        Op::Load { ty, ptr } => want(
            vt(*ptr) == Ty::Ptr && ty.is_storable(),
            format!("{id}: load type mismatch"),
        ),
        Op::Store { ty, val, ptr } => want(
            vt(*ptr) == Ty::Ptr && vt(*val) == *ty && ty.is_storable(),
            format!("{id}: store type mismatch ({} into {})", vt(*val), ty),
        ),
        Op::Gep { ptr, index, .. } => want(
            vt(*ptr) == Ty::Ptr && vt(*index).is_int(),
            format!("{id}: gep type mismatch"),
        ),
        Op::Call {
            callee,
            args,
            ret_ty,
        } => {
            let callee_f = m.func(*callee).ok_or_else(|| {
                err(
                    SourceLoc::of_inst(f, id),
                    format!("{id}: call to removed function"),
                )
            })?;
            want(
                callee_f.ret == *ret_ty,
                format!("{id}: call return type {} != {}", ret_ty, callee_f.ret),
            )?;
            want(
                args.len() == callee_f.params.len(),
                format!(
                    "{id}: call arity {} != {}",
                    args.len(),
                    callee_f.params.len()
                ),
            )?;
            for (a, p) in args.iter().zip(&callee_f.params) {
                want(
                    vt(*a) == *p,
                    format!("{id}: call argument type {} != {}", vt(*a), p),
                )?;
            }
            Ok(())
        }
        Op::Phi { ty, incomings } => {
            want(!incomings.is_empty(), format!("{id}: empty phi"))?;
            for (_, v) in incomings {
                want(
                    vt(*v) == *ty,
                    format!("{id}: phi incoming type {} != {ty}", vt(*v)),
                )?;
            }
            Ok(())
        }
        Op::MemCpy { dst, src, len, .. } => want(
            vt(*dst) == Ty::Ptr && vt(*src) == Ty::Ptr && vt(*len).is_int(),
            format!("{id}: memcpy type mismatch"),
        ),
        Op::MemSet {
            dst,
            val,
            len,
            elem_ty,
        } => want(
            vt(*dst) == Ty::Ptr && vt(*val) == *elem_ty && vt(*len).is_int(),
            format!("{id}: memset type mismatch"),
        ),
        Op::CondBr { cond, .. } => want(
            vt(*cond) == Ty::I1,
            format!("{id}: condbr condition must be i1"),
        ),
        Op::Ret { val } => match (val, f.ret) {
            (None, Ty::Void) => Ok(()),
            (Some(v), ty) if ty != Ty::Void => {
                want(vt(*v) == ty, format!("{id}: return type mismatch"))
            }
            _ => Err(err(
                SourceLoc::of_inst(f, id),
                format!("{id}: return/void mismatch"),
            )),
        },
        Op::Br { .. } | Op::Unreachable => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new("m");
        m.add_function(f);
        m
    }

    #[test]
    fn empty_block_rejected() {
        let f = Function::new("f", vec![], Ty::Void);
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry;
        f.append_inst(
            e,
            Op::Alloca {
                ty: Ty::I64,
                count: 1,
            },
        );
        let m = module_with(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry;
        let bad = f.append_inst(
            e,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::i32(1),
                rhs: Value::i64(2),
            },
        );
        f.append_inst(
            e,
            Op::Ret {
                val: Some(Value::Inst(bad)),
            },
        );
        let m = module_with(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("add"), "{e}");
    }

    #[test]
    fn use_before_def_rejected() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry;
        // ret uses an instruction defined *after* it in the same block: build
        // manually out of order.
        let a = f.append_inst(
            e,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::i64(1),
                rhs: Value::i64(2),
            },
        );
        let b = f.append_inst(
            e,
            Op::Bin {
                op: BinOp::Add,
                ty: Ty::I64,
                lhs: Value::Inst(a),
                rhs: Value::i64(3),
            },
        );
        f.append_inst(
            e,
            Op::Ret {
                val: Some(Value::Inst(b)),
            },
        );
        // swap a and b in the block order to break dominance
        let blk = f.block_mut(e).unwrap();
        blk.insts.swap(0, 1);
        let m = module_with(f);
        let msg = verify_module(&m).unwrap_err();
        assert!(msg.message.contains("not dominated"), "{msg}");
    }

    #[test]
    fn phi_missing_incoming_rejected() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let merge = f.add_block();
        f.append_inst(
            e,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: a,
                else_bb: b,
            },
        );
        f.append_inst(a, Op::Br { target: merge });
        f.append_inst(b, Op::Br { target: merge });
        let phi = f.append_inst(
            merge,
            Op::Phi {
                ty: Ty::I64,
                incomings: vec![(a, Value::i64(1))],
            },
        );
        f.append_inst(
            merge,
            Op::Ret {
                val: Some(Value::Inst(phi)),
            },
        );
        let m = module_with(f);
        let msg = verify_module(&m).unwrap_err();
        assert!(msg.message.contains("missing incoming"), "{msg}");
    }

    #[test]
    fn call_arity_checked() {
        let mut m = Module::new("m");
        let callee = m.add_function(Function::new_decl("ext", vec![Ty::I64], Ty::Void));
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry;
        f.append_inst(
            e,
            Op::Call {
                callee,
                args: vec![],
                ret_ty: Ty::Void,
            },
        );
        f.append_inst(e, Op::Ret { val: None });
        m.add_function(f);
        let msg = verify_module(&m).unwrap_err();
        assert!(msg.message.contains("arity"), "{msg}");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Module::new("m");
        m.add_function(Function::new_decl("x", vec![], Ty::Void));
        m.add_function(Function::new_decl("x", vec![], Ty::Void));
        assert!(verify_module(&m).is_err());
    }
}
