//! `mini-run`: the workspace's answer to LLVM's `lli` — runs a textual IR
//! module under the reference interpreter.
//!
//! ```text
//! mini-run [--entry NAME] [--fuel N] [--profile] [file.ir] [ARGS...]
//! ```
//!
//! `ARGS` are i64 values passed to the entry function. Prints the external
//! call trace, the return value, and (with `--profile`) the dynamic
//! instruction counts.

use posetrl_ir::interp::{InterpConfig, Interpreter, RtVal, TraceArg};
use posetrl_ir::parser::parse_module;
use posetrl_ir::verifier::verify_module;
use std::io::Read;

fn main() {
    let mut entry = "main".to_string();
    let mut fuel = 50_000_000u64;
    let mut profile = false;
    let mut file: Option<String> = None;
    let mut call_args: Vec<RtVal> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--entry" => entry = it.next().unwrap_or_default(),
            "--fuel" => fuel = it.next().and_then(|s| s.parse().ok()).unwrap_or(fuel),
            "--profile" => profile = true,
            other => {
                if let Ok(v) = other.parse::<i64>() {
                    call_args.push(RtVal::Int(v));
                } else if file.is_none() {
                    file = Some(other.to_string());
                } else {
                    eprintln!("mini-run: unexpected argument '{other}'");
                    std::process::exit(1);
                }
            }
        }
    }

    let text = match file {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("mini-run: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            buf
        }
    };

    let module = match parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mini-run: parse error: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = verify_module(&module) {
        eprintln!("mini-run: module does not verify: {e}");
        std::process::exit(1);
    }

    let out = Interpreter::with_config(
        &module,
        InterpConfig {
            fuel,
            max_depth: 1024,
        },
    )
    .run(&entry, &call_args);

    for ev in &out.trace {
        let args: Vec<String> = ev
            .args
            .iter()
            .map(|a| match a {
                TraceArg::Int(v) => v.to_string(),
                TraceArg::Float(bits) => format!("{}", f64::from_bits(*bits)),
                TraceArg::Ptr => "<ptr>".to_string(),
                TraceArg::Undef => "<undef>".to_string(),
            })
            .collect();
        println!("[{}] {}", ev.callee, args.join(", "));
    }

    match out.result {
        Ok(Some(v)) => println!("=> {v:?}"),
        Ok(None) => println!("=> (void)"),
        Err(e) => {
            eprintln!("mini-run: trapped: {e}");
            std::process::exit(4);
        }
    }

    if profile {
        println!("dynamic instructions: {}", out.profile.total_steps);
    }
}
