//! Reference interpreter.
//!
//! The interpreter defines the observable semantics of the IR: the value
//! returned by the entry function plus the ordered trace of external calls
//! (`print_*` and friends). Optimization passes must preserve exactly this
//! behaviour, which the property tests in `posetrl-opt` check by running
//! modules before and after each pass.
//!
//! All operations are total and deterministic: integer arithmetic wraps at
//! the type width, shifts mask their amount, division by zero traps with a
//! well-defined [`ExecError`], and float-to-int casts saturate.
//!
//! # Undefined behaviour contract
//!
//! Like LLVM, the optimization passes assume programs are free of
//! *erroneous* executions, and the preservation guarantee applies to
//! programs whose runs do not trap: division/remainder by zero,
//! out-of-bounds memory access, writes to immutable globals, and control
//! or trapping-operand uses of `undef` are erroneous. The interpreter
//! reports them deterministically (useful for debugging and for the
//! workload generator's guarantees), but passes may reorder, remove, or
//! refine such executions — e.g. DSE may delete a store that would have
//! trapped out-of-bounds, and instcombine may refine `icmp undef, undef`
//! to a constant. Generated workloads never trap, so the property tests
//! compare behaviour on the defined domain.

use crate::inst::{BinOp, CastKind, InstId, Op};
use crate::module::{BlockId, FuncId, GlobalId, Module};
use crate::types::Ty;
use crate::value::{Const, Value};
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer of any width (kept wrapped to its type's range).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer into an allocation.
    Ptr(PtrVal),
    /// Uninitialized / undefined.
    Undef,
}

impl RtVal {
    fn as_int(self) -> Result<i64, ExecError> {
        match self {
            RtVal::Int(v) => Ok(v),
            RtVal::Undef => Err(ExecError::UndefUse),
            other => Err(ExecError::TypeError(format!("expected int, got {other:?}"))),
        }
    }

    fn as_float(self) -> Result<f64, ExecError> {
        match self {
            RtVal::Float(v) => Ok(v),
            RtVal::Undef => Err(ExecError::UndefUse),
            other => Err(ExecError::TypeError(format!(
                "expected float, got {other:?}"
            ))),
        }
    }

    fn as_ptr(self) -> Result<PtrVal, ExecError> {
        match self {
            RtVal::Ptr(p) => Ok(p),
            RtVal::Undef => Err(ExecError::UndefUse),
            other => Err(ExecError::TypeError(format!("expected ptr, got {other:?}"))),
        }
    }
}

/// The base object a pointer points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// A global variable.
    Global(GlobalId),
    /// A stack allocation, identified by a unique serial number.
    Stack(u64),
}

/// A fat pointer: base object + element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtrVal {
    /// The allocation this pointer addresses.
    pub base: MemBase,
    /// Offset in elements.
    pub offset: i64,
}

/// An observable event: a call to an external (declaration-only) function.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Callee name.
    pub callee: String,
    /// Scalar arguments (pointers are abstracted away as opaque).
    pub args: Vec<TraceArg>,
}

/// A traced argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceArg {
    /// Integer argument.
    Int(i64),
    /// Float argument (compared bitwise).
    Float(u64),
    /// Pointer argument (opaque).
    Ptr,
    /// Undef argument.
    Undef,
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The step budget was exhausted.
    OutOfFuel,
    /// Call stack exceeded the depth limit.
    StackOverflow,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Memory access outside an allocation.
    OutOfBounds,
    /// Load/store element type mismatched the allocation.
    TypeError(String),
    /// A write targeted an immutable (const) global.
    WriteToConst,
    /// A control decision depended on an undefined value.
    UndefUse,
    /// An `unreachable` instruction was executed.
    Unreachable,
    /// The module has no function with the requested name.
    NoSuchFunction(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => f.write_str("out of fuel"),
            ExecError::StackOverflow => f.write_str("stack overflow"),
            ExecError::DivByZero => f.write_str("division by zero"),
            ExecError::OutOfBounds => f.write_str("out-of-bounds memory access"),
            ExecError::TypeError(m) => write!(f, "runtime type error: {m}"),
            ExecError::WriteToConst => f.write_str("write to immutable global"),
            ExecError::UndefUse => f.write_str("control or memory use of undef"),
            ExecError::Unreachable => f.write_str("executed unreachable"),
            ExecError::NoSuchFunction(n) => write!(f, "no such function '{n}'"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The observable outcome of a run, used for semantic equivalence checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// `Ok(return value)` or the error the program trapped with.
    pub result: Result<Option<TraceArg>, ExecError>,
    /// Ordered external-call trace.
    pub trace: Vec<TraceEvent>,
}

impl Observation {
    /// Refinement check: is observing `self` (the *optimized* run) an
    /// acceptable behaviour given `src` (the *source* run)?
    ///
    /// Rules, per the translation-validation refinement relation:
    /// - a source trap permits anything (undefined behaviour refines to
    ///   every behaviour); resource-limit stops (`OutOfFuel`,
    ///   `StackOverflow`) are treated the same way because nothing can
    ///   be concluded past them;
    /// - where the source is defined, a target trap is a violation —
    ///   except target resource-limit stops, which are inconclusive and
    ///   therefore treated as refining (no *confirmed* violation);
    /// - a source `Undef` value (return or trace argument) permits any
    ///   target value (undef widening); a target `Undef` where the
    ///   source is concrete is a violation;
    /// - concrete values and the external-call trace (callee names,
    ///   argument lists) must match exactly otherwise.
    pub fn refines(&self, src: &Observation) -> bool {
        match &src.result {
            Err(_) => true,
            Ok(sv) => match &self.result {
                Err(ExecError::OutOfFuel) | Err(ExecError::StackOverflow) => true,
                Err(_) => false,
                Ok(tv) => {
                    let ret_ok = match (sv, tv) {
                        (None, None) => true,
                        (Some(s), Some(t)) => arg_refines(s, t),
                        _ => false,
                    };
                    ret_ok
                        && self.trace.len() == src.trace.len()
                        && self.trace.iter().zip(&src.trace).all(|(t, s)| {
                            t.callee == s.callee
                                && t.args.len() == s.args.len()
                                && t.args
                                    .iter()
                                    .zip(&s.args)
                                    .all(|(ta, sa)| arg_refines(sa, ta))
                        })
                }
            },
        }
    }
}

/// Value-level refinement: does the target argument `t` refine the
/// source argument `s`?
fn arg_refines(s: &TraceArg, t: &TraceArg) -> bool {
    match (s, t) {
        (TraceArg::Undef, _) => true,
        (_, TraceArg::Undef) => false,
        (a, b) => a == b,
    }
}

/// Per-instruction dynamic execution counts.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Execution count per (function, instruction).
    pub counts: HashMap<(FuncId, InstId), u64>,
    /// Total instructions executed.
    pub total_steps: u64,
}

/// The complete result of an interpreter run.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Return value of the entry function (if it returned normally).
    pub result: Result<Option<RtVal>, ExecError>,
    /// Ordered external-call trace.
    pub trace: Vec<TraceEvent>,
    /// Dynamic profile.
    pub profile: ExecProfile,
}

impl ExecOutcome {
    /// Projects the outcome to its observable part.
    pub fn observation(&self) -> Observation {
        let result = match &self.result {
            Ok(v) => Ok(v.map(abstract_val)),
            Err(e) => Err(e.clone()),
        };
        Observation {
            result,
            trace: self.trace.clone(),
        }
    }
}

fn abstract_val(v: RtVal) -> TraceArg {
    match v {
        RtVal::Int(i) => TraceArg::Int(i),
        RtVal::Float(f) => TraceArg::Float(f.to_bits()),
        RtVal::Ptr(_) => TraceArg::Ptr,
        RtVal::Undef => TraceArg::Undef,
    }
}

#[derive(Debug)]
struct Allocation {
    elem_ty: Ty,
    cells: Vec<RtVal>,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum number of executed instructions.
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            fuel: 2_000_000,
            max_depth: 256,
        }
    }
}

/// The interpreter.
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    config: InterpConfig,
    memory: HashMap<MemBase, Allocation>,
    next_stack_serial: u64,
    fuel: u64,
    trace: Vec<TraceEvent>,
    profile: ExecProfile,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter over `module` with default limits.
    pub fn new(module: &'m Module) -> Interpreter<'m> {
        Interpreter::with_config(module, InterpConfig::default())
    }

    /// Creates an interpreter with explicit limits.
    pub fn with_config(module: &'m Module, config: InterpConfig) -> Interpreter<'m> {
        Interpreter {
            module,
            config,
            memory: HashMap::new(),
            next_stack_serial: 0,
            fuel: config.fuel,
            trace: Vec::new(),
            profile: ExecProfile::default(),
        }
    }

    /// Runs the function named `name` with `args` and returns the outcome.
    ///
    /// Globals are (re-)initialized at the start of every run. The run
    /// executes on a dedicated thread with a large stack so that deep (but
    /// in-budget) guest recursion cannot overflow the host stack.
    pub fn run(self, name: &str, args: &[RtVal]) -> ExecOutcome {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .stack_size(64 * 1024 * 1024)
                .spawn_scoped(scope, move || self.run_on_current_thread(name, args))
                .expect("spawn interpreter thread")
                .join()
                .expect("interpreter thread panicked")
        })
    }

    fn run_on_current_thread(mut self, name: &str, args: &[RtVal]) -> ExecOutcome {
        let fid = match self.module.func_by_name(name) {
            Some(f) => f,
            None => {
                return ExecOutcome {
                    result: Err(ExecError::NoSuchFunction(name.to_string())),
                    trace: Vec::new(),
                    profile: ExecProfile::default(),
                }
            }
        };
        self.init_globals();
        let result = self.call_function(fid, args.to_vec(), 0);
        ExecOutcome {
            result,
            trace: self.trace,
            profile: self.profile,
        }
    }

    fn init_globals(&mut self) {
        for gid in self.module.global_ids() {
            let g = self.module.global(gid).unwrap();
            let mut cells = vec![RtVal::Undef; g.count as usize];
            for (i, c) in g.init.iter().enumerate().take(g.count as usize) {
                cells[i] = const_val(*c);
            }
            // zero-fill the tail beyond the initializer
            for cell in cells.iter_mut().skip(g.init.len()) {
                *cell = zero_val(g.ty);
            }
            self.memory.insert(
                MemBase::Global(gid),
                Allocation {
                    elem_ty: g.ty,
                    cells,
                },
            );
        }
    }

    fn call_function(
        &mut self,
        fid: FuncId,
        args: Vec<RtVal>,
        depth: usize,
    ) -> Result<Option<RtVal>, ExecError> {
        if depth > self.config.max_depth {
            return Err(ExecError::StackOverflow);
        }
        let f = self.module.func(fid).expect("call target exists");
        if f.is_decl {
            return self.external_call(&f.name.clone(), &args, f.ret);
        }

        let mut regs: HashMap<InstId, RtVal> = HashMap::new();
        let mut cur = f.entry;
        let mut prev: Option<BlockId> = None;
        let mut frame_allocs: Vec<MemBase> = Vec::new();

        let result = 'outer: loop {
            // Evaluate phis simultaneously on block entry.
            if let Some(p) = prev {
                let block = f.block(cur).ok_or(ExecError::Unreachable)?;
                let mut phi_updates: Vec<(InstId, RtVal)> = Vec::new();
                for &id in &block.insts {
                    match f.op(id) {
                        Op::Phi { incomings, .. } => {
                            let (_, v) =
                                incomings.iter().find(|(b, _)| *b == p).ok_or_else(|| {
                                    ExecError::TypeError("phi missing incoming".into())
                                })?;
                            phi_updates.push((id, self.value(f, &regs, &args, *v)?));
                        }
                        _ => break,
                    }
                }
                for (id, v) in phi_updates {
                    regs.insert(id, v);
                }
            }

            let block = f.block(cur).ok_or(ExecError::Unreachable)?;
            let insts = block.insts.clone();
            let mut idx = 0usize;
            // skip phis (already handled, except on function entry where a
            // verified function has none in the entry block)
            if prev.is_some() {
                while idx < insts.len() && matches!(f.op(insts[idx]), Op::Phi { .. }) {
                    idx += 1;
                }
            }

            while idx < insts.len() {
                let id = insts[idx];
                idx += 1;
                if self.fuel == 0 {
                    break 'outer Err(ExecError::OutOfFuel);
                }
                self.fuel -= 1;
                self.profile.total_steps += 1;
                *self.profile.counts.entry((fid, id)).or_insert(0) += 1;

                match f.op(id).clone() {
                    Op::Phi { incomings, .. } => {
                        // Entry-block phi with a single incoming (degenerate but legal).
                        let v = incomings
                            .first()
                            .map(|(_, v)| self.value(f, &regs, &args, *v))
                            .transpose()?
                            .unwrap_or(RtVal::Undef);
                        regs.insert(id, v);
                    }
                    Op::Bin { op, ty, lhs, rhs } => {
                        let a = self.value(f, &regs, &args, lhs)?;
                        let b = self.value(f, &regs, &args, rhs)?;
                        regs.insert(id, eval_bin(op, ty, a, b)?);
                    }
                    Op::Icmp { pred, lhs, rhs, .. } => {
                        let a = self.value(f, &regs, &args, lhs)?;
                        let b = self.value(f, &regs, &args, rhs)?;
                        let r = match (a, b) {
                            (RtVal::Int(x), RtVal::Int(y)) => pred.eval(x, y),
                            (RtVal::Ptr(x), RtVal::Ptr(y)) => {
                                pred.eval(ptr_ordinal(x), ptr_ordinal(y))
                            }
                            (RtVal::Undef, _) | (_, RtVal::Undef) => {
                                return_err_store(&mut regs, id);
                                continue;
                            }
                            _ => break 'outer Err(ExecError::TypeError("icmp operands".into())),
                        };
                        regs.insert(id, RtVal::Int(r as i64));
                    }
                    Op::Fcmp { pred, lhs, rhs } => {
                        let a = self.value(f, &regs, &args, lhs)?.as_float()?;
                        let b = self.value(f, &regs, &args, rhs)?.as_float()?;
                        regs.insert(id, RtVal::Int(pred.eval(a, b) as i64));
                    }
                    Op::Select {
                        cond, tval, fval, ..
                    } => {
                        let c = self.value(f, &regs, &args, cond)?.as_int()?;
                        let v = if c != 0 {
                            self.value(f, &regs, &args, tval)?
                        } else {
                            self.value(f, &regs, &args, fval)?
                        };
                        regs.insert(id, v);
                    }
                    Op::Cast { kind, to, val } => {
                        let src_ty = value_type_in(f, val);
                        let v = self.value(f, &regs, &args, val)?;
                        regs.insert(id, eval_cast_src(kind, to, src_ty, v)?);
                    }
                    Op::Alloca { ty, count } => {
                        let serial = self.next_stack_serial;
                        self.next_stack_serial += 1;
                        let base = MemBase::Stack(serial);
                        self.memory.insert(
                            base,
                            Allocation {
                                elem_ty: ty,
                                cells: vec![RtVal::Undef; count as usize],
                            },
                        );
                        frame_allocs.push(base);
                        regs.insert(id, RtVal::Ptr(PtrVal { base, offset: 0 }));
                    }
                    Op::Load { ty, ptr } => {
                        let p = self.value(f, &regs, &args, ptr)?.as_ptr()?;
                        let v = self.mem_load(p, ty)?;
                        regs.insert(id, v);
                    }
                    Op::Store { ty, val, ptr } => {
                        let v = self.value(f, &regs, &args, val)?;
                        let p = self.value(f, &regs, &args, ptr)?.as_ptr()?;
                        self.mem_store(p, ty, v)?;
                    }
                    Op::Gep { ptr, index, .. } => {
                        let p = self.value(f, &regs, &args, ptr)?.as_ptr()?;
                        let i = self.value(f, &regs, &args, index)?.as_int()?;
                        regs.insert(
                            id,
                            RtVal::Ptr(PtrVal {
                                base: p.base,
                                offset: p.offset + i,
                            }),
                        );
                    }
                    Op::Call {
                        callee,
                        args: call_args,
                        ret_ty,
                    } => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in &call_args {
                            vals.push(self.value(f, &regs, &args, *a)?);
                        }
                        let r = self.call_function(callee, vals, depth + 1)?;
                        if ret_ty != Ty::Void {
                            regs.insert(id, r.unwrap_or(RtVal::Undef));
                        }
                    }
                    Op::MemCpy { dst, src, len, .. } => {
                        let d = self.value(f, &regs, &args, dst)?.as_ptr()?;
                        let s = self.value(f, &regs, &args, src)?.as_ptr()?;
                        let n = self.value(f, &regs, &args, len)?.as_int()?;
                        self.mem_copy(d, s, n)?;
                    }
                    Op::MemSet { dst, val, len, .. } => {
                        let d = self.value(f, &regs, &args, dst)?.as_ptr()?;
                        let v = self.value(f, &regs, &args, val)?;
                        let n = self.value(f, &regs, &args, len)?.as_int()?;
                        self.mem_set(d, v, n)?;
                    }
                    Op::Br { target } => {
                        prev = Some(cur);
                        cur = target;
                        continue 'outer;
                    }
                    Op::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.value(f, &regs, &args, cond)?;
                        let c = match c {
                            RtVal::Int(v) => v,
                            RtVal::Undef => break 'outer Err(ExecError::UndefUse),
                            _ => break 'outer Err(ExecError::TypeError("condbr cond".into())),
                        };
                        prev = Some(cur);
                        cur = if c != 0 { then_bb } else { else_bb };
                        continue 'outer;
                    }
                    Op::Ret { val } => {
                        let r = match val {
                            Some(v) => Some(self.value(f, &regs, &args, v)?),
                            None => None,
                        };
                        break 'outer Ok(r);
                    }
                    Op::Unreachable => break 'outer Err(ExecError::Unreachable),
                }
            }
            // fell off the end of a block without a terminator
            break 'outer Err(ExecError::Unreachable);
        };

        // Free this frame's stack allocations.
        for base in frame_allocs {
            self.memory.remove(&base);
        }
        result
    }

    fn external_call(
        &mut self,
        name: &str,
        args: &[RtVal],
        ret: Ty,
    ) -> Result<Option<RtVal>, ExecError> {
        self.trace.push(TraceEvent {
            callee: name.to_string(),
            args: args.iter().map(|v| abstract_val(*v)).collect(),
        });
        Ok(match ret {
            Ty::Void => None,
            Ty::F64 => Some(RtVal::Float(0.0)),
            Ty::Ptr => Some(RtVal::Ptr(PtrVal {
                base: MemBase::Stack(u64::MAX),
                offset: 0,
            })),
            _ => Some(RtVal::Int(0)),
        })
    }

    fn value(
        &self,
        f: &crate::module::Function,
        regs: &HashMap<InstId, RtVal>,
        args: &[RtVal],
        v: Value,
    ) -> Result<RtVal, ExecError> {
        Ok(match v {
            Value::Inst(id) => regs.get(&id).copied().unwrap_or(RtVal::Undef),
            Value::Arg(i) => args.get(i as usize).copied().unwrap_or(RtVal::Undef),
            Value::Const(c) => const_val(c),
            Value::Global(g) => RtVal::Ptr(PtrVal {
                base: MemBase::Global(g),
                offset: 0,
            }),
            Value::Func(_) => RtVal::Ptr(PtrVal {
                base: MemBase::Stack(u64::MAX - 1),
                offset: 0,
            }),
        })
        .inspect(|_val| {
            let _ = f;
        })
    }

    fn check_writable(&self, base: MemBase) -> Result<(), ExecError> {
        if let MemBase::Global(g) = base {
            if let Some(gl) = self.module.global(g) {
                if !gl.mutable {
                    return Err(ExecError::WriteToConst);
                }
            }
        }
        Ok(())
    }

    fn mem_load(&self, p: PtrVal, ty: Ty) -> Result<RtVal, ExecError> {
        let alloc = self.memory.get(&p.base).ok_or(ExecError::OutOfBounds)?;
        if alloc.elem_ty != ty {
            return Err(ExecError::TypeError(format!(
                "load {ty} from allocation of {}",
                alloc.elem_ty
            )));
        }
        alloc
            .cells
            .get(usize::try_from(p.offset).map_err(|_| ExecError::OutOfBounds)?)
            .copied()
            .ok_or(ExecError::OutOfBounds)
    }

    fn mem_store(&mut self, p: PtrVal, ty: Ty, v: RtVal) -> Result<(), ExecError> {
        self.check_writable(p.base)?;
        let alloc = self.memory.get_mut(&p.base).ok_or(ExecError::OutOfBounds)?;
        if alloc.elem_ty != ty {
            return Err(ExecError::TypeError(format!(
                "store {ty} into allocation of {}",
                alloc.elem_ty
            )));
        }
        let idx = usize::try_from(p.offset).map_err(|_| ExecError::OutOfBounds)?;
        match alloc.cells.get_mut(idx) {
            Some(cell) => {
                *cell = v;
                Ok(())
            }
            None => Err(ExecError::OutOfBounds),
        }
    }

    fn mem_copy(&mut self, dst: PtrVal, src: PtrVal, len: i64) -> Result<(), ExecError> {
        if len < 0 {
            return Err(ExecError::OutOfBounds);
        }
        if len > 0 {
            self.check_writable(dst.base)?;
        }
        let mut tmp = Vec::with_capacity(len as usize);
        {
            let alloc = self.memory.get(&src.base).ok_or(ExecError::OutOfBounds)?;
            for i in 0..len {
                let idx = usize::try_from(src.offset + i).map_err(|_| ExecError::OutOfBounds)?;
                tmp.push(*alloc.cells.get(idx).ok_or(ExecError::OutOfBounds)?);
            }
        }
        let alloc = self
            .memory
            .get_mut(&dst.base)
            .ok_or(ExecError::OutOfBounds)?;
        for (i, v) in tmp.into_iter().enumerate() {
            let idx = usize::try_from(dst.offset + i as i64).map_err(|_| ExecError::OutOfBounds)?;
            match alloc.cells.get_mut(idx) {
                Some(cell) => *cell = v,
                None => return Err(ExecError::OutOfBounds),
            }
        }
        Ok(())
    }

    fn mem_set(&mut self, dst: PtrVal, v: RtVal, len: i64) -> Result<(), ExecError> {
        if len < 0 {
            return Err(ExecError::OutOfBounds);
        }
        if len > 0 {
            self.check_writable(dst.base)?;
        }
        let alloc = self
            .memory
            .get_mut(&dst.base)
            .ok_or(ExecError::OutOfBounds)?;
        for i in 0..len {
            let idx = usize::try_from(dst.offset + i).map_err(|_| ExecError::OutOfBounds)?;
            match alloc.cells.get_mut(idx) {
                Some(cell) => *cell = v,
                None => return Err(ExecError::OutOfBounds),
            }
        }
        Ok(())
    }
}

fn return_err_store(regs: &mut HashMap<InstId, RtVal>, id: InstId) {
    regs.insert(id, RtVal::Undef);
}

fn ptr_ordinal(p: PtrVal) -> i64 {
    // A deterministic total order on pointers: base-discriminated, offset-major.
    let base = match p.base {
        MemBase::Global(g) => g.0 as i64,
        MemBase::Stack(s) => (1i64 << 40) + s as i64,
    };
    base.wrapping_mul(1 << 20).wrapping_add(p.offset)
}

fn const_val(c: Const) -> RtVal {
    match c {
        Const::Int { val, .. } => RtVal::Int(val),
        Const::Float(v) => RtVal::Float(v),
        Const::Null => RtVal::Ptr(PtrVal {
            base: MemBase::Stack(u64::MAX - 2),
            offset: 0,
        }),
        Const::Undef(_) => RtVal::Undef,
    }
}

fn zero_val(ty: Ty) -> RtVal {
    match ty {
        Ty::F64 => RtVal::Float(0.0),
        Ty::Ptr => const_val(Const::Null),
        _ => RtVal::Int(0),
    }
}

/// Evaluates a binary operation with total, deterministic semantics.
///
/// # Errors
///
/// Division and remainder by zero return [`ExecError::DivByZero`]; use of an
/// undefined value propagates as [`RtVal::Undef`] for non-trapping ops.
pub fn eval_bin(op: BinOp, ty: Ty, a: RtVal, b: RtVal) -> Result<RtVal, ExecError> {
    if op.is_float() {
        let (x, y) = (a.as_float()?, b.as_float()?);
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        };
        return Ok(RtVal::Float(r));
    }
    // Undef propagates through non-trapping integer ops.
    if matches!(a, RtVal::Undef) || matches!(b, RtVal::Undef) {
        if op.can_trap() {
            return Err(ExecError::UndefUse);
        }
        return Ok(RtVal::Undef);
    }
    let (x, y) = (a.as_int()?, b.as_int()?);
    let width = ty.bit_width();
    let r = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::SDiv => {
            if y == 0 {
                return Err(ExecError::DivByZero);
            }
            x.wrapping_div(y)
        }
        BinOp::SRem => {
            if y == 0 {
                return Err(ExecError::DivByZero);
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl((y as u32) % width.max(1)),
        BinOp::AShr => x.wrapping_shr((y as u32) % width.max(1)),
        BinOp::LShr => {
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            (((x as u64) & mask) >> ((y as u32) % width.max(1))) as i64
        }
        _ => unreachable!(),
    };
    Ok(RtVal::Int(ty.wrap(r)))
}

/// The static type of a value in the context of `f` (interpreter-internal
/// version of `verifier::value_ty`).
fn value_type_in(f: &crate::module::Function, v: Value) -> Ty {
    match v {
        Value::Inst(id) => f.op(id).result_ty(),
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Ty::I64),
        Value::Const(c) => c.ty(),
        Value::Global(_) | Value::Func(_) => Ty::Ptr,
    }
}

/// Evaluates a cast with total, deterministic semantics (`fptosi` saturates;
/// NaN converts to 0). `zext` requires the source type; this entry point
/// assumes the widest integer source and exists for constant folding where
/// the operand's own type is authoritative (constants carry their type).
pub fn eval_cast(kind: CastKind, to: Ty, v: RtVal) -> Result<RtVal, ExecError> {
    eval_cast_src(kind, to, Ty::I64, v)
}

/// Evaluates a cast given the operand's static type `src` (needed for
/// `zext`, whose result depends on the source width).
pub fn eval_cast_src(kind: CastKind, to: Ty, src: Ty, v: RtVal) -> Result<RtVal, ExecError> {
    if matches!(v, RtVal::Undef) {
        return Ok(RtVal::Undef);
    }
    Ok(match kind {
        CastKind::Trunc => RtVal::Int(to.wrap(v.as_int()?)),
        CastKind::SExt => RtVal::Int(v.as_int()?),
        CastKind::ZExt => {
            // values are stored sign-extended at their source width; zext
            // reinterprets the low `src` bits as unsigned
            let x = v.as_int()?;
            let bits = if src.is_int() { src.bit_width() } else { 64 };
            let r = if bits >= 64 {
                x
            } else {
                x & ((1i64 << bits) - 1)
            };
            RtVal::Int(to.wrap(r))
        }
        CastKind::SiToFp => RtVal::Float(v.as_int()? as f64),
        CastKind::FpToSi => {
            let f = v.as_float()?;
            let i = if f.is_nan() {
                0
            } else if f >= i64::MAX as f64 {
                i64::MAX
            } else if f <= i64::MIN as f64 {
                i64::MIN
            } else {
                f as i64
            };
            RtVal::Int(to.wrap(i))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn run(text: &str, entry: &str, args: &[RtVal]) -> ExecOutcome {
        let m = parse_module(text).expect("parse");
        crate::verifier::verify_module(&m).expect("verify");
        Interpreter::new(&m).run(entry, args)
    }

    #[test]
    fn arithmetic_and_return() {
        let text = r#"
module "m"
fn @f(i64) -> i64 internal {
bb0:
  %0 = mul i64 %arg0, 3:i64
  %1 = add i64 %0, 4:i64
  ret %1
}
"#;
        let out = run(text, "f", &[RtVal::Int(5)]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(19))));
        assert_eq!(out.profile.total_steps, 3);
    }

    #[test]
    fn loop_sums_global_array() {
        let text = r#"
module "m"
global @data : i64 x 4 mutable internal = [10:i64, 20:i64, 30:i64, 40:i64]
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, 4:i64
  condbr %c, bb2, bb3
bb2:
  %p = gep i64, @data, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
"#;
        let out = run(text, "main", &[]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(100))));
    }

    #[test]
    fn external_calls_are_traced() {
        let text = r#"
module "m"
declare @print_i64(i64) -> void
fn @main() -> void internal {
bb0:
  call @print_i64(7:i64) -> void
  call @print_i64(9:i64) -> void
  ret
}
"#;
        let out = run(text, "main", &[]);
        assert_eq!(out.trace.len(), 2);
        assert_eq!(out.trace[0].args, vec![TraceArg::Int(7)]);
        assert_eq!(out.trace[1].args, vec![TraceArg::Int(9)]);
    }

    #[test]
    fn div_by_zero_traps() {
        let text = r#"
module "m"
fn @f(i64) -> i64 internal {
bb0:
  %0 = sdiv i64 10:i64, %arg0
  ret %0
}
"#;
        let out = run(text, "f", &[RtVal::Int(0)]);
        assert_eq!(out.result, Err(ExecError::DivByZero));
    }

    #[test]
    fn out_of_bounds_traps() {
        let text = r#"
module "m"
global @g : i64 x 2 mutable internal = []
fn @f() -> i64 internal {
bb0:
  %p = gep i64, @g, 5:i64
  %v = load i64, %p
  ret %v
}
"#;
        let out = run(text, "f", &[]);
        assert_eq!(out.result, Err(ExecError::OutOfBounds));
    }

    #[test]
    fn recursion_with_depth_limit() {
        let text = r#"
module "m"
fn @fact(i64) -> i64 internal {
bb0:
  %c = icmp sle i64 %arg0, 1:i64
  condbr %c, bb1, bb2
bb1:
  ret 1:i64
bb2:
  %n1 = sub i64 %arg0, 1:i64
  %r = call @fact(%n1) -> i64
  %m = mul i64 %arg0, %r
  ret %m
}
"#;
        let out = run(text, "fact", &[RtVal::Int(10)]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(3628800))));
        let deep = run(text, "fact", &[RtVal::Int(100000)]);
        assert_eq!(deep.result, Err(ExecError::StackOverflow));
    }

    #[test]
    fn fuel_exhaustion() {
        let text = r#"
module "m"
fn @spin() -> void internal {
bb0:
  br bb1
bb1:
  br bb1
}
"#;
        let m = parse_module(text).unwrap();
        let out = Interpreter::with_config(
            &m,
            InterpConfig {
                fuel: 100,
                max_depth: 8,
            },
        )
        .run("spin", &[]);
        assert_eq!(out.result, Err(ExecError::OutOfFuel));
    }

    #[test]
    fn memcpy_and_memset() {
        let text = r#"
module "m"
global @a : i64 x 4 mutable internal = [1:i64, 2:i64, 3:i64, 4:i64]
global @b : i64 x 4 mutable internal = []
fn @main() -> i64 internal {
bb0:
  memcpy i64 @b, @a, 4:i64
  memset i64 @a, 9:i64, 2:i64
  %p = gep i64, @b, 3:i64
  %v1 = load i64, %p
  %v2 = load i64, @a
  %r = add i64 %v1, %v2
  ret %r
}
"#;
        let out = run(text, "main", &[]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(13))));
    }

    #[test]
    fn alloca_frames_are_freed() {
        let text = r#"
module "m"
fn @leaf() -> i64 internal {
bb0:
  %p = alloca i64 x 1
  store i64 42:i64, %p
  %v = load i64, %p
  ret %v
}
fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %s = phi i64 [bb0: 0:i64], [bb2: %s2]
  %c = icmp slt i64 %i, 100:i64
  condbr %c, bb2, bb3
bb2:
  %v = call @leaf() -> i64
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %s
}
"#;
        let out = run(text, "main", &[]);
        assert_eq!(out.result, Ok(Some(RtVal::Int(4200))));
    }

    #[test]
    fn observation_equality_is_usable() {
        let text = r#"
module "m"
declare @print_i64(i64) -> void
fn @main() -> i64 internal {
bb0:
  call @print_i64(1:i64) -> void
  ret 5:i64
}
"#;
        let a = run(text, "main", &[]).observation();
        let b = run(text, "main", &[]).observation();
        assert_eq!(a, b);
    }

    #[test]
    fn shift_semantics_masked() {
        assert_eq!(
            eval_bin(BinOp::Shl, Ty::I64, RtVal::Int(1), RtVal::Int(65)).unwrap(),
            RtVal::Int(2)
        );
        assert_eq!(
            eval_bin(BinOp::LShr, Ty::I8, RtVal::Int(-1), RtVal::Int(1)).unwrap(),
            RtVal::Int(127)
        );
    }

    #[test]
    fn fptosi_saturates() {
        assert_eq!(
            eval_cast(CastKind::FpToSi, Ty::I64, RtVal::Float(f64::NAN)).unwrap(),
            RtVal::Int(0)
        );
        assert_eq!(
            eval_cast(CastKind::FpToSi, Ty::I64, RtVal::Float(1e300)).unwrap(),
            RtVal::Int(i64::MAX)
        );
        assert_eq!(
            eval_cast(CastKind::FpToSi, Ty::I32, RtVal::Float(3.9)).unwrap(),
            RtVal::Int(3)
        );
    }
}
