//! Scalar types of the mini-IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A first-class type.
///
/// The type system is deliberately small: enough to express the integer,
/// floating point and pointer programs that the Oz-style passes manipulate,
/// while keeping the interpreter and cost models simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// No value (function return type only).
    Void,
    /// 1-bit boolean, produced by comparisons.
    I1,
    /// 8-bit signed integer.
    I8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Opaque pointer (element type carried by the memory operation).
    Ptr,
}

impl Ty {
    /// Returns `true` for the integer types (`i1`/`i8`/`i32`/`i64`).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I32 | Ty::I64)
    }

    /// Returns `true` for the floating point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }

    /// Returns `true` if values of this type can be stored in memory.
    pub fn is_storable(self) -> bool {
        !matches!(self, Ty::Void)
    }

    /// Bit width of an integer type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn bit_width(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I32 => 32,
            Ty::I64 => 64,
            _ => panic!("bit_width on non-integer type {self}"),
        }
    }

    /// Size in bytes when stored in memory (used by the size cost models).
    pub fn byte_size(self) -> u32 {
        match self {
            Ty::Void => 0,
            Ty::I1 | Ty::I8 => 1,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
        }
    }

    /// Wraps `v` to the value range of this integer type (two's complement).
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            Ty::I1 => v & 1,
            Ty::I8 => v as i8 as i64,
            Ty::I32 => v as i32 as i64,
            Ty::I64 => v,
            _ => panic!("wrap on non-integer type {self}"),
        }
    }

    /// All types, useful for exhaustive vocabulary construction.
    pub const ALL: [Ty; 7] = [Ty::Void, Ty::I1, Ty::I8, Ty::I32, Ty::I64, Ty::F64, Ty::Ptr];
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Void => "void",
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_respects_width() {
        assert_eq!(Ty::I8.wrap(130), -126);
        assert_eq!(Ty::I8.wrap(-1), -1);
        assert_eq!(Ty::I32.wrap(1 << 33), 0);
        assert_eq!(Ty::I1.wrap(3), 1);
        assert_eq!(Ty::I64.wrap(i64::MIN), i64::MIN);
    }

    #[test]
    fn classification() {
        assert!(Ty::I1.is_int());
        assert!(!Ty::F64.is_int());
        assert!(Ty::F64.is_float());
        assert!(!Ty::Void.is_storable());
        assert!(Ty::Ptr.is_storable());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Ty::Void.byte_size(), 0);
        assert_eq!(Ty::I8.byte_size(), 1);
        assert_eq!(Ty::I32.byte_size(), 4);
        assert_eq!(Ty::Ptr.byte_size(), 8);
    }

    #[test]
    fn display_round_trip_names() {
        for ty in Ty::ALL {
            assert!(!ty.to_string().is_empty());
        }
    }
}
