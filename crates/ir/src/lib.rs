//! A miniature SSA intermediate representation modelled after LLVM IR.
//!
//! This crate is the compiler substrate for the POSET-RL reproduction. It
//! provides everything the optimization passes, cost models, embeddings and
//! the RL environment need:
//!
//! - a typed, SSA-form IR ([`Module`], [`Function`], [`Block`], [`Inst`]),
//! - a convenient [`builder::FunctionBuilder`] for constructing programs,
//! - a human-readable textual format with a [`printer`] and [`parser`],
//! - a structural/SSA [`verifier`],
//! - standard [`analysis`] passes (CFG, dominators, natural loops, liveness,
//!   use-def chains),
//! - a reference [`interp`] interpreter used to check that optimizations
//!   preserve observable semantics and to profile dynamic execution.
//!
//! # Example
//!
//! ```
//! use posetrl_ir::builder::ModuleBuilder;
//! use posetrl_ir::{Ty, Value, Const};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.begin_function("add1", vec![Ty::I64], Ty::I64);
//! {
//!     let mut fb = mb.func_builder(f);
//!     let one = Value::Const(Const::int(Ty::I64, 1));
//!     let sum = fb.add(Ty::I64, Value::Arg(0), one);
//!     fb.ret(Some(sum));
//! }
//! let module = mb.finish();
//! assert!(posetrl_ir::verifier::verify_module(&module).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod hash;
pub mod inst;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use hash::{
    digest_str, fold_module_hash, function_fingerprint, function_hash, function_hashes,
    globals_fingerprint, module_hash, module_header_hash, FunctionHash, ModuleHash,
};
pub use inst::{BinOp, CastKind, FloatPred, Inst, InstId, IntPred, Op};
pub use module::{Block, BlockId, FnAttrs, FuncId, Function, Global, GlobalId, Linkage, Module};
pub use types::Ty;
pub use value::{Const, Value};
pub use verifier::{SourceLoc, VerifyError};
