//! The Oz Dependence Graph (ODG) and the POSET-RL action spaces.
//!
//! The paper defines two ways to build the RL action space out of LLVM's
//! `-Oz` pass sequence:
//!
//! 1. **Manual grouping** (Table II): 15 sub-sequences grouped by pass
//!    functionality — [`manual::MANUAL_SUBSEQUENCES`].
//! 2. **ODG walks** (Table III): build a directed graph whose nodes are the
//!    Oz passes with an edge for every consecutive pair, pick *critical
//!    nodes* of degree ≥ 8, and collect the walks between critical nodes —
//!    [`graph::OzDependenceGraph`] and [`walks::derive_subsequences`]. The
//!    paper's resulting 34 sub-sequences are kept verbatim in
//!    [`walks::ODG_SUBSEQUENCES`].
//!
//! [`ActionSpace`] packages either set for the RL environment.
//!
//! # Example
//!
//! ```
//! use posetrl_odg::{graph::OzDependenceGraph, ActionSpace};
//!
//! let g = OzDependenceGraph::from_oz();
//! let critical = g.critical_nodes(8);
//! assert!(critical.iter().any(|(n, _)| *n == "simplifycfg"));
//!
//! let space = ActionSpace::odg();
//! assert_eq!(space.len(), 34);
//! ```

pub mod graph;
pub mod manual;
pub mod walks;

use serde::{Deserialize, Serialize};

/// Which action space a model was trained with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionSpaceKind {
    /// Table II: 15 manually grouped sub-sequences.
    Manual,
    /// Table III: 34 ODG-derived sub-sequences.
    Odg,
    /// Table II plus the dependence-gated loop transforms
    /// (`loop-vec`, `loop-fuse`). The paper's 15 sub-sequences keep
    /// their indices; the extras are appended.
    ManualExtended,
    /// Table III plus the dependence-gated loop transforms.
    OdgExtended,
}

impl ActionSpaceKind {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ActionSpaceKind::Manual => "manual",
            ActionSpaceKind::Odg => "ODG",
            ActionSpaceKind::ManualExtended => "manual+depend",
            ActionSpaceKind::OdgExtended => "ODG+depend",
        }
    }
}

/// The appended actions of the extended spaces: each dependence-gated
/// transform is preceded by `loop-simplify` so the canonical-loop matcher
/// sees preheaders and dedicated exits.
pub const DEPEND_SUBSEQUENCES: [&[&str]; 2] = [
    &["loop-simplify", "loop-vec"],
    &["loop-simplify", "loop-fuse"],
];

/// An RL action space: an indexed set of pass sub-sequences.
#[derive(Debug, Clone, Serialize)]
pub struct ActionSpace {
    kind: ActionSpaceKind,
    subsequences: Vec<Vec<&'static str>>,
}

impl ActionSpace {
    /// The manual (Table II) action space.
    pub fn manual() -> ActionSpace {
        ActionSpace {
            kind: ActionSpaceKind::Manual,
            subsequences: manual::MANUAL_SUBSEQUENCES
                .iter()
                .map(|s| s.to_vec())
                .collect(),
        }
    }

    /// The ODG (Table III) action space.
    pub fn odg() -> ActionSpace {
        ActionSpace {
            kind: ActionSpaceKind::Odg,
            subsequences: walks::ODG_SUBSEQUENCES.iter().map(|s| s.to_vec()).collect(),
        }
    }

    /// Table II extended with the dependence-gated loop transforms
    /// ([`DEPEND_SUBSEQUENCES`]). The paper-pinned 15 actions keep their
    /// indices, so a policy trained on [`ActionSpace::manual`] transfers.
    pub fn manual_extended() -> ActionSpace {
        let mut s = ActionSpace::manual();
        s.kind = ActionSpaceKind::ManualExtended;
        s.subsequences
            .extend(DEPEND_SUBSEQUENCES.iter().map(|s| s.to_vec()));
        s
    }

    /// Table III extended with the dependence-gated loop transforms.
    pub fn odg_extended() -> ActionSpace {
        let mut s = ActionSpace::odg();
        s.kind = ActionSpaceKind::OdgExtended;
        s.subsequences
            .extend(DEPEND_SUBSEQUENCES.iter().map(|s| s.to_vec()));
        s
    }

    /// Builds the action space of `kind`.
    pub fn of(kind: ActionSpaceKind) -> ActionSpace {
        match kind {
            ActionSpaceKind::Manual => ActionSpace::manual(),
            ActionSpaceKind::Odg => ActionSpace::odg(),
            ActionSpaceKind::ManualExtended => ActionSpace::manual_extended(),
            ActionSpaceKind::OdgExtended => ActionSpace::odg_extended(),
        }
    }

    /// The kind of this space.
    pub fn kind(&self) -> ActionSpaceKind {
        self.kind
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.subsequences.len()
    }

    /// Returns `true` if the space has no actions (never for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.subsequences.is_empty()
    }

    /// The sub-sequence for action index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn subsequence(&self, i: usize) -> &[&'static str] {
        &self.subsequences[i]
    }

    /// All sub-sequences.
    pub fn subsequences(&self) -> &[Vec<&'static str>] {
        &self.subsequences
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_opt::manager::PassManager;

    #[test]
    fn action_spaces_have_paper_sizes() {
        assert_eq!(
            ActionSpace::manual().len(),
            15,
            "Table II has 15 sub-sequences"
        );
        assert_eq!(
            ActionSpace::odg().len(),
            34,
            "Table III has 34 sub-sequences"
        );
    }

    #[test]
    fn extended_spaces_append_without_renumbering() {
        let manual = ActionSpace::manual();
        let ext = ActionSpace::manual_extended();
        assert_eq!(ext.len(), manual.len() + DEPEND_SUBSEQUENCES.len());
        for (i, seq) in manual.subsequences().iter().enumerate() {
            assert_eq!(ext.subsequence(i), seq.as_slice(), "pinned index {i}");
        }
        assert_eq!(ext.subsequence(15), ["loop-simplify", "loop-vec"]);
        assert_eq!(ext.subsequence(16), ["loop-simplify", "loop-fuse"]);
        let odg_ext = ActionSpace::odg_extended();
        assert_eq!(odg_ext.len(), 36);
        assert_eq!(odg_ext.subsequence(34), ["loop-simplify", "loop-vec"]);
        assert_eq!(ActionSpace::of(ActionSpaceKind::OdgExtended).len(), 36);
        assert_eq!(odg_ext.kind().name(), "ODG+depend");
    }

    #[test]
    fn every_action_resolves_to_registered_passes() {
        let pm = PassManager::new();
        for space in [
            ActionSpace::manual(),
            ActionSpace::odg(),
            ActionSpace::manual_extended(),
            ActionSpace::odg_extended(),
        ] {
            for (i, seq) in space.subsequences().iter().enumerate() {
                for pass in seq {
                    assert!(
                        pm.has_pass(pass),
                        "{} action {i}: pass '{pass}' not registered",
                        space.kind().name()
                    );
                }
            }
        }
    }

    #[test]
    fn subsequence_indexing_matches_tables() {
        let odg = ActionSpace::odg();
        assert_eq!(odg.subsequence(5), ["instcombine"]);
        assert_eq!(odg.subsequence(22), ["simplifycfg"]);
        let manual = ActionSpace::manual();
        assert_eq!(
            manual.subsequence(1),
            [
                "ipsccp",
                "called-value-propagation",
                "attributor",
                "globalopt"
            ]
        );
    }
}
