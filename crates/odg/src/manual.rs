//! Table II: the 15 manually grouped sub-sequences.
//!
//! Transcribed from the paper with its OCR artifacts corrected against the
//! Oz sequence of Table I (`-lessa` → `-lcssa`, `-simplifyefg` →
//! `-simplifycfg`, `-adee` → `-adce`, `-alignmentfromassumptions` →
//! `-alignment-from-assumptions`).

/// The 15 manual sub-sequences, in the paper's order (index 0 = S.No. 1).
pub const MANUAL_SUBSEQUENCES: [&[&str]; 15] = [
    // 1: initial cleanup + scalar promotion
    &[
        "ee-instrument",
        "simplifycfg",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "mem2reg",
    ],
    // 2: module-level optimizations
    &[
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
    ],
    // 3: signature + peephole cleanup
    &["deadargelim", "instcombine", "simplifycfg"],
    // 4: inlining
    &["prune-eh", "inline", "functionattrs", "barrier"],
    // 5: memory-aware scalar optimizations
    &[
        "sroa",
        "early-cse-memssa",
        "speculative-execution",
        "jump-threading",
        "correlated-propagation",
    ],
    // 6: CFG + algebraic cleanup
    &[
        "simplifycfg",
        "instcombine",
        "tailcallelim",
        "simplifycfg",
        "reassociate",
    ],
    // 7: rotation + LICM + unswitching
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "licm",
        "loop-unswitch",
        "simplifycfg",
        "instcombine",
    ],
    // 8: induction variables + idioms + unrolling
    &[
        "loop-simplify",
        "lcssa",
        "indvars",
        "loop-idiom",
        "loop-deletion",
        "loop-unroll",
    ],
    // 9: redundancy elimination
    &[
        "mldst-motion",
        "gvn",
        "memcpyopt",
        "sccp",
        "bdce",
        "instcombine",
        "jump-threading",
        "correlated-propagation",
        "dse",
    ],
    // 10: LICM + aggressive DCE
    &[
        "loop-simplify",
        "lcssa",
        "licm",
        "adce",
        "simplifycfg",
        "instcombine",
    ],
    // 11: late module-level cleanup
    &[
        "barrier",
        "elim-avail-extern",
        "rpo-functionattrs",
        "globalopt",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
    ],
    // 12: distribution + vectorization
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "loop-distribute",
        "loop-vectorize",
    ],
    // 13: load elimination + cleanup
    &[
        "loop-simplify",
        "loop-load-elim",
        "instcombine",
        "simplifycfg",
        "instcombine",
    ],
    // 14: late unrolling + LICM
    &[
        "loop-simplify",
        "lcssa",
        "loop-unroll",
        "instcombine",
        "loop-simplify",
        "lcssa",
        "licm",
        "alignment-from-assumptions",
    ],
    // 15: final size cleanup
    &[
        "strip-dead-prototypes",
        "globaldce",
        "constmerge",
        "loop-simplify",
        "lcssa",
        "loop-sink",
        "instsimplify",
        "div-rem-pairs",
        "simplifycfg",
    ],
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifteen_groups() {
        assert_eq!(MANUAL_SUBSEQUENCES.len(), 15);
    }

    #[test]
    fn every_pass_appears_in_the_oz_sequence() {
        let oz: HashSet<&str> = posetrl_opt::pipelines::oz().into_iter().collect();
        for (i, seq) in MANUAL_SUBSEQUENCES.iter().enumerate() {
            for pass in *seq {
                assert!(
                    oz.contains(pass),
                    "group {}: '{pass}' is not an Oz pass",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn groups_cover_every_unique_oz_pass() {
        let covered: HashSet<&str> = MANUAL_SUBSEQUENCES
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        let oz: HashSet<&str> = posetrl_opt::pipelines::oz().into_iter().collect();
        let missing: Vec<&&str> = oz.iter().filter(|p| !covered.contains(*p)).collect();
        assert!(
            missing.is_empty(),
            "passes not covered by any manual group: {missing:?}"
        );
    }
}
