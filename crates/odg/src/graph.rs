//! The Oz Dependence Graph.
//!
//! Nodes are the unique transformation passes of the `-Oz` sequence; for
//! every consecutive pair `(a, b)` in the sequence there is one edge
//! `a → b` (deduplicated). Nodes whose total degree reaches the threshold
//! `k` are *critical nodes*; the paper chooses `k ≥ 8`, which selects
//! `simplifycfg`, `instcombine` and `loop-simplify`.
//!
//! (The paper's prose describes the edge for "`simplifycfg` appears after
//! `instcombine`" as pointing from `simplifycfg` to `instcombine`, while
//! its walk examples follow the forward program order; degrees are
//! identical either way, and we store edges in forward order so that walks
//! read like pipelines.)

use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// The ODG.
#[derive(Debug, Clone, Serialize)]
pub struct OzDependenceGraph {
    nodes: Vec<&'static str>,
    /// Forward edges `a -> b` (deduplicated, order-preserving).
    edges: Vec<(&'static str, &'static str)>,
}

impl OzDependenceGraph {
    /// Builds the ODG from an arbitrary pass sequence.
    pub fn from_sequence(seq: &[&'static str]) -> OzDependenceGraph {
        let mut nodes = Vec::new();
        let mut seen_nodes = BTreeSet::new();
        for &p in seq {
            if seen_nodes.insert(p) {
                nodes.push(p);
            }
        }
        let mut edges = Vec::new();
        let mut seen_edges = BTreeSet::new();
        for w in seq.windows(2) {
            let e = (w[0], w[1]);
            if e.0 != e.1 && seen_edges.insert(e) {
                edges.push(e);
            }
        }
        OzDependenceGraph { nodes, edges }
    }

    /// Builds the ODG of LLVM 10's `-Oz` sequence (Table I).
    pub fn from_oz() -> OzDependenceGraph {
        let seq = posetrl_opt::pipelines::oz();
        Self::from_sequence(&seq)
    }

    /// The node set, in first-appearance order.
    pub fn nodes(&self) -> &[&'static str] {
        &self.nodes
    }

    /// The deduplicated edge set, in first-appearance order.
    pub fn edges(&self) -> &[(&'static str, &'static str)] {
        &self.edges
    }

    /// Out-neighbors of `node`, in edge order.
    pub fn successors(&self, node: &str) -> Vec<&'static str> {
        self.edges
            .iter()
            .filter(|(a, _)| *a == node)
            .map(|(_, b)| *b)
            .collect()
    }

    /// Total degree (in + out) per node.
    pub fn degrees(&self) -> BTreeMap<&'static str, usize> {
        let mut deg: BTreeMap<&'static str, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for (a, b) in &self.edges {
            *deg.get_mut(a).unwrap() += 1;
            *deg.get_mut(b).unwrap() += 1;
        }
        deg
    }

    /// Nodes with degree ≥ `k`, most-connected first.
    pub fn critical_nodes(&self, k: usize) -> Vec<(&'static str, usize)> {
        let mut v: Vec<(&'static str, usize)> = self
            .degrees()
            .into_iter()
            .filter(|(_, d)| *d >= k)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Returns `true` if `a -> b` is an ODG edge (in either stored
    /// direction, since the paper's prose and examples disagree on edge
    /// orientation and walks must respect adjacency, not direction).
    pub fn adjacent(&self, a: &str, b: &str) -> bool {
        self.edges
            .iter()
            .any(|(x, y)| (*x == a && *y == b) || (*x == b && *y == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oz_graph_has_54_nodes() {
        let g = OzDependenceGraph::from_oz();
        assert_eq!(g.nodes().len(), 54, "54 unique Oz passes");
    }

    #[test]
    fn paper_critical_nodes_at_k8() {
        // "We choose a degree k >= 8 ... simplifycfg, instcombine and
        // loop-simplify ... degree of 11, 10 and 8 respectively."
        let g = OzDependenceGraph::from_oz();
        let critical = g.critical_nodes(8);
        let names: Vec<&str> = critical.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"simplifycfg"), "critical: {critical:?}");
        assert!(names.contains(&"instcombine"), "critical: {critical:?}");
        assert!(names.contains(&"loop-simplify"), "critical: {critical:?}");
        let deg = g.degrees();
        assert_eq!(deg["simplifycfg"], 11, "degrees: {deg:?}");
        assert_eq!(deg["instcombine"], 10);
        assert_eq!(deg["loop-simplify"], 8);
    }

    #[test]
    fn edges_are_consecutive_pairs() {
        let g = OzDependenceGraph::from_sequence(&["a", "b", "c", "a", "b"]);
        assert_eq!(g.edges(), &[("a", "b"), ("b", "c"), ("c", "a")]);
        assert_eq!(
            g.degrees()["a"],
            2,
            "a: one outgoing (a,b) + one incoming (c,a)"
        );
        assert_eq!(g.degrees()["b"], 2);
        assert!(g.adjacent("a", "b"));
        assert!(g.adjacent("b", "a"), "adjacency is orientation-insensitive");
        let line = OzDependenceGraph::from_sequence(&["a", "b", "c"]);
        assert!(!line.adjacent("a", "c"));
    }

    #[test]
    fn self_pairs_are_not_edges() {
        let g = OzDependenceGraph::from_sequence(&["x", "x", "y"]);
        assert_eq!(g.edges(), &[("x", "y")]);
    }
}
