//! Table III: the 34 ODG-derived sub-sequences, plus the walk-derivation
//! algorithm (Section IV-B).

use crate::graph::OzDependenceGraph;
use std::collections::BTreeSet;

/// The paper's 34 ODG sub-sequences (Table III), index 0 = S.No. 1.
///
/// Transcribed verbatim (with the same OCR normalizations as Table II).
pub const ODG_SUBSEQUENCES: [&[&str]; 34] = [
    // 1
    &[
        "instcombine",
        "barrier",
        "elim-avail-extern",
        "rpo-functionattrs",
        "globalopt",
        "globaldce",
        "constmerge",
    ],
    // 2
    &[
        "instcombine",
        "barrier",
        "elim-avail-extern",
        "rpo-functionattrs",
        "globalopt",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
    ],
    // 3
    &[
        "instcombine",
        "barrier",
        "elim-avail-extern",
        "rpo-functionattrs",
        "globalopt",
        "mem2reg",
        "deadargelim",
    ],
    // 4
    &[
        "instcombine",
        "jump-threading",
        "correlated-propagation",
        "dse",
    ],
    // 5
    &["instcombine", "jump-threading", "correlated-propagation"],
    // 6
    &["instcombine"],
    // 7
    &["instcombine", "tailcallelim"],
    // 8
    &[
        "loop-simplify",
        "lcssa",
        "indvars",
        "loop-idiom",
        "loop-deletion",
        "loop-unroll",
    ],
    // 9
    &[
        "loop-simplify",
        "lcssa",
        "indvars",
        "loop-idiom",
        "loop-deletion",
        "loop-unroll",
        "mldst-motion",
        "gvn",
        "memcpyopt",
        "sccp",
        "bdce",
    ],
    // 10
    &["loop-simplify", "lcssa", "licm", "adce"],
    // 11
    &[
        "loop-simplify",
        "lcssa",
        "licm",
        "alignment-from-assumptions",
        "strip-dead-prototypes",
        "globaldce",
        "constmerge",
    ],
    // 12
    &[
        "loop-simplify",
        "lcssa",
        "licm",
        "alignment-from-assumptions",
        "strip-dead-prototypes",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
    ],
    // 13
    &["loop-simplify", "lcssa", "licm", "loop-unswitch"],
    // 14
    &["loop-simplify", "lcssa", "loop-rotate", "licm", "adce"],
    // 15
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "licm",
        "alignment-from-assumptions",
        "strip-dead-prototypes",
        "globaldce",
        "constmerge",
    ],
    // 16
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "licm",
        "alignment-from-assumptions",
        "strip-dead-prototypes",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
    ],
    // 17
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "licm",
        "loop-unswitch",
    ],
    // 18
    &[
        "loop-simplify",
        "lcssa",
        "loop-rotate",
        "loop-distribute",
        "loop-vectorize",
    ],
    // 19
    &[
        "loop-simplify",
        "lcssa",
        "loop-sink",
        "instsimplify",
        "div-rem-pairs",
        "simplifycfg",
    ],
    // 20
    &["loop-simplify", "lcssa", "loop-unroll"],
    // 21
    &[
        "loop-simplify",
        "lcssa",
        "loop-unroll",
        "mldst-motion",
        "gvn",
        "memcpyopt",
        "sccp",
        "bdce",
    ],
    // 22
    &["loop-simplify", "loop-load-elim"],
    // 23
    &["simplifycfg"],
    // 24
    &[
        "simplifycfg",
        "prune-eh",
        "inline",
        "functionattrs",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "globaldce",
        "constmerge",
        "barrier",
    ],
    // 25
    &[
        "simplifycfg",
        "prune-eh",
        "inline",
        "functionattrs",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
        "barrier",
    ],
    // 26
    &[
        "simplifycfg",
        "prune-eh",
        "inline",
        "functionattrs",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "mem2reg",
        "deadargelim",
        "barrier",
    ],
    // 27
    &[
        "simplifycfg",
        "prune-eh",
        "inline",
        "functionattrs",
        "sroa",
        "early-cse-memssa",
        "speculative-execution",
        "jump-threading",
        "correlated-propagation",
        "dse",
        "barrier",
    ],
    // 28
    &[
        "simplifycfg",
        "prune-eh",
        "inline",
        "functionattrs",
        "sroa",
        "early-cse-memssa",
        "speculative-execution",
        "jump-threading",
        "correlated-propagation",
        "barrier",
    ],
    // 29
    &["simplifycfg", "reassociate"],
    // 30
    &[
        "simplifycfg",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "globaldce",
        "constmerge",
    ],
    // 31
    &[
        "simplifycfg",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "globaldce",
        "float2int",
        "lower-constant-intrinsics",
    ],
    // 32
    &[
        "simplifycfg",
        "sroa",
        "early-cse",
        "lower-expect",
        "forceattrs",
        "inferattrs",
        "ipsccp",
        "called-value-propagation",
        "attributor",
        "globalopt",
        "mem2reg",
        "deadargelim",
    ],
    // 33
    &[
        "simplifycfg",
        "sroa",
        "early-cse-memssa",
        "speculative-execution",
        "jump-threading",
        "correlated-propagation",
        "dse",
    ],
    // 34
    &[
        "simplifycfg",
        "sroa",
        "early-cse-memssa",
        "speculative-execution",
        "jump-threading",
        "correlated-propagation",
    ],
];

/// Derives sub-sequences by walking the ODG from each critical node
/// (Section IV-B): follow adjacency from a critical node through
/// non-critical nodes without revisiting, and emit the walk whenever the
/// frontier meets a critical node, an already-visited node, or a dead end.
///
/// `max_len` bounds walk length to keep enumeration tractable.
pub fn derive_subsequences(
    g: &OzDependenceGraph,
    k: usize,
    max_len: usize,
) -> Vec<Vec<&'static str>> {
    let critical: BTreeSet<&'static str> =
        g.critical_nodes(k).into_iter().map(|(n, _)| n).collect();
    let mut out: BTreeSet<Vec<&'static str>> = BTreeSet::new();
    for &start in &critical {
        let mut path = vec![start];
        walk(g, &critical, &mut path, max_len, &mut out);
    }
    out.into_iter().collect()
}

fn walk(
    g: &OzDependenceGraph,
    critical: &BTreeSet<&'static str>,
    path: &mut Vec<&'static str>,
    max_len: usize,
    out: &mut BTreeSet<Vec<&'static str>>,
) {
    let cur = *path.last().expect("non-empty walk");
    let succs = g.successors(cur);
    let mut extended = false;
    for next in succs {
        if path.len() >= max_len || path.contains(&next) {
            continue;
        }
        if critical.contains(next) {
            // the walk ends where another critical node begins
            out.insert(path.clone());
            continue;
        }
        path.push(next);
        walk(g, critical, path, max_len, out);
        path.pop();
        extended = true;
    }
    if !extended {
        out.insert(path.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OzDependenceGraph;
    use std::collections::BTreeSet;

    #[test]
    fn thirty_four_subsequences() {
        assert_eq!(ODG_SUBSEQUENCES.len(), 34);
    }

    #[test]
    fn every_sequence_starts_at_a_critical_node() {
        let g = OzDependenceGraph::from_oz();
        let critical: BTreeSet<&str> = g.critical_nodes(8).into_iter().map(|(n, _)| n).collect();
        for (i, seq) in ODG_SUBSEQUENCES.iter().enumerate() {
            assert!(
                critical.contains(seq[0]),
                "sequence {} starts at non-critical '{}'",
                i + 1,
                seq[0]
            );
        }
    }

    #[test]
    fn sequences_respect_odg_adjacency() {
        // Consecutive passes within a Table III sequence are adjacent in the
        // ODG. The printed table has a handful of OCR-ambiguous joints
        // (line-wrapped "-barrier" suffixes); we require ≥ 92% adjacency and
        // list the known exceptions.
        let g = OzDependenceGraph::from_oz();
        let mut total = 0usize;
        let mut adjacent = 0usize;
        let mut misses = Vec::new();
        for (i, seq) in ODG_SUBSEQUENCES.iter().enumerate() {
            for w in seq.windows(2) {
                total += 1;
                if g.adjacent(w[0], w[1]) {
                    adjacent += 1;
                } else {
                    misses.push((i + 1, w[0], w[1]));
                }
            }
        }
        let frac = adjacent as f64 / total as f64;
        assert!(frac >= 0.92, "adjacency fraction {frac}: misses {misses:?}");
        // all misses involve the table's wrapped "-barrier" suffixes
        for (_, a, b) in &misses {
            assert!(
                *b == "barrier" || *a == "barrier",
                "unexpected non-adjacent pair ({a}, {b}); misses: {misses:?}"
            );
        }
    }

    #[test]
    fn derivation_produces_walks_matching_many_table_rows() {
        let g = OzDependenceGraph::from_oz();
        let derived = derive_subsequences(&g, 8, 16);
        assert!(!derived.is_empty());
        // every derived walk is simple, starts critical, and is adjacent
        let critical: BTreeSet<&str> = g.critical_nodes(8).into_iter().map(|(n, _)| n).collect();
        for w in &derived {
            assert!(critical.contains(w[0]));
            let distinct: BTreeSet<&str> = w.iter().copied().collect();
            assert_eq!(distinct.len(), w.len(), "walk is simple: {w:?}");
            for pair in w.windows(2) {
                assert!(
                    g.adjacent(pair[0], pair[1]),
                    "derived walk breaks adjacency: {w:?}"
                );
            }
        }
        // a healthy share of the paper's curated rows appear verbatim among
        // the derived walks (the paper selected 34 of the possible walks)
        let derived_set: BTreeSet<Vec<&str>> = derived.into_iter().collect();
        let mut hits = 0;
        for seq in ODG_SUBSEQUENCES {
            if derived_set.contains(seq) {
                hits += 1;
            }
        }
        assert!(
            hits >= 10,
            "derived walks reproduce ≥10 of the 34 table rows, got {hits}"
        );
    }

    #[test]
    fn higher_k_means_fewer_or_equal_critical_nodes() {
        let g = OzDependenceGraph::from_oz();
        let mut last = usize::MAX;
        for k in [2, 4, 6, 8, 10, 12] {
            let n = g.critical_nodes(k).len();
            assert!(n <= last);
            last = n;
        }
        assert!(g.critical_nodes(12).is_empty() || g.critical_nodes(12).len() < 3);
    }
}
