//! Diagnostic types shared by all lint analyses and the sanitizer.

use posetrl_ir::SourceLoc;
use serde::Serialize;
use std::fmt;

/// How bad a diagnostic is. Ordered: `Note < Warning < Error`.
///
/// The severity policy keeps a frontend-style corpus clean under
/// `--deny warnings`:
///
/// - [`Severity::Error`]: the module violates IR rules or is semantically
///   broken (use-before-def, constant OOB access, call type mismatch, ...).
///   Well-formed input never produces these; a pass that introduces one has
///   miscompiled.
/// - [`Severity::Warning`]: suspicious and very likely a latent trap
///   (branching on undef, loading from provably uninitialized stack memory).
/// - [`Severity::Note`]: optimization opportunities — dead instructions,
///   unreachable blocks. Deliberately redundant frontend output and
///   pass-created unreachable blocks both land here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// An optimization opportunity, not a defect.
    Note,
    /// Suspicious: very likely a latent bug or trap.
    Warning,
    /// An IR-rule or semantic violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from an analysis, tied to a structured [`SourceLoc`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `use-before-def`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Where in the module the finding points.
    pub loc: SourceLoc,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, loc: SourceLoc, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            loc,
            message: message.into(),
        }
    }

    /// Creates a [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, loc: SourceLoc, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            loc,
            message: message.into(),
        }
    }

    /// Creates a [`Severity::Note`] diagnostic.
    pub fn note(code: &'static str, loc: SourceLoc, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Note,
            loc,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] in {}: {}",
            self.severity, self.code, self.loc, self.message
        )
    }
}

/// Diagnostic codes emitted by the built-in analyses.
pub mod codes {
    /// The structural verifier rejected the module.
    pub const VERIFY: &str = "verify";
    /// An SSA value is used on a path where its definition cannot have run.
    pub const USE_BEFORE_DEF: &str = "use-before-def";
    /// A conditional branch condition may be undef.
    pub const UNDEF_CONTROL: &str = "undef-control";
    /// A possibly-undef operand feeds a trapping operation (div/rem).
    pub const UNDEF_TRAP: &str = "undef-trap";
    /// A possibly-undef value is used as a memory address or length.
    pub const UNDEF_ADDR: &str = "undef-addr";
    /// A memory access at a constant offset is out of bounds.
    pub const CONST_OOB: &str = "const-oob";
    /// A store targets an immutable global.
    pub const CONST_WRITE: &str = "const-write";
    /// A load reads stack memory no store can have initialized.
    pub const UNINIT_LOAD: &str = "uninit-load";
    /// A block is unreachable from the entry.
    pub const UNREACHABLE_BLOCK: &str = "unreachable-block";
    /// A pure instruction has no (transitive) observable use.
    pub const DEAD_INST: &str = "dead-inst";
    /// A call site disagrees with the callee signature.
    pub const CALL_TYPE: &str = "call-type";
    /// Two module symbols share a name.
    pub const DUP_SYMBOL: &str = "dup-symbol";
    /// A trapping operation (div-by-zero, out-of-bounds access) is provable
    /// from value ranges on a reachable path.
    pub const RANGE_TRAP: &str = "range-trap";
    /// A memory operation dereferences a provably null pointer.
    pub const NULL_DEREF: &str = "null-deref";
    /// A conditional branch condition is provably constant.
    pub const DEAD_BRANCH: &str = "dead-branch";
    /// A store to a frame-private slot no reachable instruction may read.
    pub const STORE_DEAD: &str = "store-dead";
    /// A stack address outlives its frame (returned or stored to memory
    /// that survives the call).
    pub const ALIAS_UAF: &str = "alias-uaf";
    /// A loop provably cannot terminate (no exit edge, or the exit
    /// condition never triggers).
    pub const INFINITE_LOOP: &str = "infinite-loop";
    /// An induction variable must wrap around its type before its loop
    /// can exit.
    pub const IV_OVERFLOW: &str = "iv-overflow";
    /// A pointer loaded in a loop may hold a stack slot allocated in a
    /// previous iteration of the same loop (use-after-scope once
    /// dereferenced).
    pub const LOOP_CARRIED_UAF: &str = "loop-carried-uaf";
    /// A memcpy whose source and destination provably overlap without
    /// coinciding: the copy direction is undefined.
    pub const OVERLAP_COPY: &str = "overlap-copy";
}

/// One entry of the lint registry: a stable code, the severity it is
/// emitted at, and the analysis that produces it.
///
/// Codes emitted by more than one analysis (the alias-tightened
/// `const-write`/`uninit-load` variants) list every source and the
/// highest severity any emitter uses.
#[derive(Debug, Clone, Serialize)]
pub struct LintInfo {
    /// The stable machine-readable code.
    pub code: &'static str,
    /// The (highest) severity this code is emitted at.
    pub severity: Severity,
    /// The producing analysis (comma-separated when shared).
    pub analysis: &'static str,
}

/// The full lint registry, in a stable order (`mini-analyze
/// --list-lints`). Every code in [`codes`] appears exactly once.
pub fn registry() -> Vec<LintInfo> {
    let e = |code, severity, analysis| LintInfo {
        code,
        severity,
        analysis,
    };
    vec![
        e(codes::VERIFY, Severity::Error, "verifier"),
        e(codes::USE_BEFORE_DEF, Severity::Error, "dataflow"),
        e(codes::UNDEF_CONTROL, Severity::Warning, "dataflow"),
        e(codes::UNDEF_TRAP, Severity::Warning, "dataflow"),
        e(codes::UNDEF_ADDR, Severity::Warning, "dataflow"),
        e(codes::CONST_OOB, Severity::Error, "dataflow"),
        e(codes::CONST_WRITE, Severity::Error, "dataflow, alias"),
        e(codes::UNINIT_LOAD, Severity::Warning, "dataflow, alias"),
        e(codes::UNREACHABLE_BLOCK, Severity::Note, "dataflow"),
        e(codes::DEAD_INST, Severity::Note, "dataflow"),
        e(codes::CALL_TYPE, Severity::Error, "dataflow"),
        e(codes::DUP_SYMBOL, Severity::Error, "dataflow"),
        e(codes::RANGE_TRAP, Severity::Warning, "absint"),
        e(codes::NULL_DEREF, Severity::Warning, "absint"),
        e(codes::DEAD_BRANCH, Severity::Note, "absint"),
        e(codes::STORE_DEAD, Severity::Note, "alias"),
        e(codes::ALIAS_UAF, Severity::Warning, "alias"),
        e(codes::INFINITE_LOOP, Severity::Warning, "scev"),
        e(codes::IV_OVERFLOW, Severity::Warning, "scev"),
        e(codes::LOOP_CARRIED_UAF, Severity::Warning, "depend"),
        e(codes::OVERLAP_COPY, Severity::Warning, "depend"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn registry_is_complete_and_duplicate_free() {
        let reg = registry();
        let mut codes_seen: Vec<&str> = reg.iter().map(|l| l.code).collect();
        codes_seen.sort_unstable();
        let n = codes_seen.len();
        codes_seen.dedup();
        assert_eq!(codes_seen.len(), n, "duplicate registry entries");
        for must in [
            codes::VERIFY,
            codes::ALIAS_UAF,
            codes::INFINITE_LOOP,
            codes::IV_OVERFLOW,
            codes::LOOP_CARRIED_UAF,
            codes::OVERLAP_COPY,
        ] {
            assert!(codes_seen.contains(&must), "missing {must}");
        }
        assert!(reg.iter().all(|l| !l.analysis.is_empty()));
    }

    #[test]
    fn display_includes_code_and_loc() {
        let d = Diagnostic::error(codes::USE_BEFORE_DEF, SourceLoc::in_func("f"), "bad things");
        let s = d.to_string();
        assert!(s.contains("error[use-before-def]"), "{s}");
        assert!(s.contains("function 'f'"), "{s}");
        assert!(s.contains("bad things"), "{s}");
    }
}
