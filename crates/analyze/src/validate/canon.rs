//! Alpha/structural canonicalization of function bodies — the
//! validator's second fast path.
//!
//! [`canonical_body`] renders a function into a canonical text such
//! that **equal texts imply identical observable behaviour** (over an
//! identical global table). Every normalization applied is exact —
//! semantics-preserving in *both* directions, including undef and trap
//! behaviour — so the fast path can prove a transform without touching
//! the symbolic engine, no matter how loopy the function is:
//!
//! - **Reachability**: blocks are emitted in DFS preorder from the
//!   entry over *folded* edges; unreachable code vanishes.
//! - **Const-branch folding**: a `condbr` whose condition folds to a
//!   concrete constant becomes an edge (undef conditions are left
//!   alone — they trap).
//! - **Chain merging**: a block whose unique reachable predecessor
//!   jumps only to it is spliced into that predecessor, erasing
//!   `br`/label noise (what `simplifycfg` leaves behind).
//! - **Phi folding**: incomings from unreachable predecessors are
//!   pruned; a complete phi with exactly one surviving incoming is an
//!   alias for that value. Incomplete phis (a reachable predecessor
//!   edge missing) are kept verbatim — they carry a trap.
//! - **Pure-expression folding**: never-trapping, effect-free
//!   operations (`Bin` except `sdiv`/`srem`, `icmp`, `fcmp`, casts)
//!   are inlined into their use sites as expression trees, hash-like
//!   via string memoization. This makes the form invariant under dead
//!   pure code, instruction reordering and cross-block code motion of
//!   non-trapping operations (`dce`, `licm` hoists, scheduling).
//! - **Constant folding** through the reference interpreter's own
//!   `eval_bin`/`eval_cast_src`/`IntPred::eval` — the canonical form
//!   cannot diverge from executable semantics — plus the
//!   identity-element simplifications that stay exact under undef
//!   (`x+0`, `x<<0`, `x*1`, `x&-1`, casts to the operand's own type).
//!   Absorbing-element rules (`x*0 → 0`, `x&0 → 0`, `x^x → 0`) are
//!   deliberately **not** applied: they are wrong when `x` is undef.
//! - **Commutative operand sorting** for commutative binops and
//!   `eq`/`ne` comparisons.
//!
//! Anchored operations — everything that can trap, touch memory, call,
//! or merge control flow (`sdiv`/`srem`, `select`, `gep`, loads,
//! stores, calls, allocas, phis) — keep their program order within a
//! block. Dead *allocas* and dead *complete* phis are dropped (neither
//! can trap nor be observed); every other anchored instruction stays.
//!
//! Returns `None` for irregular bodies (a reachable instruction using
//! an unreachable one, expression blow-up past the size cap); the
//! symbolic route handles those.

use posetrl_ir::inst::{BinOp, CastKind, InstId, IntPred, Op};
use posetrl_ir::interp::{eval_bin, eval_cast_src, RtVal};
use posetrl_ir::module::{BlockId, Function, Module};
use posetrl_ir::value::{Const, Value};
use posetrl_ir::Ty;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Hard cap on one rendered expression, guarding against exponential
/// duplication chains (`x1 = a+a; x2 = x1+x1; …`).
const MAX_EXPR_LEN: usize = 8192;

/// True for operations folded into expression trees: effect-free and
/// incapable of trapping for *any* operand values, undef included.
fn is_pure(op: &Op) -> bool {
    match op {
        Op::Bin { op, .. } => !matches!(op, BinOp::SDiv | BinOp::SRem),
        Op::Icmp { .. } | Op::Fcmp { .. } | Op::Cast { .. } => true,
        _ => false,
    }
}

/// The static type of `v` in `f` (for cast-identity and zext folding).
fn value_ty(f: &Function, v: Value) -> Ty {
    match v {
        Value::Inst(id) => f.op(id).result_ty(),
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Ty::I64),
        Value::Const(c) => c.ty(),
        Value::Global(_) | Value::Func(_) => Ty::Ptr,
    }
}

fn rt_of_const(c: Const) -> Option<RtVal> {
    match c {
        Const::Int { val, .. } => Some(RtVal::Int(val)),
        Const::Float(x) => Some(RtVal::Float(x)),
        Const::Undef(_) => Some(RtVal::Undef),
        Const::Null => None,
    }
}

fn render_rt(v: &RtVal, ty: Ty) -> Option<String> {
    match v {
        RtVal::Int(x) => Some(format!("i{ty}.{x}")),
        RtVal::Float(x) => Some(format!("f.{:#x}", x.to_bits())),
        RtVal::Undef => Some(format!("undef.{ty}")),
        RtVal::Ptr(_) => None,
    }
}

struct Canon<'a> {
    m: &'a Module,
    f: &'a Function,
    /// blocks reachable over folded edges
    reachable: HashSet<BlockId>,
    /// folded successor lists per reachable block
    succs: HashMap<BlockId, Vec<BlockId>>,
    /// reachable predecessors per reachable block (folded edges)
    preds: HashMap<BlockId, Vec<BlockId>>,
    /// complete single-incoming phis → their value
    alias: HashMap<InstId, Value>,
    /// memoized constant folds (`None` = not a constant)
    consts: HashMap<InstId, Option<RtVal>>,
    /// memoized expression renders for pure instructions
    exprs: HashMap<InstId, Option<String>>,
    /// anchored instruction → emission number
    anchors: HashMap<InstId, usize>,
    /// block → chain index (phi predecessor tags, branch targets)
    chain_of: HashMap<BlockId, usize>,
}

/// Canonical text of `f`'s body, or `None` if the body is irregular.
/// Equal texts (with equal signatures, over an identical global table)
/// mean observably identical behaviour.
pub fn canonical_body(m: &Module, f: &Function) -> Option<String> {
    let mut c = Canon {
        m,
        f,
        reachable: HashSet::new(),
        succs: HashMap::new(),
        preds: HashMap::new(),
        alias: HashMap::new(),
        consts: HashMap::new(),
        exprs: HashMap::new(),
        anchors: HashMap::new(),
        chain_of: HashMap::new(),
    };
    c.fixpoint();
    c.render()
}

impl<'a> Canon<'a> {
    /// Iterates reachability / branch folding / phi aliasing to a fixed
    /// point (each round only ever shrinks the edge set, so it
    /// terminates in at most `|blocks|` rounds).
    fn fixpoint(&mut self) {
        loop {
            // fold terminators under the current alias map
            self.consts.clear();
            let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for b in self.f.block_ids() {
                let term = match self.f.terminator(b) {
                    Some(t) => self.f.op(t),
                    None => continue,
                };
                let s = match term {
                    Op::Br { target } => vec![*target],
                    Op::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => match self.fold_const(*cond, 0) {
                        Some(RtVal::Int(v)) => vec![if v != 0 { *then_bb } else { *else_bb }],
                        // undef conditions trap: keep the fork verbatim
                        _ => vec![*then_bb, *else_bb],
                    },
                    _ => Vec::new(),
                };
                succs.insert(b, s);
            }
            // reachability over the folded edges
            let mut reach = HashSet::new();
            let mut stack = vec![self.f.entry];
            while let Some(b) = stack.pop() {
                if !reach.insert(b) {
                    continue;
                }
                for s in succs.get(&b).into_iter().flatten() {
                    if !reach.contains(s) {
                        stack.push(*s);
                    }
                }
            }
            let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for &b in &reach {
                for s in succs.get(&b).into_iter().flatten() {
                    let e = preds.entry(*s).or_default();
                    if !e.contains(&b) {
                        e.push(b);
                    }
                }
            }
            // re-derive phi aliases: complete phis with one live incoming
            let mut alias: HashMap<InstId, Value> = HashMap::new();
            for &b in &reach {
                let Some(block) = self.f.block(b) else {
                    continue;
                };
                let live_preds: HashSet<BlockId> =
                    preds.get(&b).into_iter().flatten().copied().collect();
                for &id in &block.insts {
                    if let Op::Phi { incomings, .. } = self.f.op(id) {
                        let live: Vec<_> = incomings
                            .iter()
                            .filter(|(p, _)| live_preds.contains(p))
                            .collect();
                        let complete = live_preds
                            .iter()
                            .all(|p| incomings.iter().any(|(q, _)| q == p));
                        if complete && live.len() == 1 {
                            alias.insert(id, live[0].1);
                        }
                    }
                }
            }
            let fixed = reach == self.reachable && alias == self.alias;
            self.reachable = reach;
            self.succs = succs;
            self.preds = preds;
            self.alias = alias;
            if fixed {
                break;
            }
        }
        self.consts.clear();
    }

    /// Constant-folds `v` through pure instructions and phi aliases,
    /// delegating the arithmetic to the reference interpreter.
    fn fold_const(&mut self, v: Value, depth: usize) -> Option<RtVal> {
        if depth > 256 {
            return None; // alias cycles in degenerate (unreachable) CFGs
        }
        match v {
            Value::Const(c) => rt_of_const(c),
            Value::Inst(id) => {
                if let Some(&a) = self.alias.get(&id) {
                    return self.fold_const(a, depth + 1);
                }
                if let Some(cached) = self.consts.get(&id) {
                    return *cached;
                }
                let r = self.fold_inst(id, depth);
                self.consts.insert(id, r);
                r
            }
            _ => None,
        }
    }

    fn fold_inst(&mut self, id: InstId, depth: usize) -> Option<RtVal> {
        let op = self.f.op(id).clone();
        if !is_pure(&op) {
            return None;
        }
        match op {
            Op::Bin { op, ty, lhs, rhs } => {
                let (a, b) = (
                    self.fold_const(lhs, depth + 1)?,
                    self.fold_const(rhs, depth + 1)?,
                );
                eval_bin(op, ty, a, b).ok()
            }
            Op::Icmp { pred, lhs, rhs, .. } => {
                let (a, b) = (
                    self.fold_const(lhs, depth + 1)?,
                    self.fold_const(rhs, depth + 1)?,
                );
                match (a, b) {
                    (RtVal::Undef, _) | (_, RtVal::Undef) => Some(RtVal::Undef),
                    (RtVal::Int(x), RtVal::Int(y)) => Some(RtVal::Int(pred.eval(x, y) as i64)),
                    _ => None,
                }
            }
            Op::Cast { kind, to, val } => {
                let v = self.fold_const(val, depth + 1)?;
                let src = value_ty(self.f, val);
                eval_cast_src(kind, to, src, v).ok()
            }
            Op::Fcmp { pred, lhs, rhs } => {
                let (a, b) = (
                    self.fold_const(lhs, depth + 1)?,
                    self.fold_const(rhs, depth + 1)?,
                );
                match (a, b) {
                    (RtVal::Undef, _) | (_, RtVal::Undef) => Some(RtVal::Undef),
                    (RtVal::Float(x), RtVal::Float(y)) => Some(RtVal::Int(pred.eval(x, y) as i64)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Renders `v` as a canonical expression. `None` = irregular.
    fn expr(&mut self, v: Value, depth: usize) -> Option<String> {
        if depth > 256 {
            return None;
        }
        match v {
            Value::Arg(i) => Some(format!("a{i}")),
            Value::Const(c) => match rt_of_const(c) {
                Some(rt) => render_rt(&rt, c.ty()),
                None => Some("null".into()),
            },
            Value::Global(g) => Some(format!("g{}", g.0)),
            Value::Func(fid) => Some(format!("@{}", self.m.func(fid)?.name)),
            Value::Inst(id) => {
                if let Some(&a) = self.alias.get(&id) {
                    return self.expr(a, depth + 1);
                }
                if let Some(&k) = self.anchors.get(&id) {
                    return Some(format!("A{k}"));
                }
                if let Some(cached) = self.exprs.get(&id) {
                    return cached.clone();
                }
                // constant fold first: exact interpreter semantics
                let ty = self.f.op(id).result_ty();
                let rendered = if let Some(rt) = self.fold_const(v, depth) {
                    render_rt(&rt, ty)
                } else {
                    self.render_pure(id, depth)
                };
                let rendered = rendered.filter(|s| s.len() <= MAX_EXPR_LEN);
                self.exprs.insert(id, rendered.clone());
                rendered
            }
        }
    }

    fn render_pure(&mut self, id: InstId, depth: usize) -> Option<String> {
        let op = self.f.op(id).clone();
        if !is_pure(&op) {
            return None; // anchored instruction without an anchor number
        }
        match op {
            Op::Bin { op, ty, lhs, rhs } => {
                let mut a = self.expr(lhs, depth + 1)?;
                let mut b = self.expr(rhs, depth + 1)?;
                if op.is_commutative() && b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                // integer identity elements — exact even when the
                // operand is undef (float `x+0.0` is NOT an identity:
                // `-0.0 + 0.0 == 0.0`)
                if !op.is_float() {
                    let zero = format!("i{ty}.0");
                    let one = format!("i{ty}.1");
                    let ones = format!("i{ty}.{}", ty.wrap(-1));
                    match op {
                        BinOp::Add | BinOp::Or | BinOp::Xor if a == zero => return Some(b),
                        BinOp::Add | BinOp::Or | BinOp::Xor if b == zero => return Some(a),
                        BinOp::Sub | BinOp::Shl | BinOp::AShr | BinOp::LShr if b == zero => {
                            return Some(a)
                        }
                        BinOp::Mul if a == one => return Some(b),
                        BinOp::Mul if b == one => return Some(a),
                        BinOp::And if a == ones => return Some(b),
                        BinOp::And if b == ones => return Some(a),
                        _ => {}
                    }
                }
                Some(format!("{}.{ty}({a},{b})", bin_name(op)))
            }
            Op::Icmp { pred, ty, lhs, rhs } => {
                let mut a = self.expr(lhs, depth + 1)?;
                let mut b = self.expr(rhs, depth + 1)?;
                if matches!(pred, IntPred::Eq | IntPred::Ne) && b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                Some(format!("icmp.{pred:?}.{ty}({a},{b})"))
            }
            Op::Fcmp { pred, lhs, rhs } => {
                let a = self.expr(lhs, depth + 1)?;
                let b = self.expr(rhs, depth + 1)?;
                Some(format!("fcmp.{pred:?}({a},{b})"))
            }
            Op::Cast { kind, to, val } => {
                let src = value_ty(self.f, val);
                let e = self.expr(val, depth + 1)?;
                // casting to the operand's own type is the identity
                // (sext/trunc/zext keep the stored sign-extended value)
                if src == to && !matches!(kind, CastKind::SiToFp | CastKind::FpToSi) {
                    return Some(e);
                }
                Some(format!("{}.{src}->{to}({e})", cast_name(kind)))
            }
            _ => None,
        }
    }

    /// Emission: chains in DFS order, anchored instructions numbered in
    /// emission order, then every anchored op and terminator rendered.
    fn render(&mut self) -> Option<String> {
        // chain leaders: entry, plus every reachable block that is not
        // the unique jump-only continuation of its unique predecessor
        let mut leader: Vec<BlockId> = Vec::new();
        for &b in &self.reachable {
            if b == self.f.entry {
                leader.push(b);
                continue;
            }
            let ps = self.preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[]);
            let merged =
                ps.len() == 1 && self.succs.get(&ps[0]).map(|s| s.as_slice()) == Some(&[b][..]);
            if !merged {
                leader.push(b);
            }
        }
        let leaders: HashSet<BlockId> = leader.iter().copied().collect();

        // chain membership: follow unique-jump successors from leaders
        let mut chain_blocks: Vec<Vec<BlockId>> = Vec::new();
        let mut chain_index: HashMap<BlockId, usize> = HashMap::new();
        for &l in &leaders {
            let mut blocks = vec![l];
            let mut cur = l;
            loop {
                let next = match self.succs.get(&cur).map(|s| s.as_slice()) {
                    Some([n]) if !leaders.contains(n) => *n,
                    _ => break,
                };
                blocks.push(next);
                cur = next;
            }
            chain_blocks.push(blocks);
            chain_index.insert(l, chain_blocks.len() - 1);
        }
        // DFS preorder over chains from the entry chain
        let mut order: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack = vec![chain_index[&self.f.entry]];
        while let Some(ci) = stack.pop() {
            if !seen.insert(ci) {
                continue;
            }
            order.push(ci);
            let tail = *chain_blocks[ci].last().unwrap();
            for s in self
                .succs
                .get(&tail)
                .into_iter()
                .flatten()
                .copied()
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
            {
                let si = chain_index[&s];
                if !seen.contains(&si) {
                    stack.push(si);
                }
            }
        }
        // canonical chain numbering and anchor numbering (emission order)
        self.chain_of.clear();
        for (pos, &ci) in order.iter().enumerate() {
            for &b in &chain_blocks[ci] {
                self.chain_of.insert(b, pos);
            }
        }
        let live = self.live_anchors(&order, &chain_blocks)?;
        self.anchors.clear();
        self.exprs.clear();
        let mut n = 0usize;
        for &ci in &order {
            for &b in &chain_blocks[ci] {
                for &id in &self.f.block(b)?.insts {
                    if live.contains(&id) && self.f.op(id).result_ty() != Ty::Void {
                        self.anchors.insert(id, n);
                        n += 1;
                    }
                }
            }
        }

        // emit
        let mut out = String::new();
        for (pos, &ci) in order.iter().enumerate() {
            writeln!(out, "L{pos}:").ok()?;
            for &b in &chain_blocks[ci] {
                let insts = self.f.block(b)?.insts.clone();
                for &id in &insts {
                    if !live.contains(&id) {
                        continue;
                    }
                    let line = self.render_anchor(id, b)?;
                    match self.anchors.get(&id) {
                        Some(k) => writeln!(out, "  A{k} = {line}").ok()?,
                        None => writeln!(out, "  {line}").ok()?,
                    }
                }
            }
        }
        Some(out)
    }

    /// The anchored instructions that must be emitted: everything
    /// effectful or possibly-trapping, plus the phis and allocas
    /// transitively referenced by those. Dead allocas and dead
    /// *complete* phis vanish; incomplete phis always stay (they trap
    /// when entered along the missing edge).
    fn live_anchors(
        &mut self,
        order: &[usize],
        chain_blocks: &[Vec<BlockId>],
    ) -> Option<HashSet<InstId>> {
        let mut live: HashSet<InstId> = HashSet::new();
        let mut work: Vec<Value> = Vec::new();
        for &ci in order {
            for &b in &chain_blocks[ci] {
                let live_preds: HashSet<BlockId> =
                    self.preds.get(&b).into_iter().flatten().copied().collect();
                let is_tail = chain_blocks[ci].last() == Some(&b);
                for &id in &self.f.block(b)?.insts {
                    let op = self.f.op(id);
                    if is_pure(op) || self.alias.contains_key(&id) {
                        continue;
                    }
                    let keep = match op {
                        // a complete phi or an alloca is unobservable
                        // until referenced
                        Op::Alloca { .. } => false,
                        Op::Phi { incomings, .. } => !live_preds
                            .iter()
                            .all(|p| incomings.iter().any(|(q, _)| q == p)),
                        // a terminator folded away by branch folding is
                        // replaced by the chain structure itself
                        Op::Br { .. } | Op::CondBr { .. } => is_tail,
                        _ => true,
                    };
                    if keep && live.insert(id) {
                        work.extend(self.anchor_deps(id, b));
                    }
                }
            }
        }
        // transitive phi/alloca liveness through pure expressions
        let mut guard = 0usize;
        while let Some(v) = work.pop() {
            guard += 1;
            if guard > 1_000_000 {
                return None;
            }
            if let Value::Inst(id) = v {
                if let Some(&a) = self.alias.get(&id) {
                    work.push(a);
                    continue;
                }
                let op = self.f.op(id);
                if is_pure(op) {
                    work.extend(op.operands());
                } else if live.insert(id) {
                    work.extend(self.anchor_deps(id, self.f.inst(id)?.block));
                }
            }
        }
        Some(live)
    }

    /// The values an anchored instruction's rendering will reference
    /// (phi incomings restricted to live predecessor edges).
    fn anchor_deps(&self, id: InstId, b: BlockId) -> Vec<Value> {
        match self.f.op(id) {
            Op::Phi { incomings, .. } => {
                let live_preds: HashSet<BlockId> =
                    self.preds.get(&b).into_iter().flatten().copied().collect();
                incomings
                    .iter()
                    .filter(|(p, _)| live_preds.contains(p))
                    .map(|(_, v)| *v)
                    .collect()
            }
            Op::CondBr { cond, .. } => vec![*cond],
            Op::Br { .. } => Vec::new(),
            op => op.operands(),
        }
    }

    fn render_anchor(&mut self, id: InstId, b: BlockId) -> Option<String> {
        let op = self.f.op(id).clone();
        Some(match op {
            Op::Bin { op, ty, lhs, rhs } => {
                // sdiv/srem (the only anchored binops)
                let a = self.expr(lhs, 0)?;
                let c = self.expr(rhs, 0)?;
                format!("{}.{ty}({a},{c})", bin_name(op))
            }
            Op::Select {
                ty,
                cond,
                tval,
                fval,
            } => format!(
                "select.{ty}({},{},{})",
                self.expr(cond, 0)?,
                self.expr(tval, 0)?,
                self.expr(fval, 0)?
            ),
            Op::Alloca { ty, count } => format!("alloca.{ty}x{count}"),
            Op::Load { ty, ptr } => format!("load.{ty}({})", self.expr(ptr, 0)?),
            Op::Store { ty, val, ptr } => {
                format!("store.{ty}({},{})", self.expr(val, 0)?, self.expr(ptr, 0)?)
            }
            Op::Gep {
                elem_ty,
                ptr,
                index,
            } => format!(
                "gep.{elem_ty}({},{})",
                self.expr(ptr, 0)?,
                self.expr(index, 0)?
            ),
            Op::Call {
                callee,
                args,
                ret_ty,
            } => {
                let name = &self.m.func(callee)?.name;
                let mut rendered = Vec::with_capacity(args.len());
                for a in args {
                    rendered.push(self.expr(a, 0)?);
                }
                format!("call.{ret_ty}@{name}({})", rendered.join(","))
            }
            Op::Phi { ty, incomings } => {
                let live_preds: HashSet<BlockId> =
                    self.preds.get(&b).into_iter().flatten().copied().collect();
                let complete = live_preds
                    .iter()
                    .all(|p| incomings.iter().any(|(q, _)| q == p));
                let mut arms = Vec::new();
                for (p, v) in &incomings {
                    if live_preds.contains(p) {
                        let tag = self.chain_of[p];
                        arms.push(format!("L{}:{}", tag, self.expr(*v, 0)?));
                    }
                }
                arms.sort();
                format!(
                    "phi.{ty}[{}]{}",
                    arms.join(","),
                    if complete { "" } else { "!incomplete" }
                )
            }
            Op::MemCpy {
                elem_ty,
                dst,
                src,
                len,
            } => format!(
                "memcpy.{elem_ty}({},{},{})",
                self.expr(dst, 0)?,
                self.expr(src, 0)?,
                self.expr(len, 0)?
            ),
            Op::MemSet {
                elem_ty,
                dst,
                val,
                len,
            } => format!(
                "memset.{elem_ty}({},{},{})",
                self.expr(dst, 0)?,
                self.expr(val, 0)?,
                self.expr(len, 0)?
            ),
            Op::Br { target } => format!("br L{}", self.chain_of[&target]),
            Op::CondBr {
                cond,
                then_bb,
                else_bb,
            } => match self.succs.get(&b).map(|s| s.as_slice()) {
                Some([only]) => format!("br L{}", self.chain_of[only]),
                _ => format!(
                    "condbr({},L{},L{})",
                    self.expr(cond, 0)?,
                    self.chain_of[&then_bb],
                    self.chain_of[&else_bb]
                ),
            },
            Op::Ret { val } => match val {
                Some(v) => format!("ret {}", self.expr(v, 0)?),
                None => "ret".into(),
            },
            Op::Unreachable => "unreachable".into(),
            Op::Icmp { .. } | Op::Fcmp { .. } | Op::Cast { .. } => return None,
        })
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::SDiv => "sdiv",
        BinOp::SRem => "srem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::AShr => "ashr",
        BinOp::LShr => "lshr",
        BinOp::FAdd => "fadd",
        BinOp::FSub => "fsub",
        BinOp::FMul => "fmul",
        BinOp::FDiv => "fdiv",
    }
}

fn cast_name(kind: CastKind) -> &'static str {
    match kind {
        CastKind::Trunc => "trunc",
        CastKind::ZExt => "zext",
        CastKind::SExt => "sext",
        CastKind::SiToFp => "sitofp",
        CastKind::FpToSi => "fptosi",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_ir::parser::parse_module;

    fn canon_of(text: &str) -> String {
        let m = parse_module(text).unwrap();
        let fid = m.func_ids().next().unwrap();
        canonical_body(&m, m.func(fid).unwrap()).expect("canonicalizes")
    }

    #[test]
    fn dead_pure_code_and_ordering_are_invisible() {
        let a = canon_of(
            "module \"a\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %d = mul i64 %arg0, %arg0\n  %x = add i64 %arg0, 1:i64\n  ret %x\n}\n",
        );
        let b = canon_of(
            "module \"b\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %x = add i64 1:i64, %arg0\n  ret %x\n}\n",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn const_branches_fold_and_chains_merge() {
        let a = canon_of(
            "module \"a\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %c = icmp slt i64 1:i64, 2:i64\n  condbr %c, bb1, bb2\nbb1:\n  %r = add i64 %arg0, 7:i64\n  ret %r\nbb2:\n  ret 0:i64\n}\n",
        );
        let b = canon_of(
            "module \"b\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %r = add i64 %arg0, 7:i64\n  ret %r\n}\n",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn licm_style_code_motion_is_invisible() {
        let hoisted = canon_of(
            "module \"a\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %t = add i64 %arg0, 5:i64\n  br bb1\nbb1:\n  %i = phi i64 [bb0: 0:i64], [bb2: %i2]\n  %s = phi i64 [bb0: 0:i64], [bb2: %s2]\n  %c = icmp slt i64 %i, %arg0\n  condbr %c, bb2, bb3\nbb2:\n  %s2 = add i64 %s, %t\n  %i2 = add i64 %i, 1:i64\n  br bb1\nbb3:\n  ret %s\n}\n",
        );
        let inloop = canon_of(
            "module \"b\"\nfn @f(i64) -> i64 internal {\nbb0:\n  br bb1\nbb1:\n  %i = phi i64 [bb0: 0:i64], [bb2: %i2]\n  %s = phi i64 [bb0: 0:i64], [bb2: %s2]\n  %c = icmp slt i64 %i, %arg0\n  condbr %c, bb2, bb3\nbb2:\n  %t = add i64 %arg0, 5:i64\n  %s2 = add i64 %s, %t\n  %i2 = add i64 %i, 1:i64\n  br bb1\nbb3:\n  ret %s\n}\n",
        );
        assert_eq!(hoisted, inloop);
    }

    #[test]
    fn trapping_ops_stay_anchored() {
        // hoisting an sdiv past a guard must NOT canonicalize equal
        let guarded = canon_of(
            "module \"a\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %c = icmp ne i64 %arg0, 0:i64\n  condbr %c, bb1, bb2\nbb1:\n  %q = sdiv i64 100:i64, %arg0\n  ret %q\nbb2:\n  ret 0:i64\n}\n",
        );
        let hoisted = canon_of(
            "module \"b\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %q = sdiv i64 100:i64, %arg0\n  %c = icmp ne i64 %arg0, 0:i64\n  condbr %c, bb1, bb2\nbb1:\n  ret %q\nbb2:\n  ret 0:i64\n}\n",
        );
        assert_ne!(guarded, hoisted);
    }

    #[test]
    fn absorbing_rules_are_not_applied() {
        // mul x, 0 must NOT canonicalize to 0 (x may be undef)
        let muled = canon_of(
            "module \"a\"\nfn @f(i64) -> i64 internal {\nbb0:\n  %u = add i64 undef:i64, undef:i64\n  %z = mul i64 %u, 0:i64\n  ret %z\n}\n",
        );
        let zero = canon_of("module \"b\"\nfn @f(i64) -> i64 internal {\nbb0:\n  ret 0:i64\n}\n");
        assert_ne!(muled, zero);
    }
}
