//! Symbolic executor: SSA → term DAG with path conditions.
//!
//! Executes one function on symbolic inputs, mirroring the reference
//! interpreter instruction by instruction. Every scalar is a
//! [`SymVal`] — a *(value, undef)* pair where `u` is a width-1 term that
//! is true exactly when the interpreter would hold `RtVal::Undef` at
//! this point. Undefined behaviour is not forked into separate trap
//! paths; instead each path accumulates a deferred `ub` condition that
//! is true exactly when the interpreter would trap (division by zero,
//! out-of-bounds access, write-to-const, control/trapping uses of undef,
//! `unreachable`). Exactness matters: the refinement formula uses the
//! source's `ub` *negatively* ("the source is defined here"), so an
//! over- or under-approximation on either side would make proofs
//! unsound. Whenever the executor cannot be exact it refuses with a
//! [`Bail`], which the driver maps to `Inconclusive` — never to a wrong
//! verdict.
//!
//! Loops are handled by bounded unrolling: each path may visit a block
//! at most `max_block_visits` times before the executor bails. Branches
//! on symbolic conditions fork the path (up to `max_paths`); constant
//! conditions — the common case on the concrete-trip-count loops the
//! workload generator emits — follow a single path.

use super::term::{SymOrigin, TermId, TermStore};
use super::ValidateConfig;
use posetrl_ir::inst::{BinOp, CastKind, InstId, IntPred, Op};
use posetrl_ir::interp::{eval_bin, eval_cast_src, RtVal};
use posetrl_ir::module::{BlockId, FuncId, Function, GlobalId, Module};
use posetrl_ir::value::{Const, Value};
use posetrl_ir::Ty;
use std::collections::{BTreeMap, HashMap};

/// A scalar as a *(value term, undef condition)* pair.
#[derive(Debug, Clone, Copy)]
pub struct SymVal {
    /// The value when defined (width = the scalar's type width; floats
    /// are carried as their 64 IEEE bits).
    pub v: TermId,
    /// Width-1 term: true ⇔ the interpreter would see `RtVal::Undef`.
    pub u: TermId,
}

/// The base object of a symbolic pointer. `Global` bases are shared
/// slots keyed by name (see [`SharedEnv`]) so both modules of a pair
/// agree on identity; the exotic bases mirror the interpreter's
/// never-allocated sentinels (accessing them traps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Base {
    /// A global, identified by its [`SharedEnv`] slot.
    Global(u32),
    /// A stack allocation; serials count allocas in execution order,
    /// exactly like the interpreter's `next_stack_serial`.
    Stack(u64),
    /// The null sentinel (`Stack(u64::MAX - 2)` in the interpreter).
    Null,
    /// A function address (`Stack(u64::MAX - 1)`).
    FuncAddr,
    /// The opaque pointer an external call returns (`Stack(u64::MAX)`).
    ExternalRet,
}

/// A symbolic fat pointer.
#[derive(Debug, Clone, Copy)]
pub struct SymPtr {
    /// Base object.
    pub base: Base,
    /// Element offset (width-64 term).
    pub off: TermId,
    /// True ⇔ the interpreter would hold `RtVal::Undef` instead.
    pub u: TermId,
}

/// A symbolic runtime value.
#[derive(Debug, Clone, Copy)]
pub enum SVal {
    /// Integer or float scalar.
    Scalar(SymVal),
    /// Pointer.
    Ptr(SymPtr),
}

/// A symbolically traced external-call argument.
#[derive(Debug, Clone)]
pub enum SymArg {
    /// Scalar argument; `fp` records whether it traces as
    /// `TraceArg::Float` (bitwise) or `TraceArg::Int`.
    Scalar {
        /// Float (bitwise-compared) vs integer trace variant.
        fp: bool,
        /// The value/undef pair.
        val: SymVal,
    },
    /// Pointer argument: opaque in the trace, but undef pointers trace
    /// as `TraceArg::Undef`.
    Ptr {
        /// Undef condition of the pointer.
        u: TermId,
    },
}

/// One symbolic external-call event.
#[derive(Debug, Clone)]
pub struct SymEvent {
    /// Callee name.
    pub callee: String,
    /// Arguments in call order.
    pub args: Vec<SymArg>,
}

/// The observable summary of one execution path.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// Path condition (conjunction of branch decisions).
    pub cond: TermId,
    /// Deferred-UB condition: true ⇔ the interpreter traps on this path.
    pub ub: TermId,
    /// Return value (`None` for void returns and UB-terminated paths).
    pub ret: Option<SVal>,
    /// Ordered external-call trace.
    pub trace: Vec<SymEvent>,
    /// Final contents of every mutable global, sorted by name.
    pub globals: Vec<(String, Vec<SymVal>)>,
}

/// The executor refused to model something exactly; the driver reports
/// `Inconclusive` with this reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Bail(pub String);

impl Bail {
    fn new(reason: impl Into<String>) -> Bail {
        Bail(reason.into())
    }
}

/// Pre-module state shared by the source and target execution of one
/// function pair: the global name→slot table and the shared symbolic
/// initial contents of every mutable global.
#[derive(Debug, Default)]
pub struct SharedEnv {
    /// Slot → global name.
    pub slot_names: Vec<String>,
    /// Name → slot.
    pub slots: HashMap<String, u32>,
    /// Shared symbolic initial cells per mutable global name.
    pub mutable_inits: BTreeMap<String, Vec<SymVal>>,
}

impl SharedEnv {
    /// Returns (creating if needed) the slot for `name`.
    pub fn slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.slot_names.len() as u32;
        self.slot_names.push(name.to_string());
        self.slots.insert(name.to_string(), s);
        s
    }
}

/// Bit width of a scalar type (floats travel as their 64 bits).
pub fn width_of(ty: Ty) -> u8 {
    match ty {
        Ty::I1 => 1,
        Ty::I8 => 8,
        Ty::I32 => 32,
        _ => 64,
    }
}

/// Interns a float constant as an opaque `fconst` node keyed by bits.
pub fn fconst(store: &mut TermStore, f: f64) -> TermId {
    store.opaque("fconst", f.to_bits(), 64, Vec::new())
}

/// Reads a float constant back out of an `fconst` node.
pub fn as_fconst(store: &TermStore, t: TermId) -> Option<f64> {
    match store.term(t) {
        super::term::Term::Opaque {
            tag: "fconst", aux, ..
        } => Some(f64::from_bits(*aux)),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct MemObj {
    elem_ty: Ty,
    cells: Vec<SymVal>,
    writable: bool,
}

/// Per-path global state (threaded through calls).
#[derive(Debug, Clone)]
struct GState {
    cond: TermId,
    ub: TermId,
    memory: BTreeMap<Base, MemObj>,
    trace: Vec<SymEvent>,
    next_serial: u64,
}

/// Per-call-frame state.
#[derive(Debug, Clone)]
struct Frame {
    regs: HashMap<InstId, SVal>,
    cur: BlockId,
    prev: Option<BlockId>,
    idx: usize,
    visits: HashMap<BlockId, u32>,
    allocs: Vec<Base>,
}

/// The symbolic executor for one module of a validation pair.
pub struct SymExec<'m, 'e, 'c> {
    module: &'m Module,
    env: &'e SharedEnv,
    cfg: &'c ValidateConfig,
    steps: u64,
    forks: usize,
    junk: HashMap<u8, TermId>,
    global_of_slot: HashMap<u32, GlobalId>,
}

impl<'m, 'e, 'c> SymExec<'m, 'e, 'c> {
    /// Creates an executor for `module` against the shared environment.
    pub fn new(module: &'m Module, env: &'e SharedEnv, cfg: &'c ValidateConfig) -> Self {
        let mut global_of_slot = HashMap::new();
        for gid in module.global_ids() {
            let g = module.global(gid).unwrap();
            if let Some(&slot) = env.slots.get(&g.name) {
                global_of_slot.insert(slot, gid);
            }
        }
        SymExec {
            module,
            env,
            cfg,
            steps: 0,
            forks: 0,
            junk: HashMap::new(),
            global_of_slot,
        }
    }

    /// A shared don't-care symbol of `width` bits (only ever read under
    /// an undef or UB guard, so sharing one per width is sound).
    fn junk(&mut self, store: &mut TermStore, width: u8) -> TermId {
        if let Some(&t) = self.junk.get(&width) {
            return t;
        }
        let t = store.sym(width, SymOrigin::Havoc);
        self.junk.insert(width, t);
        t
    }

    fn undef_scalar(&mut self, store: &mut TermStore, width: u8) -> SymVal {
        let v = self.junk(store, width);
        let u = store.tru();
        SymVal { v, u }
    }

    /// Builds the initial memory image: immutable globals concretely from
    /// their initializers, mutable globals from the shared symbolic cells.
    fn initial_memory(&mut self, store: &mut TermStore) -> Result<BTreeMap<Base, MemObj>, Bail> {
        let mut memory = BTreeMap::new();
        for gid in self.module.global_ids() {
            let g = self.module.global(gid).unwrap();
            if g.ty == Ty::Ptr {
                return Err(Bail::new("pointer-typed global cells are not modeled"));
            }
            let slot = *self
                .env
                .slots
                .get(&g.name)
                .ok_or_else(|| Bail::new("global missing from shared environment"))?;
            let cells = if g.mutable {
                self.env
                    .mutable_inits
                    .get(&g.name)
                    .ok_or_else(|| Bail::new("mutable global missing shared initial state"))?
                    .clone()
            } else {
                let mut cells = Vec::with_capacity(g.count as usize);
                for i in 0..g.count as usize {
                    let sv = match g.init.get(i) {
                        Some(c) => self.const_cell(store, *c, g.ty)?,
                        None => self.zero_cell(store, g.ty),
                    };
                    cells.push(sv);
                }
                cells
            };
            if cells.len() != g.count as usize {
                return Err(Bail::new("global cell count diverges between modules"));
            }
            memory.insert(
                Base::Global(slot),
                MemObj {
                    elem_ty: g.ty,
                    cells,
                    writable: g.mutable,
                },
            );
        }
        Ok(memory)
    }

    fn const_cell(&mut self, store: &mut TermStore, c: Const, ty: Ty) -> Result<SymVal, Bail> {
        Ok(match c {
            Const::Int { val, .. } => SymVal {
                v: store.constant(width_of(ty), val),
                u: store.fls(),
            },
            Const::Float(f) => SymVal {
                v: fconst(store, f),
                u: store.fls(),
            },
            Const::Undef(_) => self.undef_scalar(store, width_of(ty)),
            Const::Null => return Err(Bail::new("pointer constant in scalar global")),
        })
    }

    fn zero_cell(&mut self, store: &mut TermStore, ty: Ty) -> SymVal {
        let v = if ty == Ty::F64 {
            fconst(store, 0.0)
        } else {
            store.constant(width_of(ty), 0)
        };
        SymVal { v, u: store.fls() }
    }

    /// Runs `fid` on `args` and returns the enumerated path outcomes.
    pub fn exec_function(
        &mut self,
        store: &mut TermStore,
        fid: FuncId,
        args: &[SVal],
    ) -> Result<Vec<PathOutcome>, Bail> {
        let memory = self.initial_memory(store)?;
        let g = GState {
            cond: store.tru(),
            ub: store.fls(),
            memory,
            trace: Vec::new(),
            next_serial: 0,
        };
        let finished = self.run(store, fid, args.to_vec(), g, 0)?;
        let mut outcomes = Vec::with_capacity(finished.len());
        for (g, ret) in finished {
            let mut globals = Vec::new();
            for (base, obj) in &g.memory {
                if let Base::Global(slot) = base {
                    if obj.writable {
                        globals.push((
                            self.env.slot_names[*slot as usize].clone(),
                            obj.cells.clone(),
                        ));
                    }
                }
            }
            globals.sort_by(|a, b| a.0.cmp(&b.0));
            outcomes.push(PathOutcome {
                cond: g.cond,
                ub: g.ub,
                ret,
                trace: g.trace,
                globals,
            });
        }
        Ok(outcomes)
    }

    /// Executes one call frame; returns (state, return value) per path.
    #[allow(clippy::type_complexity)]
    fn run(
        &mut self,
        store: &mut TermStore,
        fid: FuncId,
        args: Vec<SVal>,
        g: GState,
        depth: usize,
    ) -> Result<Vec<(GState, Option<SVal>)>, Bail> {
        if depth > self.cfg.max_call_depth {
            return Err(Bail::new("call depth exceeds the inlining bound"));
        }
        let f = self.module.func(fid).expect("call target exists");
        if f.is_decl {
            let mut g = g;
            let ret = self.external_call(store, &mut g, f, &args);
            return Ok(vec![(g, ret)]);
        }

        let mut worklist: Vec<(GState, Frame)> = vec![(
            g,
            Frame {
                regs: HashMap::new(),
                cur: f.entry,
                prev: None,
                idx: 0,
                visits: HashMap::new(),
                allocs: Vec::new(),
            },
        )];
        let mut finished: Vec<(GState, Option<SVal>)> = Vec::new();

        'paths: while let Some((mut g, mut fr)) = worklist.pop() {
            loop {
                // deferred-UB fast exit: the path certainly traps
                if store.as_const(g.ub) == Some(1) {
                    self.finish_frame(&mut g, &fr);
                    finished.push((g, None));
                    continue 'paths;
                }
                if fr.idx == 0 {
                    // block entry: unroll bound + simultaneous phi update
                    let visits = fr.visits.entry(fr.cur).or_insert(0);
                    *visits += 1;
                    if *visits > self.cfg.max_block_visits {
                        return Err(Bail::new("loop exceeds the unrolling bound"));
                    }
                    let Some(block) = f.block(fr.cur) else {
                        // missing block: the interpreter traps Unreachable
                        g.ub = store.tru();
                        continue;
                    };
                    if let Some(p) = fr.prev {
                        let mut updates: Vec<(InstId, SVal)> = Vec::new();
                        let mut missing_incoming = false;
                        for &id in &block.insts {
                            let Op::Phi { incomings, .. } = f.op(id) else {
                                break;
                            };
                            match incomings.iter().find(|(b, _)| *b == p) {
                                Some((_, v)) => {
                                    let sv = self.value(store, f, &fr, &args, *v);
                                    updates.push((id, sv));
                                }
                                None => {
                                    // the interpreter's "phi missing incoming"
                                    missing_incoming = true;
                                    break;
                                }
                            }
                        }
                        if missing_incoming {
                            g.ub = store.tru();
                            continue;
                        }
                        for (id, sv) in updates {
                            fr.regs.insert(id, sv);
                        }
                        // skip the leading phis
                        while fr.idx < block.insts.len()
                            && matches!(f.op(block.insts[fr.idx]), Op::Phi { .. })
                        {
                            fr.idx += 1;
                        }
                    }
                }
                let block = match f.block(fr.cur) {
                    Some(b) => b,
                    None => {
                        g.ub = store.tru();
                        continue;
                    }
                };
                if fr.idx >= block.insts.len() {
                    // fell off the end: interpreter traps Unreachable
                    g.ub = store.tru();
                    continue;
                }
                let id = block.insts[fr.idx];
                fr.idx += 1;
                self.steps += 1;
                if self.steps > self.cfg.max_steps {
                    return Err(Bail::new("step budget exhausted"));
                }

                match f.op(id).clone() {
                    Op::Phi { incomings, .. } => {
                        // entry-block phi (prev == None): first incoming
                        let sv = match incomings.first() {
                            Some((_, v)) => self.value(store, f, &fr, &args, *v),
                            None => SVal::Scalar(self.undef_scalar(store, 64)),
                        };
                        fr.regs.insert(id, sv);
                    }
                    Op::Bin { op, ty, lhs, rhs } => {
                        let a = self.value(store, f, &fr, &args, lhs);
                        let b = self.value(store, f, &fr, &args, rhs);
                        let r = self.eval_bin_sym(store, &mut g, op, ty, a, b);
                        fr.regs.insert(id, SVal::Scalar(r));
                    }
                    Op::Icmp { pred, lhs, rhs, .. } => {
                        let a = self.value(store, f, &fr, &args, lhs);
                        let b = self.value(store, f, &fr, &args, rhs);
                        let r = self.eval_icmp_sym(store, &mut g, pred, a, b);
                        fr.regs.insert(id, SVal::Scalar(r));
                    }
                    Op::Fcmp { pred, lhs, rhs } => {
                        let a = self.value(store, f, &fr, &args, lhs);
                        let b = self.value(store, f, &fr, &args, rhs);
                        let (av, au) = self.as_float(store, &mut g, a);
                        let (bv, bu) = self.as_float(store, &mut g, b);
                        g.add_ub(store, au);
                        g.add_ub(store, bu);
                        let v = match (as_fconst(store, av), as_fconst(store, bv)) {
                            (Some(x), Some(y)) => store.constant(1, pred.eval(x, y) as i64),
                            _ => store.opaque(fcmp_tag(pred), 0, 1, vec![av, bv]),
                        };
                        fr.regs
                            .insert(id, SVal::Scalar(SymVal { v, u: store.fls() }));
                    }
                    Op::Select {
                        cond, tval, fval, ..
                    } => {
                        let c = self.value(store, f, &fr, &args, cond);
                        let (cv, cu) = self.as_int(store, &mut g, c);
                        g.add_ub(store, cu); // select cond: as_int traps on undef
                        let cb = {
                            let w = store.width(cv);
                            let z = store.constant(w, 0);
                            store.ne(cv, z)
                        };
                        let t = self.value(store, f, &fr, &args, tval);
                        let e = self.value(store, f, &fr, &args, fval);
                        let merged = self.merge_vals(store, cb, t, e)?;
                        fr.regs.insert(id, merged);
                    }
                    Op::Cast { kind, to, val } => {
                        let src_ty = value_ty(f, val);
                        let sv = self.value(store, f, &fr, &args, val);
                        let r = self.eval_cast_sym(store, &mut g, kind, to, src_ty, sv);
                        fr.regs.insert(id, SVal::Scalar(r));
                    }
                    Op::Alloca { ty, count } => {
                        if ty == Ty::Ptr {
                            return Err(Bail::new("pointer-typed alloca cells are not modeled"));
                        }
                        let base = Base::Stack(g.next_serial);
                        g.next_serial += 1;
                        let cell = self.undef_scalar(store, width_of(ty));
                        g.memory.insert(
                            base,
                            MemObj {
                                elem_ty: ty,
                                cells: vec![cell; count as usize],
                                writable: true,
                            },
                        );
                        fr.allocs.push(base);
                        let off = store.constant(64, 0);
                        let u = store.fls();
                        fr.regs.insert(id, SVal::Ptr(SymPtr { base, off, u }));
                    }
                    Op::Load { ty, ptr } => {
                        let p = self.value(store, f, &fr, &args, ptr);
                        let r = self.mem_load(store, &mut g, p, ty)?;
                        fr.regs.insert(id, SVal::Scalar(r));
                    }
                    Op::Store { ty, val, ptr } => {
                        let v = self.value(store, f, &fr, &args, val);
                        let p = self.value(store, f, &fr, &args, ptr);
                        self.mem_store(store, &mut g, p, ty, v)?;
                    }
                    Op::Gep { ptr, index, .. } => {
                        let p = self.value(store, f, &fr, &args, ptr);
                        let i = self.value(store, f, &fr, &args, index);
                        let (iv, iu) = self.as_int(store, &mut g, i);
                        g.add_ub(store, iu); // gep index: as_int traps on undef
                        let iv64 = self.widen_i64(store, iv);
                        match p {
                            SVal::Ptr(sp) => {
                                g.add_ub(store, sp.u);
                                let off = store.bin(BinOp::Add, 64, sp.off, iv64);
                                fr.regs.insert(
                                    id,
                                    SVal::Ptr(SymPtr {
                                        base: sp.base,
                                        off,
                                        u: store.fls(),
                                    }),
                                );
                            }
                            SVal::Scalar(sv) => {
                                // as_ptr: undef traps, non-ptr is a type error
                                g.add_ub(store, sv.u);
                                let t = store.tru();
                                g.add_ub(store, t);
                                let off = store.constant(64, 0);
                                let u = store.fls();
                                fr.regs.insert(
                                    id,
                                    SVal::Ptr(SymPtr {
                                        base: Base::Null,
                                        off,
                                        u,
                                    }),
                                );
                            }
                        }
                    }
                    Op::Call {
                        callee,
                        args: call_args,
                        ret_ty,
                    } => {
                        let mut vals = Vec::with_capacity(call_args.len());
                        for a in &call_args {
                            vals.push(self.value(store, f, &fr, &args, *a));
                        }
                        let conts = self.run(store, callee, vals, g, depth + 1)?;
                        self.forks += conts.len().saturating_sub(1);
                        if self.forks >= self.cfg.max_paths {
                            return Err(Bail::new("path budget exhausted"));
                        }
                        for (g2, rv) in conts {
                            let mut fr2 = fr.clone();
                            if ret_ty != Ty::Void {
                                let sv = match rv {
                                    Some(v) => v,
                                    None => SVal::Scalar(SymVal {
                                        v: self.junk(store, width_of(ret_ty)),
                                        u: store.tru(),
                                    }),
                                };
                                fr2.regs.insert(id, sv);
                            }
                            worklist.push((g2, fr2));
                        }
                        continue 'paths;
                    }
                    Op::MemCpy { dst, src, len, .. } => {
                        let d = self.value(store, f, &fr, &args, dst);
                        let s = self.value(store, f, &fr, &args, src);
                        let n = self.value(store, f, &fr, &args, len);
                        self.mem_copy(store, &mut g, d, s, n)?;
                    }
                    Op::MemSet { dst, val, len, .. } => {
                        let d = self.value(store, f, &fr, &args, dst);
                        let v = self.value(store, f, &fr, &args, val);
                        let n = self.value(store, f, &fr, &args, len);
                        self.mem_set(store, &mut g, d, v, n)?;
                    }
                    Op::Br { target } => {
                        fr.prev = Some(fr.cur);
                        fr.cur = target;
                        fr.idx = 0;
                        continue;
                    }
                    Op::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.value(store, f, &fr, &args, cond);
                        let (cv, cu) = self.as_int(store, &mut g, c);
                        g.add_ub(store, cu); // condbr on undef traps
                        let w = store.width(cv);
                        let z = store.constant(w, 0);
                        let b = store.ne(cv, z);
                        fr.prev = Some(fr.cur);
                        fr.idx = 0;
                        match store.as_const(b) {
                            Some(1) => {
                                fr.cur = then_bb;
                                continue;
                            }
                            Some(_) => {
                                fr.cur = else_bb;
                                continue;
                            }
                            None => {
                                self.forks += 1;
                                if self.forks >= self.cfg.max_paths {
                                    return Err(Bail::new("path budget exhausted"));
                                }
                                let mut g_else = g.clone();
                                let mut fr_else = fr.clone();
                                let nb = store.not(b);
                                g_else.cond = store.and(g_else.cond, nb);
                                fr_else.cur = else_bb;
                                worklist.push((g_else, fr_else));
                                g.cond = store.and(g.cond, b);
                                fr.cur = then_bb;
                                continue;
                            }
                        }
                    }
                    Op::Ret { val } => {
                        let r = val.map(|v| self.value(store, f, &fr, &args, v));
                        self.finish_frame(&mut g, &fr);
                        finished.push((g, r));
                        continue 'paths;
                    }
                    Op::Unreachable => {
                        g.ub = store.tru();
                        continue;
                    }
                }
            }
        }
        Ok(finished)
    }

    fn finish_frame(&mut self, g: &mut GState, fr: &Frame) {
        for base in &fr.allocs {
            g.memory.remove(base);
        }
    }

    fn external_call(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        f: &Function,
        args: &[SVal],
    ) -> Option<SVal> {
        let sym_args = args
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                SVal::Scalar(sv) => SymArg::Scalar {
                    // the declared param type decides Int vs Float tracing;
                    // fall back to the term's own shape for extra args
                    fp: match f.params.get(i) {
                        Some(ty) => *ty == Ty::F64,
                        None => is_float_term(store, sv.v),
                    },
                    val: *sv,
                },
                SVal::Ptr(p) => SymArg::Ptr { u: p.u },
            })
            .collect();
        g.trace.push(SymEvent {
            callee: f.name.clone(),
            args: sym_args,
        });
        match f.ret {
            Ty::Void => None,
            Ty::F64 => Some(SVal::Scalar(SymVal {
                v: fconst(store, 0.0),
                u: store.fls(),
            })),
            Ty::Ptr => Some(SVal::Ptr(SymPtr {
                base: Base::ExternalRet,
                off: store.constant(64, 0),
                u: store.fls(),
            })),
            ty => Some(SVal::Scalar(SymVal {
                v: store.constant(width_of(ty), 0),
                u: store.fls(),
            })),
        }
    }

    fn value(
        &mut self,
        store: &mut TermStore,
        f: &Function,
        fr: &Frame,
        args: &[SVal],
        v: Value,
    ) -> SVal {
        match v {
            Value::Inst(id) => match fr.regs.get(&id) {
                Some(sv) => *sv,
                None => self.undef_of_ty(store, f.op(id).result_ty()),
            },
            Value::Arg(i) => match args.get(i as usize) {
                Some(sv) => *sv,
                None => self.undef_of_ty(store, Ty::I64),
            },
            Value::Const(c) => match c {
                Const::Int { ty, val } => SVal::Scalar(SymVal {
                    v: store.constant(width_of(ty), val),
                    u: store.fls(),
                }),
                Const::Float(fl) => SVal::Scalar(SymVal {
                    v: fconst(store, fl),
                    u: store.fls(),
                }),
                Const::Null => SVal::Ptr(SymPtr {
                    base: Base::Null,
                    off: store.constant(64, 0),
                    u: store.fls(),
                }),
                Const::Undef(ty) => self.undef_of_ty(store, ty),
            },
            Value::Global(gid) => {
                let name = &self.module.global(gid).unwrap().name;
                let slot = *self.env.slots.get(name).expect("global has a slot");
                SVal::Ptr(SymPtr {
                    base: Base::Global(slot),
                    off: store.constant(64, 0),
                    u: store.fls(),
                })
            }
            Value::Func(_) => SVal::Ptr(SymPtr {
                base: Base::FuncAddr,
                off: store.constant(64, 0),
                u: store.fls(),
            }),
        }
    }

    fn undef_of_ty(&mut self, store: &mut TermStore, ty: Ty) -> SVal {
        if ty == Ty::Ptr {
            let off = store.constant(64, 0);
            let u = store.tru();
            SVal::Ptr(SymPtr {
                base: Base::Null,
                off,
                u,
            })
        } else {
            SVal::Scalar(self.undef_scalar(store, width_of(ty)))
        }
    }

    /// `as_int` of the interpreter: scalar value + the condition under
    /// which the access *traps* (undef use or type error).
    fn as_int(&mut self, store: &mut TermStore, _g: &mut GState, v: SVal) -> (TermId, TermId) {
        match v {
            SVal::Scalar(sv) => (sv.v, sv.u),
            SVal::Ptr(_) => {
                let t = store.tru();
                (self.junk(store, 64), t)
            }
        }
    }

    /// `as_float`: value bits + trap condition.
    fn as_float(&mut self, store: &mut TermStore, _g: &mut GState, v: SVal) -> (TermId, TermId) {
        match v {
            SVal::Scalar(sv) => (sv.v, sv.u),
            SVal::Ptr(_) => {
                let t = store.tru();
                (self.junk(store, 64), t)
            }
        }
    }

    fn widen_i64(&mut self, store: &mut TermStore, t: TermId) -> TermId {
        if store.width(t) == 64 {
            t
        } else {
            store.cast(CastKind::SExt, 64, t)
        }
    }

    fn eval_bin_sym(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        op: BinOp,
        ty: Ty,
        a: SVal,
        b: SVal,
    ) -> SymVal {
        if op.is_float() {
            let (av, au) = self.as_float(store, g, a);
            let (bv, bu) = self.as_float(store, g, b);
            g.add_ub(store, au);
            g.add_ub(store, bu);
            let v = match (as_fconst(store, av), as_fconst(store, bv)) {
                (Some(x), Some(y)) => {
                    match eval_bin(op, Ty::F64, RtVal::Float(x), RtVal::Float(y)) {
                        Ok(RtVal::Float(r)) => fconst(store, r),
                        _ => store.opaque(fbin_tag(op), 0, 64, vec![av, bv]),
                    }
                }
                _ => store.opaque(fbin_tag(op), 0, 64, vec![av, bv]),
            };
            return SymVal { v, u: store.fls() };
        }
        let (av, au) = self.as_int(store, g, a);
        let (bv, bu) = self.as_int(store, g, b);
        let undef = store.or(au, bu);
        let w = width_of(ty);
        if op.can_trap() {
            // sdiv/srem: undef operands trap, and so does a zero divisor
            g.add_ub(store, undef);
            let zero = store.constant(store.width(bv), 0);
            let div0 = store.eq(bv, zero);
            g.add_ub(store, div0);
            let v = store.bin(op, w, av, bv);
            SymVal { v, u: store.fls() }
        } else {
            let v = store.bin(op, w, av, bv);
            SymVal { v, u: undef }
        }
    }

    fn eval_icmp_sym(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        pred: IntPred,
        a: SVal,
        b: SVal,
    ) -> SymVal {
        match (a, b) {
            (SVal::Scalar(x), SVal::Scalar(y)) => {
                // the interpreter compares raw (sign-extended) i64s
                let (xv, yv) = if store.width(x.v) != store.width(y.v) {
                    (self.widen_i64(store, x.v), self.widen_i64(store, y.v))
                } else {
                    (x.v, y.v)
                };
                let v = store.icmp(pred, xv, yv);
                let u = store.or(x.u, y.u); // undef operand ⇒ undef result
                SymVal { v, u }
            }
            (SVal::Ptr(x), SVal::Ptr(y)) => {
                let ox = self.ptr_ordinal(store, x);
                let oy = self.ptr_ordinal(store, y);
                let v = store.icmp(pred, ox, oy);
                let u = store.or(x.u, y.u);
                SymVal { v, u }
            }
            // mixed ptr/int: the interpreter's type error — but only when
            // neither side is undef (undef wins first in the match)
            (SVal::Scalar(x), SVal::Ptr(y)) | (SVal::Ptr(y), SVal::Scalar(x)) => {
                let undef = store.or(x.u, y.u);
                let trap = store.not(undef);
                g.add_ub(store, trap);
                SymVal {
                    v: self.junk(store, 1),
                    u: undef,
                }
            }
        }
    }

    /// The interpreter's deterministic pointer ordinal as a term.
    fn ptr_ordinal(&mut self, store: &mut TermStore, p: SymPtr) -> TermId {
        let base_val: i64 = match p.base {
            Base::Global(slot) => match self.global_of_slot.get(&slot) {
                Some(gid) => gid.0 as i64,
                None => (1i64 << 40) + (u64::MAX - 3) as i64, // unmapped: distinct sentinel
            },
            Base::Stack(s) => (1i64 << 40) + s as i64,
            Base::Null => (1i64 << 40) + (u64::MAX - 2) as i64,
            Base::FuncAddr => (1i64 << 40) + (u64::MAX - 1) as i64,
            Base::ExternalRet => (1i64 << 40) + u64::MAX as i64,
        };
        let base_term = store.constant(64, base_val.wrapping_mul(1 << 20));
        store.bin(BinOp::Add, 64, base_term, p.off)
    }

    fn eval_cast_sym(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        kind: CastKind,
        to: Ty,
        src_ty: Ty,
        v: SVal,
    ) -> SymVal {
        // eval_cast_src returns Undef *before* any as_int/as_float trap,
        // so undef flows through every cast kind without trapping
        let sv = match v {
            SVal::Scalar(sv) => sv,
            SVal::Ptr(p) => {
                // non-undef pointer into an int/float cast: type error
                let trap = store.not(p.u);
                g.add_ub(store, trap);
                return SymVal {
                    v: self.junk(store, width_of(to)),
                    u: p.u,
                };
            }
        };
        let wt = width_of(to);
        let v_out = match kind {
            CastKind::Trunc | CastKind::SExt => store.cast(kind, wt, sv.v),
            CastKind::ZExt => {
                // zext semantics depend on the *static* source width; the
                // term width is that width by construction, but double-
                // check against the declared type for safety
                let term_w = store.width(sv.v);
                let src_w = width_of(src_ty);
                let val = if term_w != src_w {
                    store.cast(CastKind::SExt, src_w.max(term_w).max(1), sv.v)
                } else {
                    sv.v
                };
                store.cast(CastKind::ZExt, wt, val)
            }
            CastKind::SiToFp => match store.as_const(sv.v) {
                Some(x) => fconst(store, x as f64),
                None => store.opaque("sitofp", 0, 64, vec![sv.v]),
            },
            CastKind::FpToSi => match as_fconst(store, sv.v) {
                Some(fl) => match eval_cast_src(kind, to, Ty::F64, RtVal::Float(fl)) {
                    Ok(RtVal::Int(r)) => store.constant(wt, r),
                    _ => store.opaque("fptosi", 0, wt, vec![sv.v]),
                },
                None => store.opaque("fptosi", 0, wt, vec![sv.v]),
            },
        };
        SymVal { v: v_out, u: sv.u }
    }

    fn merge_vals(
        &mut self,
        store: &mut TermStore,
        c: TermId,
        t: SVal,
        e: SVal,
    ) -> Result<SVal, Bail> {
        match (t, e) {
            (SVal::Scalar(a), SVal::Scalar(b)) => {
                let v = store.ite(c, a.v, b.v);
                let u = store.ite(c, a.u, b.u);
                Ok(SVal::Scalar(SymVal { v, u }))
            }
            (SVal::Ptr(a), SVal::Ptr(b)) if a.base == b.base => {
                let off = store.ite(c, a.off, b.off);
                let u = store.ite(c, a.u, b.u);
                Ok(SVal::Ptr(SymPtr {
                    base: a.base,
                    off,
                    u,
                }))
            }
            _ => Err(Bail::new("select merges pointers with distinct bases")),
        }
    }

    // -- memory ----------------------------------------------------------

    /// Resolves an SVal to a pointer, returning `None` when the access
    /// certainly traps (undef/type error recorded in `g.ub`).
    fn resolve_ptr(&mut self, store: &mut TermStore, g: &mut GState, p: SVal) -> Option<SymPtr> {
        match p {
            SVal::Ptr(sp) => {
                g.add_ub(store, sp.u);
                Some(sp)
            }
            SVal::Scalar(sv) => {
                // as_ptr: undef traps, non-ptr scalar is a type error
                g.add_ub(store, sv.u);
                let trap = store.not(sv.u);
                g.add_ub(store, trap);
                None
            }
        }
    }

    fn bounds_check(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        off: TermId,
        len: usize,
    ) -> TermId {
        // in-bounds ⇔ 0 <= off < len (the interpreter's usize conversion
        // plus Vec indexing)
        let zero = store.constant(64, 0);
        let len_t = store.constant(64, len as i64);
        let ge = store.icmp(IntPred::Sge, off, zero);
        let lt = store.icmp(IntPred::Slt, off, len_t);
        let inb = store.and(ge, lt);
        let oob = store.not(inb);
        g.add_ub(store, oob);
        inb
    }

    fn mem_load(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        p: SVal,
        ty: Ty,
    ) -> Result<SymVal, Bail> {
        let Some(sp) = self.resolve_ptr(store, g, p) else {
            return Ok(self.undef_scalar(store, width_of(ty)));
        };
        let Some(obj) = g.memory.get(&sp.base).cloned() else {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(self.undef_scalar(store, width_of(ty)));
        };
        if obj.elem_ty != ty {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(self.undef_scalar(store, width_of(ty)));
        }
        self.bounds_check(store, g, sp.off, obj.cells.len());
        if let Some(i) = store.as_const(sp.off) {
            if i >= 0 && (i as usize) < obj.cells.len() {
                return Ok(obj.cells[i as usize]);
            }
            return Ok(self.undef_scalar(store, width_of(ty)));
        }
        if obj.cells.len() > self.cfg.max_mem_cells {
            return Err(Bail::new("symbolic index into a large allocation"));
        }
        // ite chain over every cell
        let mut acc = self.undef_scalar(store, width_of(ty));
        for (i, cell) in obj.cells.iter().enumerate() {
            let idx = store.constant(64, i as i64);
            let hit = store.eq(sp.off, idx);
            let v = store.ite(hit, cell.v, acc.v);
            let u = store.ite(hit, cell.u, acc.u);
            acc = SymVal { v, u };
        }
        Ok(acc)
    }

    fn mem_store(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        p: SVal,
        ty: Ty,
        v: SVal,
    ) -> Result<(), Bail> {
        let val = match v {
            SVal::Scalar(sv) => sv,
            SVal::Ptr(_) => return Err(Bail::new("storing a pointer into memory is not modeled")),
        };
        let Some(sp) = self.resolve_ptr(store, g, p) else {
            return Ok(());
        };
        let Some(obj) = g.memory.get(&sp.base) else {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        };
        if !obj.writable || obj.elem_ty != ty {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        }
        let len = obj.cells.len();
        self.bounds_check(store, g, sp.off, len);
        if let Some(i) = store.as_const(sp.off) {
            if i >= 0 && (i as usize) < len {
                g.memory.get_mut(&sp.base).unwrap().cells[i as usize] = val;
            }
            return Ok(());
        }
        if len > self.cfg.max_mem_cells {
            return Err(Bail::new("symbolic index into a large allocation"));
        }
        let cells = g.memory.get(&sp.base).unwrap().cells.clone();
        let mut new_cells = Vec::with_capacity(len);
        for (i, cell) in cells.iter().enumerate() {
            let idx = store.constant(64, i as i64);
            let hit = store.eq(sp.off, idx);
            let nv = store.ite(hit, val.v, cell.v);
            let nu = store.ite(hit, val.u, cell.u);
            new_cells.push(SymVal { v: nv, u: nu });
        }
        g.memory.get_mut(&sp.base).unwrap().cells = new_cells;
        Ok(())
    }

    fn mem_copy(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        d: SVal,
        s: SVal,
        n: SVal,
    ) -> Result<(), Bail> {
        let (nv, nu) = self.as_int(store, g, n);
        g.add_ub(store, nu);
        let Some(n) = store.as_const(nv) else {
            return Err(Bail::new("memcpy with a symbolic length"));
        };
        let Some(dp) = self.resolve_ptr(store, g, d) else {
            return Ok(());
        };
        let Some(sp) = self.resolve_ptr(store, g, s) else {
            return Ok(());
        };
        if n < 0 {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        }
        let (Some(doff), Some(soff)) = (store.as_const(dp.off), store.as_const(sp.off)) else {
            return Err(Bail::new("memcpy with a symbolic offset"));
        };
        if n > 0 && !self.writable(g, dp.base) {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        }
        // read phase (the interpreter snapshots the source range first)
        let Some(src_obj) = g.memory.get(&sp.base) else {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        };
        let mut tmp = Vec::with_capacity(n as usize);
        for i in 0..n {
            let idx = soff + i;
            if idx < 0 || idx as usize >= src_obj.cells.len() {
                let t = store.tru();
                g.add_ub(store, t);
                return Ok(());
            }
            tmp.push(src_obj.cells[idx as usize]);
        }
        let Some(dst_obj) = g.memory.get_mut(&dp.base) else {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        };
        for (i, v) in tmp.into_iter().enumerate() {
            let idx = doff + i as i64;
            if idx < 0 || idx as usize >= dst_obj.cells.len() {
                let t = store.tru();
                g.add_ub(store, t);
                return Ok(());
            }
            dst_obj.cells[idx as usize] = v;
        }
        Ok(())
    }

    fn mem_set(
        &mut self,
        store: &mut TermStore,
        g: &mut GState,
        d: SVal,
        v: SVal,
        n: SVal,
    ) -> Result<(), Bail> {
        let val = match v {
            SVal::Scalar(sv) => sv,
            SVal::Ptr(_) => return Err(Bail::new("memset of a pointer value is not modeled")),
        };
        let (nv, nu) = self.as_int(store, g, n);
        g.add_ub(store, nu);
        let Some(n) = store.as_const(nv) else {
            return Err(Bail::new("memset with a symbolic length"));
        };
        let Some(dp) = self.resolve_ptr(store, g, d) else {
            return Ok(());
        };
        if n < 0 {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        }
        let Some(doff) = store.as_const(dp.off) else {
            return Err(Bail::new("memset with a symbolic offset"));
        };
        if n > 0 && !self.writable(g, dp.base) {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        }
        let Some(obj) = g.memory.get_mut(&dp.base) else {
            let t = store.tru();
            g.add_ub(store, t);
            return Ok(());
        };
        for i in 0..n {
            let idx = doff + i;
            if idx < 0 || idx as usize >= obj.cells.len() {
                let t = store.tru();
                g.add_ub(store, t);
                return Ok(());
            }
            obj.cells[idx as usize] = val;
        }
        Ok(())
    }

    fn writable(&self, g: &GState, base: Base) -> bool {
        g.memory.get(&base).map(|o| o.writable).unwrap_or(true)
    }
}

impl GState {
    /// Accumulates a trap condition into the path's deferred UB.
    fn add_ub(&mut self, store: &mut TermStore, cond: TermId) {
        self.ub = store.or(self.ub, cond);
    }
}

/// Static type of a value in the context of `f` (mirror of the
/// interpreter's `value_type_in`).
pub fn value_ty(f: &Function, v: Value) -> Ty {
    match v {
        Value::Inst(id) => f.op(id).result_ty(),
        Value::Arg(i) => f.params.get(i as usize).copied().unwrap_or(Ty::I64),
        Value::Const(c) => c.ty(),
        Value::Global(_) | Value::Func(_) => Ty::Ptr,
    }
}

/// `true` when the term denotes a float (fconst or a float-valued
/// uninterpreted application).
fn is_float_term(store: &TermStore, t: TermId) -> bool {
    matches!(
        store.term(t),
        super::term::Term::Opaque {
            tag: "fconst" | "fadd" | "fsub" | "fmul" | "fdiv" | "sitofp",
            ..
        }
    )
}

fn fbin_tag(op: BinOp) -> &'static str {
    match op {
        BinOp::FAdd => "fadd",
        BinOp::FSub => "fsub",
        BinOp::FMul => "fmul",
        BinOp::FDiv => "fdiv",
        _ => "fbin",
    }
}

fn fcmp_tag(pred: posetrl_ir::inst::FloatPred) -> &'static str {
    use posetrl_ir::inst::FloatPred::*;
    match pred {
        Oeq => "fcmp.oeq",
        One => "fcmp.one",
        Olt => "fcmp.olt",
        Ole => "fcmp.ole",
        Ogt => "fcmp.ogt",
        Oge => "fcmp.oge",
    }
}
