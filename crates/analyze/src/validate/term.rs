//! Hash-consed term language for the translation validator.
//!
//! Terms are bitvector/bool expressions over symbolic inputs (function
//! arguments and the initial contents of mutable globals). The store
//! normalizes aggressively at construction time — constant folding reuses
//! the reference interpreter's own `eval_bin`/`eval_cast_src`, so the term
//! algebra cannot silently diverge from the executable semantics —
//! and hash-conses every node, which gives structural equality in O(1)
//! (`TermId` equality) and congruence for uninterpreted operators for
//! free.
//!
//! Widths are 1, 8, 32 and 64 bits, matching `Ty::{I1,I8,I32,I64}`.
//! Floats and integer division are *uninterpreted*: they become
//! [`Term::Opaque`] nodes that are only equal to structurally identical
//! applications (hash-consing congruence). This keeps the SAT encoding
//! small; any counterexample that leans on an uninterpreted node is
//! filtered by interpreter replay before it can become a `Refuted`
//! verdict.

use posetrl_ir::inst::{BinOp, CastKind, IntPred};
use posetrl_ir::interp::{eval_bin, eval_cast_src, RtVal};
use posetrl_ir::Ty;
use std::collections::HashMap;

/// Index of a hash-consed term inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A node of the term DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A symbolic input (argument, initial global cell, or havoc).
    Sym { id: u32, width: u8 },
    /// An integer constant, stored wrapped to its width.
    Const { width: u8, val: i64 },
    /// An integer binary operation (`SDiv`/`SRem` stay uninterpreted in
    /// the SAT encoding but fold like the interpreter when constant).
    Bin {
        op: BinOp,
        width: u8,
        lhs: TermId,
        rhs: TermId,
    },
    /// Integer comparison; result width is 1.
    Icmp {
        pred: IntPred,
        lhs: TermId,
        rhs: TermId,
    },
    /// If-then-else over same-width operands; `cond` has width 1.
    Ite {
        cond: TermId,
        then_v: TermId,
        else_v: TermId,
    },
    /// Integer resize (`Trunc`/`ZExt`/`SExt` only; fp casts are opaque).
    Cast { kind: CastKind, to: u8, val: TermId },
    /// An uninterpreted function application (float ops, fp casts).
    /// Congruence comes from hash-consing: identical applications share
    /// one node, distinct ones get independent SAT variables.
    Opaque {
        tag: &'static str,
        aux: u64,
        width: u8,
        args: Vec<TermId>,
    },
}

/// Where a symbolic variable comes from, for counterexample extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum SymOrigin {
    /// The `index`-th parameter of the validated function pair.
    Arg { index: usize, ty: Ty },
    /// Initial contents of cell `index` of a mutable global.
    GlobalCell {
        global: String,
        index: usize,
        ty: Ty,
    },
    /// A don't-care value (e.g. the payload of an undef); never replayed.
    Havoc,
}

/// The hash-consing arena. All terms of one validation problem (both the
/// source and the target function) live in a single store so that shared
/// structure collapses to shared `TermId`s.
#[derive(Debug, Default)]
pub struct TermStore {
    terms: Vec<Term>,
    dedup: HashMap<Term, TermId>,
    origins: Vec<SymOrigin>,
}

/// Maps a bit width back to the IR type of that width.
pub fn ty_of_width(w: u8) -> Ty {
    match w {
        1 => Ty::I1,
        8 => Ty::I8,
        32 => Ty::I32,
        _ => Ty::I64,
    }
}

/// Wraps `val` to the two's-complement range of `w` bits.
pub fn wrap_w(w: u8, val: i64) -> i64 {
    ty_of_width(w).wrap(val)
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// The node behind `t`.
    pub fn term(&self, t: TermId) -> &Term {
        &self.terms[t.0 as usize]
    }

    /// Number of interned terms (used for budget checks).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Result width of `t` in bits.
    pub fn width(&self, t: TermId) -> u8 {
        match self.term(t) {
            Term::Sym { width, .. }
            | Term::Const { width, .. }
            | Term::Bin { width, .. }
            | Term::Opaque { width, .. } => *width,
            Term::Icmp { .. } => 1,
            Term::Ite { then_v, .. } => self.width(*then_v),
            Term::Cast { to, .. } => *to,
        }
    }

    /// The constant value of `t`, if it is a constant.
    pub fn as_const(&self, t: TermId) -> Option<i64> {
        match self.term(t) {
            Term::Const { val, .. } => Some(*val),
            _ => None,
        }
    }

    /// `true` when `t` is the constant `val` (compared wrapped).
    fn is_const(&self, t: TermId, val: i64) -> bool {
        match self.term(t) {
            Term::Const { width, val: v } => *v == wrap_w(*width, val),
            _ => false,
        }
    }

    /// The origin of a symbolic variable id.
    pub fn origin(&self, sym_id: u32) -> &SymOrigin {
        &self.origins[sym_id as usize]
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.dedup.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.dedup.insert(t, id);
        id
    }

    /// A fresh symbolic variable of `width` bits with the given origin.
    pub fn sym(&mut self, width: u8, origin: SymOrigin) -> TermId {
        let id = self.origins.len() as u32;
        self.origins.push(origin);
        self.intern(Term::Sym { id, width })
    }

    /// The constant `val` at `width` bits (wrapped).
    pub fn constant(&mut self, width: u8, val: i64) -> TermId {
        let val = wrap_w(width, val);
        self.intern(Term::Const { width, val })
    }

    /// The boolean constant `true` (width-1 one).
    pub fn tru(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The boolean constant `false` (width-1 zero).
    pub fn fls(&mut self) -> TermId {
        self.constant(1, 0)
    }

    /// `true` when `a` and `b` are boolean complements (`b == xor a, 1`
    /// or vice versa). Catches the ubiquitous `cond ∧ ¬cond` dead path
    /// pairings without needing the SAT solver.
    fn complements(&self, a: TermId, b: TermId) -> bool {
        let is_not_of = |x: TermId, y: TermId| match self.term(y) {
            Term::Bin {
                op: BinOp::Xor,
                width: 1,
                lhs,
                rhs,
            } => (*lhs == x && self.is_const(*rhs, 1)) || (*rhs == x && self.is_const(*lhs, 1)),
            _ => false,
        };
        is_not_of(a, b) || is_not_of(b, a)
    }

    /// An integer binary operation, normalized.
    pub fn bin(&mut self, op: BinOp, width: u8, lhs: TermId, rhs: TermId) -> TermId {
        debug_assert!(!op.is_float(), "float ops are opaque, not Bin terms");
        // constant folding through the interpreter's own evaluator
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            let ty = ty_of_width(width);
            if let Ok(RtVal::Int(v)) = eval_bin(op, ty, RtVal::Int(a), RtVal::Int(b)) {
                return self.constant(width, v);
            }
            // division by zero: keep the term; the executor tracks the
            // trap condition separately
        }
        // algebraic identities (value-preserving under the wrapped
        // semantics for every width)
        let lhs_zero = self.is_const(lhs, 0);
        let rhs_zero = self.is_const(rhs, 0);
        let rhs_one = self.is_const(rhs, 1);
        let lhs_one = self.is_const(lhs, 1);
        let ones = wrap_w(width, -1);
        match op {
            BinOp::Add => {
                if lhs_zero {
                    return rhs;
                }
                if rhs_zero {
                    return lhs;
                }
            }
            BinOp::Sub => {
                if rhs_zero {
                    return lhs;
                }
                if lhs == rhs {
                    return self.constant(width, 0);
                }
            }
            BinOp::Mul => {
                if lhs_zero || rhs_zero {
                    return self.constant(width, 0);
                }
                if lhs_one {
                    return rhs;
                }
                if rhs_one {
                    return lhs;
                }
            }
            BinOp::And => {
                if lhs_zero || rhs_zero {
                    return self.constant(width, 0);
                }
                if self.is_const(lhs, ones) {
                    return rhs;
                }
                if self.is_const(rhs, ones) {
                    return lhs;
                }
                if lhs == rhs {
                    return lhs;
                }
                if width == 1 && self.complements(lhs, rhs) {
                    return self.fls();
                }
            }
            BinOp::Or => {
                if lhs_zero {
                    return rhs;
                }
                if rhs_zero {
                    return lhs;
                }
                if self.is_const(lhs, ones) || self.is_const(rhs, ones) {
                    return self.constant(width, ones);
                }
                if lhs == rhs {
                    return lhs;
                }
                if width == 1 && self.complements(lhs, rhs) {
                    return self.tru();
                }
            }
            BinOp::Xor => {
                if lhs_zero {
                    return rhs;
                }
                if rhs_zero {
                    return lhs;
                }
                if lhs == rhs {
                    return self.constant(width, 0);
                }
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr if (rhs_zero || lhs_zero) => {
                return lhs;
            }
            BinOp::SDiv | BinOp::SRem => {
                // no identities: x/1 == x holds but is rare enough that
                // we keep the node (the trap condition lives elsewhere)
            }
            _ => {}
        }
        // canonical operand order for commutative operators
        let (lhs, rhs) = if op.is_commutative() && rhs < lhs {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };
        self.intern(Term::Bin {
            op,
            width,
            lhs,
            rhs,
        })
    }

    /// An integer comparison, normalized; result has width 1.
    pub fn icmp(&mut self, pred: IntPred, lhs: TermId, rhs: TermId) -> TermId {
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            // constants are stored sign-extended, exactly like `RtVal`
            return self.constant(1, pred.eval(a, b) as i64);
        }
        if lhs == rhs {
            use IntPred::*;
            let refl = matches!(pred, Eq | Sle | Sge);
            return self.constant(1, refl as i64);
        }
        // canonical operand order for the symmetric predicates
        let (pred, lhs, rhs) = if matches!(pred, IntPred::Eq | IntPred::Ne) && rhs < lhs {
            (pred, rhs, lhs)
        } else {
            (pred, lhs, rhs)
        };
        self.intern(Term::Icmp { pred, lhs, rhs })
    }

    /// If-then-else, normalized.
    pub fn ite(&mut self, cond: TermId, then_v: TermId, else_v: TermId) -> TermId {
        if let Some(c) = self.as_const(cond) {
            return if c != 0 { then_v } else { else_v };
        }
        if then_v == else_v {
            return then_v;
        }
        // ite c, 1, 0  ==  c   /   ite c, 0, 1  ==  ¬c   (width 1)
        if self.width(then_v) == 1 {
            if self.is_const(then_v, 1) && self.is_const(else_v, 0) {
                return cond;
            }
            if self.is_const(then_v, 0) && self.is_const(else_v, 1) {
                return self.not(cond);
            }
        }
        self.intern(Term::Ite {
            cond,
            then_v,
            else_v,
        })
    }

    /// An integer resize cast, normalized.
    pub fn cast(&mut self, kind: CastKind, to: u8, val: TermId) -> TermId {
        debug_assert!(matches!(
            kind,
            CastKind::Trunc | CastKind::ZExt | CastKind::SExt
        ));
        let from = self.width(val);
        if let Some(v) = self.as_const(val) {
            let (to_ty, from_ty) = (ty_of_width(to), ty_of_width(from));
            if let Ok(RtVal::Int(r)) = eval_cast_src(kind, to_ty, from_ty, RtVal::Int(v)) {
                return self.constant(to, r);
            }
        }
        if from == to {
            return val;
        }
        self.intern(Term::Cast { kind, to, val })
    }

    /// An uninterpreted application.
    pub fn opaque(&mut self, tag: &'static str, aux: u64, width: u8, args: Vec<TermId>) -> TermId {
        self.intern(Term::Opaque {
            tag,
            aux,
            width,
            args,
        })
    }

    // -- boolean convenience (all width 1) -------------------------------

    /// Logical negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        let one = self.constant(1, 1);
        self.bin(BinOp::Xor, 1, a, one)
    }

    /// Logical conjunction.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::And, 1, a, b)
    }

    /// Logical disjunction.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.bin(BinOp::Or, 1, a, b)
    }

    /// Equality as a width-1 term.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.icmp(IntPred::Eq, a, b)
    }

    /// Disequality as a width-1 term.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        self.icmp(IntPred::Ne, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_the_interpreter() {
        let mut s = TermStore::new();
        let a = s.constant(64, 7);
        let b = s.constant(64, 5);
        let sum = s.bin(BinOp::Add, 64, a, b);
        assert_eq!(s.as_const(sum), Some(12));
        let shifted = s.bin(BinOp::Shl, 8, a, b);
        assert_eq!(s.as_const(shifted), Some(wrap_w(8, 7 << 5)));
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        let mut s = TermStore::new();
        let a = s.constant(64, 7);
        let z = s.constant(64, 0);
        let d = s.bin(BinOp::SDiv, 64, a, z);
        assert_eq!(s.as_const(d), None);
    }

    #[test]
    fn hash_consing_gives_structural_equality() {
        let mut s = TermStore::new();
        let x = s.sym(64, SymOrigin::Havoc);
        let one = s.constant(64, 1);
        let a = s.bin(BinOp::Add, 64, x, one);
        let b = s.bin(BinOp::Add, 64, one, x); // commutative canonical order
        assert_eq!(a, b);
    }

    #[test]
    fn identities_simplify() {
        let mut s = TermStore::new();
        let x = s.sym(64, SymOrigin::Havoc);
        let zero = s.constant(64, 0);
        assert_eq!(s.bin(BinOp::Add, 64, x, zero), x);
        assert_eq!(s.bin(BinOp::Sub, 64, x, x), zero);
        assert_eq!(s.bin(BinOp::Xor, 64, x, x), zero);
        let c = s.sym(1, SymOrigin::Havoc);
        let nc = s.not(c);
        let conj = s.and(c, nc);
        assert_eq!(s.as_const(conj), Some(0));
        let disj = s.or(nc, c);
        assert_eq!(s.as_const(disj), Some(1));
    }

    #[test]
    fn ite_and_icmp_normalize() {
        let mut s = TermStore::new();
        let x = s.sym(64, SymOrigin::Havoc);
        let y = s.sym(64, SymOrigin::Havoc);
        let refl = s.eq(x, x);
        assert_eq!(s.as_const(refl), Some(1));
        let c = s.icmp(IntPred::Slt, x, y);
        let one = s.constant(1, 1);
        let zero = s.constant(1, 0);
        assert_eq!(s.ite(c, one, zero), c);
        let t = s.ite(c, x, x);
        assert_eq!(t, x);
    }

    #[test]
    fn sign_semantics_match_rtval() {
        // constants are sign-extended at their width: 255 at i8 is -1,
        // exactly the i64 bit pattern the interpreter carries around
        let mut s = TermStore::new();
        let m1 = s.constant(8, 255);
        assert_eq!(s.as_const(m1), Some(-1));
        let one = s.constant(8, 1);
        let c = s.icmp(IntPred::Slt, m1, one);
        assert_eq!(s.as_const(c), Some(1));
    }
}
