//! A small clean-room CDCL SAT solver.
//!
//! Conflict-driven clause learning with two-watched-literal propagation,
//! first-UIP learning, activity-based decisions (VSIDS-style with a lazy
//! max-heap), phase saving and geometric restarts. A conflict budget
//! bounds worst-case work: exceeding it yields [`SatResult::Unknown`],
//! which the refinement driver maps to an `Inconclusive` verdict — never
//! to a wrong one.
//!
//! Literal convention at the API boundary: a literal is a non-zero `i32`;
//! `v` means variable `v` is true, `-v` means it is false (DIMACS style,
//! variables start at 1).

/// A DIMACS-style literal.
pub type Lit = i32;

/// A CNF problem: `n_vars` variables (1-based) and a clause list.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Highest variable index in use.
    pub n_vars: usize,
    /// Clauses; an empty clause makes the problem trivially unsat.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> Lit {
        self.n_vars += 1;
        self.n_vars as Lit
    }

    /// Adds one clause.
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }
}

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub enum SatResult {
    /// Satisfiable; `model[v-1]` is the value of variable `v`.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// Conflict budget exhausted before an answer was found.
    Unknown,
}

// internal literal encoding: var index * 2 + sign (0 = positive)
type ILit = u32;

fn ilit(l: Lit) -> ILit {
    let v = l.unsigned_abs() - 1;
    v * 2 + (l < 0) as u32
}

fn neg(l: ILit) -> ILit {
    l ^ 1
}

fn var(l: ILit) -> usize {
    (l >> 1) as usize
}

#[derive(Clone, Copy, PartialEq)]
enum Assign {
    Unset,
    True,
    False,
}

struct Solver {
    clauses: Vec<Vec<ILit>>,
    watches: Vec<Vec<usize>>, // per ILit: clause indices watching it
    assign: Vec<Assign>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<ILit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    heap: Vec<(f64, u32)>, // lazy max-heap of (activity, var)
    phase: Vec<bool>,
    conflicts: u64,
}

impl Solver {
    fn new(n_vars: usize) -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); n_vars * 2],
            assign: vec![Assign::Unset; n_vars],
            level: vec![0; n_vars],
            reason: vec![None; n_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            queue_head: 0,
            activity: vec![0.0; n_vars],
            act_inc: 1.0,
            heap: (0..n_vars as u32).map(|v| (0.0, v)).collect(),
            phase: vec![false; n_vars],
            conflicts: 0,
        }
    }

    fn value(&self, l: ILit) -> Assign {
        match self.assign[var(l)] {
            Assign::Unset => Assign::Unset,
            Assign::True => {
                if l & 1 == 0 {
                    Assign::True
                } else {
                    Assign::False
                }
            }
            Assign::False => {
                if l & 1 == 0 {
                    Assign::False
                } else {
                    Assign::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: ILit, reason: Option<usize>) -> bool {
        match self.value(l) {
            Assign::True => true,
            Assign::False => false,
            Assign::Unset => {
                let v = var(l);
                self.assign[v] = if l & 1 == 0 {
                    Assign::True
                } else {
                    Assign::False
                };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = l & 1 == 0;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause.
    fn propagate(&mut self) -> Option<usize> {
        while self.queue_head < self.trail.len() {
            let l = self.trail[self.queue_head];
            self.queue_head += 1;
            let falsified = neg(l);
            let mut ws = std::mem::take(&mut self.watches[falsified as usize]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // ensure the falsified literal is at slot 1
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.value(first) == Assign::True {
                    i += 1;
                    continue;
                }
                // look for a new watch
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != Assign::False {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch as usize].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // clause is unit or conflicting
                if !self.enqueue(first, Some(ci)) {
                    self.watches[falsified as usize] = ws;
                    self.queue_head = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified as usize] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.heap_push(v);
    }

    fn heap_push(&mut self, v: usize) {
        self.heap.push((self.activity[v], v as u32));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.heap[p].0 < self.heap[i].0 {
                self.heap.swap(p, i);
                i = p;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<usize> {
        while !self.heap.is_empty() {
            let (act, v) = self.heap[0];
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
            // sift down
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut m = i;
                if l < self.heap.len() && self.heap[l].0 > self.heap[m].0 {
                    m = l;
                }
                if r < self.heap.len() && self.heap[r].0 > self.heap[m].0 {
                    m = r;
                }
                if m == i {
                    break;
                }
                self.heap.swap(i, m);
                i = m;
            }
            let v = v as usize;
            // stale entries (outdated activity or already assigned) are skipped
            if self.assign[v] == Assign::Unset && act >= self.activity[v] {
                return Some(v);
            }
            if self.assign[v] == Assign::Unset && act < self.activity[v] {
                // outdated snapshot: reinsert with the fresh activity
                self.heap_push(v);
            }
        }
        None
    }

    /// First-UIP conflict analysis; returns (learned clause, backjump level).
    fn analyze(&mut self, confl: usize) -> (Vec<ILit>, u32) {
        let mut learned: Vec<ILit> = vec![0]; // slot 0 = the asserting literal
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0usize;
        let mut cursor = self.trail.len();
        let mut confl = Some(confl);
        let mut asserting: ILit = 0;

        loop {
            let clause = confl.expect("conflict clause chain stays grounded");
            let start = if self.clauses[clause][0] == asserting && counter > 0 {
                1
            } else {
                0
            };
            for k in start..self.clauses[clause].len() {
                let q = self.clauses[clause][k];
                let v = var(q);
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // walk the trail backwards to the next marked literal
            loop {
                cursor -= 1;
                let l = self.trail[cursor];
                if seen[var(l)] {
                    asserting = l;
                    break;
                }
            }
            seen[var(asserting)] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[var(asserting)];
        }
        learned[0] = neg(asserting);

        let backjump = learned[1..]
            .iter()
            .map(|&l| self.level[var(l)])
            .max()
            .unwrap_or(0);
        // watch a literal of the backjump level in slot 1
        if learned.len() > 1 {
            let mut mi = 1;
            for k in 2..learned.len() {
                if self.level[var(learned[k])] > self.level[var(learned[mi])] {
                    mi = k;
                }
            }
            learned.swap(1, mi);
        }
        (learned, backjump)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = var(l);
                self.assign[v] = Assign::Unset;
                self.reason[v] = None;
                self.heap_push(v);
            }
        }
        self.queue_head = self.trail.len();
    }

    fn attach(&mut self, ci: usize) {
        let c = &self.clauses[ci];
        debug_assert!(c.len() >= 2);
        self.watches[c[0] as usize].push(ci);
        self.watches[c[1] as usize].push(ci);
    }

    fn solve(&mut self, max_conflicts: u64) -> SatResult {
        let mut restart_limit = 100u64;
        let mut since_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                if self.conflicts > max_conflicts {
                    return SatResult::Unknown;
                }
                let (learned, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                self.act_inc *= 1.0 / 0.95;
                if learned.len() == 1 {
                    let ok = self.enqueue(learned[0], None);
                    debug_assert!(ok);
                } else {
                    let ci = self.clauses.len();
                    self.clauses.push(learned);
                    self.attach(ci);
                    let l0 = self.clauses[ci][0];
                    let ok = self.enqueue(l0, Some(ci));
                    debug_assert!(ok);
                }
            } else {
                if since_restart >= restart_limit {
                    since_restart = 0;
                    restart_limit += restart_limit / 2;
                    self.cancel_until(0);
                }
                match self.heap_pop() {
                    None => {
                        // complete assignment (unassigned vars default false)
                        let model = self.assign.iter().map(|a| *a == Assign::True).collect();
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit = (v as u32) * 2 + (!self.phase[v]) as u32;
                        let ok = self.enqueue(lit, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

/// Solves `cnf`, spending at most `max_conflicts` conflicts.
pub fn solve(cnf: &Cnf, max_conflicts: u64) -> SatResult {
    let mut s = Solver::new(cnf.n_vars.max(1));
    for clause in &cnf.clauses {
        let mut c: Vec<ILit> = clause.iter().map(|&l| ilit(l)).collect();
        c.sort_unstable();
        c.dedup();
        // tautology (contains l and ¬l)?
        if c.windows(2).any(|w| w[0] == neg(w[1]) || neg(w[0]) == w[1]) {
            continue;
        }
        match c.len() {
            0 => return SatResult::Unsat,
            1 => {
                if !s.enqueue(c[0], None) {
                    return SatResult::Unsat;
                }
            }
            _ => {
                let ci = s.clauses.len();
                s.clauses.push(c);
                s.attach(ci);
            }
        }
    }
    if s.propagate().is_some() {
        return SatResult::Unsat;
    }
    s.solve(max_conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(cnf: &Cnf, model: &[bool]) {
        for c in &cnf.clauses {
            assert!(
                c.iter()
                    .any(|&l| model[l.unsigned_abs() as usize - 1] == (l > 0)),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut cnf = Cnf::default();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add(vec![a, b]);
        cnf.add(vec![-a]);
        match solve(&cnf, 1_000) {
            SatResult::Sat(m) => {
                check_model(&cnf, &m);
                assert!(m[b as usize - 1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        cnf.add(vec![-b]);
        assert_eq!(solve(&cnf, 1_000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::default();
        cnf.new_var();
        cnf.add(vec![]);
        assert_eq!(solve(&cnf, 1_000), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i sits in hole j — classic small UNSAT instance
        // that requires real conflict analysis
        let mut cnf = Cnf::default();
        let mut p = [[0i32; 2]; 3];
        for row in &mut p {
            for cell in row.iter_mut() {
                *cell = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add(vec![row[0], row[1]]);
        }
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    cnf.add(vec![-p[i][j], -p[k][j]]);
                }
            }
        }
        assert_eq!(solve(&cnf, 100_000), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_instances_agree_with_brute_force() {
        // deterministic xorshift-generated instances, 12 vars each
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = 12usize;
            let m = 48usize;
            let mut cnf = Cnf::default();
            for _ in 0..n {
                cnf.new_var();
            }
            for _ in 0..m {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % n as u64) as i32 + 1;
                    cl.push(if rnd() % 2 == 0 { v } else { -v });
                }
                cnf.add(cl);
            }
            // brute force ground truth
            let mut sat = false;
            'outer: for bits in 0u32..(1 << n) {
                for c in &cnf.clauses {
                    if !c
                        .iter()
                        .any(|&l| ((bits >> (l.unsigned_abs() - 1)) & 1 == 1) == (l > 0))
                    {
                        continue 'outer;
                    }
                }
                sat = true;
                break;
            }
            match solve(&cnf, 1_000_000) {
                SatResult::Sat(model) => {
                    assert!(sat, "solver found a model for an unsat instance");
                    check_model(&cnf, &model);
                }
                SatResult::Unsat => assert!(!sat, "solver refuted a sat instance"),
                SatResult::Unknown => panic!("budget must suffice for 12 vars"),
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn conflict_budget_yields_unknown() {
        // a hard pigeonhole instance with a budget of 1 conflict
        let mut cnf = Cnf::default();
        let n = 6;
        let h = 5;
        let mut p = vec![vec![0i32; h]; n];
        for row in &mut p {
            for cell in row.iter_mut() {
                *cell = cnf.new_var();
            }
        }
        for row in &p {
            cnf.add(row.clone());
        }
        for j in 0..h {
            for i in 0..n {
                for k in (i + 1)..n {
                    cnf.add(vec![-p[i][j], -p[k][j]]);
                }
            }
        }
        assert_eq!(solve(&cnf, 1), SatResult::Unknown);
    }
}
