//! Symbolic translation validation (Alive2-style refinement checking).
//!
//! Given a *(source, optimized)* module pair, the validator proves — for
//! **all** inputs, not just the ones the diff-executor happens to run —
//! that every defined behaviour of the optimized code is a defined
//! behaviour of the source, including undef and trap refinement:
//!
//! 1. [`term`] — a hash-consed bitvector/bool term language whose
//!    constant folding is delegated to the reference interpreter's own
//!    `eval_bin`/`eval_cast_src`, so the term algebra cannot diverge
//!    from the executable semantics.
//! 2. [`exec`] — a symbolic executor that turns SSA into a term DAG
//!    with path conditions, carrying a *(value, undef)* pair per scalar
//!    and a deferred-UB condition per path; loops are unrolled up to a
//!    configurable bound with an explicit `Inconclusive` beyond it.
//! 3. [`bitblast`] — Tseitin lowering of the refinement obligation to
//!    CNF (ripple-carry adders, barrel shifters, signed comparators;
//!    `sdiv`/`srem` and floats stay uninterpreted).
//! 4. [`sat`] — a clean-room CDCL core (two-watched literals, 1-UIP
//!    learning, VSIDS, restarts) with a conflict budget.
//! 5. [`refine`] — the driver: builds the violation formula, discharges
//!    it, and replays every satisfying model through the reference
//!    interpreter; only an interpreter-confirmed counterexample yields
//!    `Refuted`, everything unprovable-but-unconfirmed stays
//!    `Inconclusive` (and escalates to the dynamic diff-execution
//!    fallback in the sanitizer).
//!
//! The escalation ladder is: structural equality → symbolic proof →
//! SAT counterexample + interpreter replay → dynamic diff-execution.
//! See DESIGN.md §10 for the refinement relation and per-opcode
//! undef/trap rules.

pub mod bitblast;
pub mod canon;
pub mod exec;
pub mod refine;
pub mod sat;
pub mod term;

pub use refine::{validate_transform, Counterexample, FuncVerdict, ModuleValidation, Verdict};

/// Budgets for one validation problem. All knobs are env-tunable via
/// `POSETRL_VALIDATE_*`; the defaults are sized for the generated
/// workload corpus (concrete trip counts ≤ 24, arrays ≤ 64 cells).
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Maximum number of path forks across one function execution.
    pub max_paths: usize,
    /// Maximum visits of a single block per path (the unrolling bound k).
    pub max_block_visits: u32,
    /// Maximum symbolically executed instructions per function pair.
    pub max_steps: u64,
    /// Maximum call-inlining depth.
    pub max_call_depth: usize,
    /// Maximum allocation size (in cells) a *symbolic* index may touch.
    pub max_mem_cells: usize,
    /// Maximum source×target path pairs in the mismatch obligation.
    pub max_path_pairs: usize,
    /// CNF clause budget for the bit-blaster.
    pub max_clauses: usize,
    /// Conflict budget for the SAT core.
    pub max_conflicts: u64,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            max_paths: 64,
            max_block_visits: 640,
            max_steps: 100_000,
            max_call_depth: 12,
            max_mem_cells: 96,
            max_path_pairs: 512,
            max_clauses: 120_000,
            max_conflicts: 8_000,
        }
    }
}

impl ValidateConfig {
    /// Reads the budgets from the environment (`POSETRL_VALIDATE_PATHS`,
    /// `_UNROLL`, `_STEPS`, `_DEPTH`, `_CELLS`, `_PAIRS`, `_CLAUSES`,
    /// `_CONFLICTS`), falling back to the defaults.
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(key: &str, dflt: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        }
        let d = ValidateConfig::default();
        ValidateConfig {
            max_paths: get("POSETRL_VALIDATE_PATHS", d.max_paths),
            max_block_visits: get("POSETRL_VALIDATE_UNROLL", d.max_block_visits),
            max_steps: get("POSETRL_VALIDATE_STEPS", d.max_steps),
            max_call_depth: get("POSETRL_VALIDATE_DEPTH", d.max_call_depth),
            max_mem_cells: get("POSETRL_VALIDATE_CELLS", d.max_mem_cells),
            max_path_pairs: get("POSETRL_VALIDATE_PAIRS", d.max_path_pairs),
            max_clauses: get("POSETRL_VALIDATE_CLAUSES", d.max_clauses),
            max_conflicts: get("POSETRL_VALIDATE_CONFLICTS", d.max_conflicts),
        }
    }
}
