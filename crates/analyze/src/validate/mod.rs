//! Symbolic translation validation (Alive2-style refinement checking).
//!
//! Given a *(source, optimized)* module pair, the validator proves — for
//! **all** inputs, not just the ones the diff-executor happens to run —
//! that every defined behaviour of the optimized code is a defined
//! behaviour of the source, including undef and trap refinement:
//!
//! 1. [`term`] — a hash-consed bitvector/bool term language whose
//!    constant folding is delegated to the reference interpreter's own
//!    `eval_bin`/`eval_cast_src`, so the term algebra cannot diverge
//!    from the executable semantics.
//! 2. [`exec`] — a symbolic executor that turns SSA into a term DAG
//!    with path conditions, carrying a *(value, undef)* pair per scalar
//!    and a deferred-UB condition per path; loops are unrolled up to a
//!    configurable bound with an explicit `Inconclusive` beyond it.
//! 3. [`bitblast`] — Tseitin lowering of the refinement obligation to
//!    CNF (ripple-carry adders, barrel shifters, signed comparators;
//!    `sdiv`/`srem` and floats stay uninterpreted).
//! 4. [`sat`] — a clean-room CDCL core (two-watched literals, 1-UIP
//!    learning, VSIDS, restarts) with a conflict budget.
//! 5. [`refine`] — the driver: builds the violation formula, discharges
//!    it, and replays every satisfying model through the reference
//!    interpreter; only an interpreter-confirmed counterexample yields
//!    `Refuted`, everything unprovable-but-unconfirmed stays
//!    `Inconclusive` (and escalates to the dynamic diff-execution
//!    fallback in the sanitizer).
//!
//! The escalation ladder is: structural equality → symbolic proof →
//! SAT counterexample + interpreter replay → dynamic diff-execution.
//! See DESIGN.md §10 for the refinement relation and per-opcode
//! undef/trap rules.

pub mod bitblast;
pub mod canon;
pub mod exec;
pub mod refine;
pub mod sat;
pub mod term;

pub use refine::{
    validate_transform, validate_transform_with, Counterexample, FuncVerdict, ModuleValidation,
    Verdict,
};

/// Budgets for one validation problem. All knobs are env-tunable via
/// `POSETRL_VALIDATE_*`; the defaults are sized for the generated
/// workload corpus (concrete trip counts ≤ 24, arrays ≤ 64 cells).
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Maximum number of path forks across one function execution.
    pub max_paths: usize,
    /// Maximum visits of a single block per path (the unrolling bound k).
    pub max_block_visits: u32,
    /// Maximum symbolically executed instructions per function pair.
    pub max_steps: u64,
    /// Maximum call-inlining depth.
    pub max_call_depth: usize,
    /// Maximum allocation size (in cells) a *symbolic* index may touch.
    pub max_mem_cells: usize,
    /// Maximum source×target path pairs in the mismatch obligation.
    pub max_path_pairs: usize,
    /// CNF clause budget for the bit-blaster.
    pub max_clauses: usize,
    /// Conflict budget for the SAT core.
    pub max_conflicts: u64,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            max_paths: 64,
            max_block_visits: 640,
            max_steps: 100_000,
            max_call_depth: 12,
            max_mem_cells: 96,
            max_path_pairs: 512,
            max_clauses: 120_000,
            max_conflicts: 8_000,
        }
    }
}

/// A `POSETRL_*` environment knob whose value failed to parse.
///
/// An unset knob means "use the default"; a *malformed* knob is a user
/// error and must never be silently ignored — the CLIs turn this into a
/// usage-level exit, the engine hot paths report it on stderr and fall
/// back to the default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable that was set.
    pub key: &'static str,
    /// The value that failed to parse.
    pub value: String,
}

impl std::fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {}='{}': expected an unsigned integer",
            self.key, self.value
        )
    }
}

impl std::error::Error for EnvParseError {}

/// Parses one budget knob: `None` (unset) yields the default, anything
/// set must parse. Pure over `raw` so unit tests never race on the
/// process environment.
pub fn parse_env_budget<T: std::str::FromStr>(
    key: &'static str,
    raw: Option<&str>,
    dflt: T,
) -> Result<T, EnvParseError> {
    match raw {
        None => Ok(dflt),
        Some(s) => s.trim().parse().map_err(|_| EnvParseError {
            key,
            value: s.to_string(),
        }),
    }
}

/// [`parse_env_budget`] over the process environment with CLI/test
/// error handling: a malformed knob prints the structured error and
/// exits with [`crate::exit_codes::USAGE`], so every harness that reads
/// a numeric `POSETRL_*` variable reports bad values the same way
/// instead of silently falling back to the default.
pub fn env_budget_or_usage<T: std::str::FromStr>(key: &'static str, dflt: T) -> T {
    match parse_env_budget(key, std::env::var(key).ok().as_deref(), dflt) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(crate::exit_codes::USAGE);
        }
    }
}

impl ValidateConfig {
    /// Reads the budgets through `lookup` (`POSETRL_VALIDATE_PATHS`,
    /// `_UNROLL`, `_STEPS`, `_DEPTH`, `_CELLS`, `_PAIRS`, `_CLAUSES`,
    /// `_CONFLICTS`). Unset knobs fall back to the defaults; malformed
    /// knobs are a structured error.
    pub fn from_vars(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, EnvParseError> {
        let d = ValidateConfig::default();
        macro_rules! get {
            ($key:literal, $dflt:expr) => {
                parse_env_budget($key, lookup($key).as_deref(), $dflt)?
            };
        }
        Ok(ValidateConfig {
            max_paths: get!("POSETRL_VALIDATE_PATHS", d.max_paths),
            max_block_visits: get!("POSETRL_VALIDATE_UNROLL", d.max_block_visits),
            max_steps: get!("POSETRL_VALIDATE_STEPS", d.max_steps),
            max_call_depth: get!("POSETRL_VALIDATE_DEPTH", d.max_call_depth),
            max_mem_cells: get!("POSETRL_VALIDATE_CELLS", d.max_mem_cells),
            max_path_pairs: get!("POSETRL_VALIDATE_PAIRS", d.max_path_pairs),
            max_clauses: get!("POSETRL_VALIDATE_CLAUSES", d.max_clauses),
            max_conflicts: get!("POSETRL_VALIDATE_CONFLICTS", d.max_conflicts),
        })
    }

    /// [`ValidateConfig::from_vars`] over the process environment.
    pub fn try_from_env() -> Result<Self, EnvParseError> {
        Self::from_vars(|k| std::env::var(k).ok())
    }

    /// Like [`ValidateConfig::try_from_env`], but for callers that cannot
    /// propagate the error (the engine hot paths): malformed knobs are
    /// reported on stderr and the defaults are used instead. CLIs should
    /// prefer `try_from_env` and exit with a usage error.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            eprintln!("posetrl-analyze: {e}; using the default budgets");
            ValidateConfig::default()
        })
    }
}

#[cfg(test)]
mod env_tests {
    use super::*;

    #[test]
    fn unset_knobs_yield_the_defaults() {
        let cfg = ValidateConfig::from_vars(|_| None).unwrap();
        let d = ValidateConfig::default();
        assert_eq!(cfg.max_paths, d.max_paths);
        assert_eq!(cfg.max_block_visits, d.max_block_visits);
        assert_eq!(cfg.max_steps, d.max_steps);
        assert_eq!(cfg.max_conflicts, d.max_conflicts);
    }

    #[test]
    fn well_formed_knobs_override_their_field_only() {
        let cfg =
            ValidateConfig::from_vars(|k| (k == "POSETRL_VALIDATE_PATHS").then(|| "7".to_string()))
                .unwrap();
        assert_eq!(cfg.max_paths, 7);
        assert_eq!(cfg.max_steps, ValidateConfig::default().max_steps);
    }

    #[test]
    fn malformed_knob_is_a_structured_error() {
        let e = ValidateConfig::from_vars(|k| {
            (k == "POSETRL_VALIDATE_STEPS").then(|| "lots".to_string())
        })
        .unwrap_err();
        assert_eq!(e.key, "POSETRL_VALIDATE_STEPS");
        assert_eq!(e.value, "lots");
        let msg = e.to_string();
        assert!(
            msg.contains("POSETRL_VALIDATE_STEPS") && msg.contains("lots"),
            "{msg}"
        );
    }

    #[test]
    fn negative_and_empty_budgets_are_rejected() {
        assert!(ValidateConfig::from_vars(|k| {
            (k == "POSETRL_VALIDATE_CELLS").then(|| "-3".to_string())
        })
        .is_err());
        assert!(ValidateConfig::from_vars(|k| {
            (k == "POSETRL_VALIDATE_PAIRS").then(String::new)
        })
        .is_err());
    }

    #[test]
    fn surrounding_whitespace_is_tolerated() {
        let cfg = ValidateConfig::from_vars(|k| {
            (k == "POSETRL_VALIDATE_UNROLL").then(|| " 12 ".to_string())
        })
        .unwrap();
        assert_eq!(cfg.max_block_visits, 12);
    }
}
