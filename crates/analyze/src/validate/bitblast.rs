//! Tseitin bit-blasting of the term DAG into CNF.
//!
//! Every term is lowered once (memoized per `TermId`, so DAG sharing is
//! preserved in the CNF) into a little-endian vector of literals. Gates
//! are constant-aware: literals equal to the reserved always-true literal
//! (or its negation) short-circuit instead of emitting clauses.
//!
//! Arithmetic circuits mirror the interpreter's semantics exactly:
//! wrapping ripple-carry add/sub, shift-add multiply, and barrel shifters
//! whose amount is the low `log2(width)` bits of the right operand — the
//! same `(y as u32) % width` masking `eval_bin` performs. `sdiv`/`srem`
//! and all [`Term::Opaque`] applications become fresh unconstrained
//! variables (uninterpreted, with congruence via hash-consing); models
//! that lean on them are filtered by interpreter replay downstream.

use super::sat::{Cnf, Lit};
use super::term::{Term, TermId, TermStore};
use posetrl_ir::inst::{BinOp, CastKind, IntPred};
use std::collections::HashMap;

/// The clause budget was exceeded; the caller reports `Inconclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlastOverflow;

/// The blaster: owns the growing CNF and the term→bits memo table.
pub struct Blaster<'s> {
    store: &'s TermStore,
    /// The CNF being built; hand to [`super::sat::solve`] when done.
    pub cnf: Cnf,
    cache: HashMap<TermId, Vec<Lit>>,
    tru: Lit,
    max_clauses: usize,
}

impl<'s> Blaster<'s> {
    /// Creates a blaster over `store` with a clause budget.
    pub fn new(store: &'s TermStore, max_clauses: usize) -> Blaster<'s> {
        let mut cnf = Cnf::default();
        let tru = cnf.new_var();
        cnf.add(vec![tru]);
        Blaster {
            store,
            cnf,
            cache: HashMap::new(),
            tru,
            max_clauses,
        }
    }

    fn budget(&self) -> Result<(), BlastOverflow> {
        if self.cnf.clauses.len() > self.max_clauses {
            Err(BlastOverflow)
        } else {
            Ok(())
        }
    }

    fn t(&self) -> Lit {
        self.tru
    }

    fn f(&self) -> Lit {
        -self.tru
    }

    fn is_t(&self, l: Lit) -> bool {
        l == self.tru
    }

    fn is_f(&self, l: Lit) -> bool {
        l == -self.tru
    }

    // -- constant-aware gates -------------------------------------------

    fn land(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastOverflow> {
        if self.is_f(a) || self.is_f(b) || a == -b {
            return Ok(self.f());
        }
        if self.is_t(a) {
            return Ok(b);
        }
        if self.is_t(b) || a == b {
            return Ok(a);
        }
        self.budget()?;
        let r = self.cnf.new_var();
        self.cnf.add(vec![-r, a]);
        self.cnf.add(vec![-r, b]);
        self.cnf.add(vec![r, -a, -b]);
        Ok(r)
    }

    fn lor(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastOverflow> {
        let na = self.land(-a, -b)?;
        Ok(-na)
    }

    fn lxor(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastOverflow> {
        if self.is_f(a) {
            return Ok(b);
        }
        if self.is_f(b) {
            return Ok(a);
        }
        if self.is_t(a) {
            return Ok(-b);
        }
        if self.is_t(b) {
            return Ok(-a);
        }
        if a == b {
            return Ok(self.f());
        }
        if a == -b {
            return Ok(self.t());
        }
        self.budget()?;
        let r = self.cnf.new_var();
        self.cnf.add(vec![-r, a, b]);
        self.cnf.add(vec![-r, -a, -b]);
        self.cnf.add(vec![r, -a, b]);
        self.cnf.add(vec![r, a, -b]);
        Ok(r)
    }

    fn lmux(&mut self, c: Lit, t: Lit, e: Lit) -> Result<Lit, BlastOverflow> {
        if self.is_t(c) {
            return Ok(t);
        }
        if self.is_f(c) {
            return Ok(e);
        }
        if t == e {
            return Ok(t);
        }
        if self.is_t(t) && self.is_f(e) {
            return Ok(c);
        }
        if self.is_f(t) && self.is_t(e) {
            return Ok(-c);
        }
        self.budget()?;
        let r = self.cnf.new_var();
        self.cnf.add(vec![-c, -t, r]);
        self.cnf.add(vec![-c, t, -r]);
        self.cnf.add(vec![c, -e, r]);
        self.cnf.add(vec![c, e, -r]);
        Ok(r)
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> Result<(Lit, Lit), BlastOverflow> {
        let axb = self.lxor(a, b)?;
        let sum = self.lxor(axb, cin)?;
        let ab = self.land(a, b)?;
        let cx = self.land(cin, axb)?;
        let cout = self.lor(ab, cx)?;
        Ok((sum, cout))
    }

    fn add_vec(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Result<Vec<Lit>, BlastOverflow> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry)?;
            out.push(s);
            carry = c;
        }
        Ok(out)
    }

    fn fresh_vec(&mut self, width: u8) -> Vec<Lit> {
        (0..width).map(|_| self.cnf.new_var()).collect()
    }

    /// `a < b` treating the vectors as unsigned.
    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Result<Lit, BlastOverflow> {
        let mut lt = self.f();
        for i in 0..a.len() {
            let diff = self.lxor(a[i], b[i])?;
            lt = self.lmux(diff, b[i], lt)?;
        }
        Ok(lt)
    }

    /// `a < b` signed: flip the sign bits, then compare unsigned.
    fn slt(&mut self, a: &[Lit], b: &[Lit]) -> Result<Lit, BlastOverflow> {
        let mut af = a.to_vec();
        let mut bf = b.to_vec();
        let msb = a.len() - 1;
        af[msb] = -af[msb];
        bf[msb] = -bf[msb];
        self.ult(&af, &bf)
    }

    fn veq(&mut self, a: &[Lit], b: &[Lit]) -> Result<Lit, BlastOverflow> {
        let mut acc = self.t();
        for i in 0..a.len() {
            let x = self.lxor(a[i], b[i])?;
            acc = self.land(acc, -x)?;
        }
        Ok(acc)
    }

    /// Lowers a width-1 term to a single literal.
    pub fn bit(&mut self, t: TermId) -> Result<Lit, BlastOverflow> {
        debug_assert_eq!(self.store.width(t), 1);
        Ok(self.bits(t)?[0])
    }

    /// Lowers `t` to its little-endian literal vector (memoized).
    pub fn bits(&mut self, t: TermId) -> Result<Vec<Lit>, BlastOverflow> {
        if let Some(v) = self.cache.get(&t) {
            return Ok(v.clone());
        }
        self.budget()?;
        let out = match self.store.term(t).clone() {
            Term::Const { width, val } => (0..width)
                .map(|i| {
                    if (val >> i) & 1 == 1 {
                        self.t()
                    } else {
                        self.f()
                    }
                })
                .collect(),
            Term::Sym { width, .. } => self.fresh_vec(width),
            Term::Opaque { width, .. } => self.fresh_vec(width),
            Term::Bin {
                op,
                width,
                lhs,
                rhs,
            } => {
                let a = self.bits(lhs)?;
                let b = self.bits(rhs)?;
                self.blast_bin(op, width, &a, &b)?
            }
            Term::Icmp { pred, lhs, rhs } => {
                let a = self.bits(lhs)?;
                let b = self.bits(rhs)?;
                let l = match pred {
                    IntPred::Eq => self.veq(&a, &b)?,
                    IntPred::Ne => -self.veq(&a, &b)?,
                    IntPred::Slt => self.slt(&a, &b)?,
                    IntPred::Sgt => self.slt(&b, &a)?,
                    IntPred::Sge => -self.slt(&a, &b)?,
                    IntPred::Sle => -self.slt(&b, &a)?,
                };
                vec![l]
            }
            Term::Ite {
                cond,
                then_v,
                else_v,
            } => {
                let c = self.bit(cond)?;
                let tv = self.bits(then_v)?;
                let ev = self.bits(else_v)?;
                let mut out = Vec::with_capacity(tv.len());
                for i in 0..tv.len() {
                    out.push(self.lmux(c, tv[i], ev[i])?);
                }
                out
            }
            Term::Cast { kind, to, val } => {
                let v = self.bits(val)?;
                match kind {
                    CastKind::Trunc => v[..to as usize].to_vec(),
                    CastKind::ZExt => {
                        let mut out = v;
                        out.resize(to as usize, self.f());
                        out
                    }
                    CastKind::SExt => {
                        let sign = *v.last().expect("non-empty vector");
                        let mut out = v;
                        out.resize(to as usize, sign);
                        out
                    }
                    // fp casts never appear as Cast terms (they are opaque)
                    CastKind::SiToFp | CastKind::FpToSi => self.fresh_vec(to),
                }
            }
        };
        self.cache.insert(t, out.clone());
        Ok(out)
    }

    fn blast_bin(
        &mut self,
        op: BinOp,
        width: u8,
        a: &[Lit],
        b: &[Lit],
    ) -> Result<Vec<Lit>, BlastOverflow> {
        let w = width as usize;
        Ok(match op {
            BinOp::Add => self.add_vec(a, b, self.f())?,
            BinOp::Sub => {
                let nb: Vec<Lit> = b.iter().map(|&l| -l).collect();
                let carry = self.t();
                self.add_vec(a, &nb, carry)?
            }
            BinOp::Mul => {
                let mut acc = vec![self.f(); w];
                for i in 0..w {
                    // row = (a << i) & replicate(b[i])
                    let mut row = vec![self.f(); w];
                    for j in i..w {
                        row[j] = self.land(a[j - i], b[i])?;
                    }
                    acc = self.add_vec(&acc, &row, self.f())?;
                }
                acc
            }
            BinOp::And => {
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    out.push(self.land(a[i], b[i])?);
                }
                out
            }
            BinOp::Or => {
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    out.push(self.lor(a[i], b[i])?);
                }
                out
            }
            BinOp::Xor => {
                let mut out = Vec::with_capacity(w);
                for i in 0..w {
                    out.push(self.lxor(a[i], b[i])?);
                }
                out
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr => self.blast_shift(op, a, b)?,
            // uninterpreted: fresh variables, congruence via the memo table
            BinOp::SDiv | BinOp::SRem => self.fresh_vec(width),
            // float ops never reach Bin terms
            _ => self.fresh_vec(width),
        })
    }

    /// Barrel shifter; the amount is `b mod w` — the low `log2(w)` bits —
    /// matching the interpreter's `(y as u32) % width` masking.
    fn blast_shift(&mut self, op: BinOp, a: &[Lit], b: &[Lit]) -> Result<Vec<Lit>, BlastOverflow> {
        let w = a.len();
        let stages = w.trailing_zeros() as usize; // w ∈ {1,8,32,64} — powers of two
        let mut cur = a.to_vec();
        for (k, &amt) in b.iter().enumerate().take(stages) {
            let s = 1usize << k;
            let mut shifted = Vec::with_capacity(w);
            for i in 0..w {
                let src = match op {
                    BinOp::Shl => {
                        if i >= s {
                            cur[i - s]
                        } else {
                            self.f()
                        }
                    }
                    BinOp::LShr => {
                        if i + s < w {
                            cur[i + s]
                        } else {
                            self.f()
                        }
                    }
                    BinOp::AShr => {
                        if i + s < w {
                            cur[i + s]
                        } else {
                            cur[w - 1]
                        }
                    }
                    _ => unreachable!("not a shift"),
                };
                shifted.push(src);
            }
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                next.push(self.lmux(amt, shifted[i], cur[i])?);
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Reads the value of `t` off a model, sign-extended from its width.
    /// `None` when `t` was never lowered (unconstrained by the formula).
    pub fn value_in_model(&self, t: TermId, model: &[bool]) -> Option<i64> {
        let bits = self.cache.get(&t)?;
        let mut raw: u64 = 0;
        for (i, &l) in bits.iter().enumerate() {
            let v = if self.is_t(l) {
                true
            } else if self.is_f(l) {
                false
            } else {
                let idx = l.unsigned_abs() as usize - 1;
                model.get(idx).copied().unwrap_or(false) == (l > 0)
            };
            if v {
                raw |= 1 << i;
            }
        }
        Some(super::term::wrap_w(bits.len() as u8, raw as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::super::sat::{solve, SatResult};
    use super::super::term::{SymOrigin, TermStore};
    use super::*;
    use posetrl_ir::interp::{eval_bin, RtVal};
    use posetrl_ir::Ty;

    /// Checks `forall x,y: circuit(x,y) == eval_bin(x,y)` on 8-bit ops by
    /// asserting the negation is UNSAT, then cross-checks a SAT model.
    fn exhaustive_op_check(op: BinOp) {
        let mut s = TermStore::new();
        let x = s.sym(8, SymOrigin::Havoc);
        let y = s.sym(8, SymOrigin::Havoc);
        let r = s.bin(op, 8, x, y);
        // pick a handful of concrete probes and assert the circuit forces
        // the right output
        let probes: [(i64, i64); 6] = [(0, 0), (1, 1), (-1, 3), (127, 2), (-128, 7), (85, 170)];
        for (a, b) in probes {
            let mut blaster = Blaster::new(&s, 1_000_000);
            let xb = blaster.bits(x).unwrap();
            let yb = blaster.bits(y).unwrap();
            let rb = blaster.bits(r).unwrap();
            let (aw, bw) = (Ty::I8.wrap(a), Ty::I8.wrap(b));
            let expect = match eval_bin(op, Ty::I8, RtVal::Int(aw), RtVal::Int(bw)) {
                Ok(RtVal::Int(v)) => v,
                other => panic!("probe must evaluate: {other:?}"),
            };
            // constrain inputs
            for i in 0..8 {
                let la = if (aw >> i) & 1 == 1 { xb[i] } else { -xb[i] };
                let lb = if (bw >> i) & 1 == 1 { yb[i] } else { -yb[i] };
                blaster.cnf.add(vec![la]);
                blaster.cnf.add(vec![lb]);
            }
            // assert output differs from the interpreter in some bit
            let mut diff = Vec::new();
            for (i, &r) in rb.iter().enumerate().take(8) {
                diff.push(if (expect >> i) & 1 == 1 { -r } else { r });
            }
            blaster.cnf.add(diff);
            assert_eq!(
                solve(&blaster.cnf, 100_000),
                SatResult::Unsat,
                "{op:?}({aw},{bw}) must equal interpreter's {expect}"
            );
        }
    }

    #[test]
    fn arithmetic_circuits_match_the_interpreter() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            exhaustive_op_check(op);
        }
    }

    #[test]
    fn signed_compare_matches_the_interpreter() {
        let mut s = TermStore::new();
        let x = s.sym(8, SymOrigin::Havoc);
        let y = s.sym(8, SymOrigin::Havoc);
        for pred in [
            IntPred::Eq,
            IntPred::Ne,
            IntPred::Slt,
            IntPred::Sle,
            IntPred::Sgt,
            IntPred::Sge,
        ] {
            let c = s.icmp(pred, x, y);
            for (a, b) in [(3i64, 5i64), (5, 3), (-2, 2), (2, -2), (-7, -7), (0, -128)] {
                let mut blaster = Blaster::new(&s, 1_000_000);
                let xb = blaster.bits(x).unwrap();
                let yb = blaster.bits(y).unwrap();
                let cb = blaster.bit(c).unwrap();
                for i in 0..8 {
                    blaster
                        .cnf
                        .add(vec![if (a >> i) & 1 == 1 { xb[i] } else { -xb[i] }]);
                    blaster
                        .cnf
                        .add(vec![if (b >> i) & 1 == 1 { yb[i] } else { -yb[i] }]);
                }
                let expect = pred.eval(Ty::I8.wrap(a), Ty::I8.wrap(b));
                blaster.cnf.add(vec![if expect { -cb } else { cb }]);
                assert_eq!(
                    solve(&blaster.cnf, 100_000),
                    SatResult::Unsat,
                    "{pred:?}({a},{b}) must be {expect}"
                );
            }
        }
    }

    #[test]
    fn model_extraction_reads_back_values() {
        let mut s = TermStore::new();
        let x = s.sym(64, SymOrigin::Havoc);
        let seven = s.constant(64, 7);
        let c = s.eq(x, seven);
        let mut blaster = Blaster::new(&s, 1_000_000);
        let cb = blaster.bit(c).unwrap();
        blaster.cnf.add(vec![cb]);
        match solve(&blaster.cnf, 100_000) {
            SatResult::Sat(model) => {
                assert_eq!(blaster.value_in_model(x, &model), Some(7));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn clause_budget_overflows_cleanly() {
        let mut s = TermStore::new();
        let x = s.sym(64, SymOrigin::Havoc);
        let y = s.sym(64, SymOrigin::Havoc);
        let m = s.bin(BinOp::Mul, 64, x, y);
        let mut blaster = Blaster::new(&s, 100);
        assert_eq!(blaster.bits(m), Err(BlastOverflow));
    }
}
