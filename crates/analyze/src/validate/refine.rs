//! Refinement driver: builds the per-function violation formula,
//! discharges it with the SAT core, and replays every satisfying model
//! through the reference interpreter before calling anything `Refuted`.
//!
//! For one function pair the obligation is
//!
//! ```text
//! viol =  ∨_t [ cond_t ∧ ub_t ∧ ¬src_ub ]                    (new trap)
//!       ∨ ∨_{s,t} [ cond_s ∧ cond_t ∧ ¬ub_s ∧ ¬ub_t
//!                   ∧ mismatch(s, t) ]            (observable mismatch)
//! ```
//!
//! where `s`/`t` range over the enumerated source/target paths,
//! `src_ub = ∨_s (cond_s ∧ ub_s)`, and `mismatch` covers the return
//! value, the external-call trace, and the final contents of every
//! mutable global, each under the undef-widening rule: a source undef
//! permits anything, a target undef where the source is concrete is a
//! violation. `viol` UNSAT ⇒ `Proved`. A model is only trusted after
//! the interpreter confirms the replayed target run does **not** refine
//! the source run (`Observation::refines`); unconfirmed models — e.g.
//! ones that would need a non-initializer global state, or that lean on
//! an uninterpreted float — stay `Inconclusive`.

use super::bitblast::Blaster;
use super::canon::canonical_body;
use super::exec::{width_of, PathOutcome, SVal, SharedEnv, SymArg, SymExec, SymVal};
use super::sat::{solve, SatResult};
use super::term::{SymOrigin, TermId, TermStore};
use super::ValidateConfig;
use posetrl_ir::interp::{InterpConfig, Interpreter, Observation, RtVal};
use posetrl_ir::module::{FuncId, Module};
use posetrl_ir::printer::print_function;
use posetrl_ir::Ty;

/// A concrete, interpreter-confirmed counterexample input.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Function the inputs apply to.
    pub entry: String,
    /// Argument vector (replayable via `Interpreter::run`).
    pub args: Vec<RtVal>,
    /// Rendered source observation.
    pub src_obs: String,
    /// Rendered target observation.
    pub tgt_obs: String,
}

/// The verdict for one function pair.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Refinement holds for all inputs (structural or symbolic proof).
    Proved,
    /// Refinement violated; carries an interpreter-confirmed input.
    Refuted(Box<Counterexample>),
    /// Could not be decided within budget; escalate to the dynamic
    /// fallback. Carries the reason.
    Inconclusive(String),
}

/// One function's validation result.
#[derive(Debug, Clone)]
pub struct FuncVerdict {
    /// Function name.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
}

/// Whole-module validation result for one pass application.
#[derive(Debug, Clone, Default)]
pub struct ModuleValidation {
    /// Per-function verdicts, in target-module function order.
    pub funcs: Vec<FuncVerdict>,
}

impl ModuleValidation {
    /// Number of proved functions.
    pub fn proved(&self) -> usize {
        self.funcs
            .iter()
            .filter(|f| matches!(f.verdict, Verdict::Proved))
            .count()
    }

    /// Number of refuted functions.
    pub fn refuted(&self) -> usize {
        self.funcs
            .iter()
            .filter(|f| matches!(f.verdict, Verdict::Refuted(_)))
            .count()
    }

    /// Number of inconclusive functions.
    pub fn inconclusive(&self) -> usize {
        self.funcs
            .iter()
            .filter(|f| matches!(f.verdict, Verdict::Inconclusive(_)))
            .count()
    }

    /// First refutation, if any.
    pub fn first_refutation(&self) -> Option<(&str, &Counterexample)> {
        self.funcs.iter().find_map(|f| match &f.verdict {
            Verdict::Refuted(cex) => Some((f.name.as_str(), cex.as_ref())),
            _ => None,
        })
    }

    /// True when every function proved.
    pub fn all_proved(&self) -> bool {
        self.refuted() == 0 && self.inconclusive() == 0
    }
}

/// Validates that `tgt` refines `src`, function by function (paired by
/// name). Deleted source-only functions are ignored — removing an
/// unused definition cannot add behaviours.
pub fn validate_transform(src: &Module, tgt: &Module, cfg: &ValidateConfig) -> ModuleValidation {
    validate_transform_with(src, tgt, cfg, None)
}

/// Digest of everything one function-pair obligation can read on one
/// side: the transitive direct-call closure's fingerprints plus the
/// global table. Symbolic execution inlines callees and the interpreter
/// replay runs them, so the closure (not just the pair) is the sound
/// memo unit. If the closure takes any function address, fall back to
/// folding in the whole module hash — an indirect target could be
/// anything.
fn closure_digest(m: &Module, root: FuncId) -> u128 {
    use posetrl_ir::{Op, Value};
    use std::collections::BTreeSet;
    use std::fmt::Write as _;
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut stack = vec![root.0];
    let mut has_fn_ptr = false;
    while let Some(i) = stack.pop() {
        if !seen.insert(i) {
            continue;
        }
        let Some(f) = m.func(FuncId(i)) else { continue };
        for id in f.inst_ids() {
            let op = f.op(id);
            if let Op::Call { callee, .. } = op {
                stack.push(callee.0);
            }
            for v in op.operands() {
                if matches!(v, Value::Func(_)) {
                    has_fn_ptr = true;
                }
            }
        }
    }
    let mut s = String::new();
    for i in &seen {
        let fp = m
            .func(FuncId(*i))
            .map(|f| posetrl_ir::function_fingerprint(m, f))
            .unwrap_or(0);
        let _ = write!(s, "{i}:{fp:032x};");
    }
    let _ = write!(s, "|g{:032x}", posetrl_ir::globals_fingerprint(m));
    if has_fn_ptr {
        let _ = write!(s, "|m{}", posetrl_ir::module_hash(m));
    }
    posetrl_ir::digest_str(&s)
}

/// [`validate_transform`], optionally memoizing per-pair obligations
/// through an [`IncrementalAnalysisManager`]. Only pre-escalation
/// `Proved`/`Inconclusive` verdicts are cached — they are pure functions
/// of the closure digests — so cached and fresh runs produce identical
/// `ModuleValidation`s.
///
/// [`IncrementalAnalysisManager`]: crate::incremental::IncrementalAnalysisManager
pub fn validate_transform_with(
    src: &Module,
    tgt: &Module,
    cfg: &ValidateConfig,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
) -> ModuleValidation {
    let trace = std::env::var("POSETRL_VALIDATE_TRACE").is_ok();
    let globals_identical = globals_identical(src, tgt);
    let global_issue = global_issue(src, tgt);
    let cfg_digest = mgr.map(|_| posetrl_ir::digest_str(&format!("{cfg:?}")));
    let mut out = ModuleValidation::default();
    for tid in tgt.func_ids() {
        let started = std::time::Instant::now();
        let tf = tgt.func(tid).expect("function exists");
        let name = tf.name.clone();
        let memo_key = match (mgr, src.func_by_name(&name)) {
            (Some(_), Some(sid)) => Some((
                cfg_digest.unwrap(),
                closure_digest(src, sid),
                closure_digest(tgt, tid),
            )),
            _ => None,
        };
        if let (Some(mgr), Some(key)) = (mgr, &memo_key) {
            if let Some(cv) = mgr.validate_memo(key) {
                let verdict = cv.to_verdict();
                if trace {
                    eprintln!(
                        "[validate] @{name} [{}] {} (memo) in {:?}",
                        tgt.name,
                        match &verdict {
                            Verdict::Proved => "proved".to_string(),
                            Verdict::Refuted(_) => "refuted".to_string(),
                            Verdict::Inconclusive(why) => format!("inconclusive: {why}"),
                        },
                        started.elapsed()
                    );
                }
                out.funcs.push(FuncVerdict { name, verdict });
                continue;
            }
        }
        let verdict = 'v: {
            let Some(sid) = src.func_by_name(&name) else {
                break 'v Verdict::Inconclusive("function introduced by the pass".into());
            };
            let sf = src.func(sid).expect("function exists");
            if sf.params != tf.params || sf.ret != tf.ret {
                break 'v Verdict::Inconclusive("signature changed".into());
            }
            if sf.is_decl != tf.is_decl {
                break 'v Verdict::Inconclusive("definition/declaration status changed".into());
            }
            if sf.is_decl {
                // same external symbol, same signature
                break 'v Verdict::Proved;
            }
            // structural fast paths over an identical global table:
            // byte-identical bodies, then canonical-form equivalence
            // (expression folding, const-branch folding, chain merging,
            // reachability pruning — see `canon`); equal canonical
            // forms behave identically on every input
            if globals_identical {
                if print_function(src, sf) == print_function(tgt, tf) {
                    break 'v Verdict::Proved;
                }
                if let (Some(a), Some(b)) = (canonical_body(src, sf), canonical_body(tgt, tf)) {
                    if a == b {
                        break 'v Verdict::Proved;
                    }
                }
            }
            if let Some(issue) = &global_issue {
                break 'v Verdict::Inconclusive(issue.clone());
            }
            validate_pair(src, tgt, sid, tid, cfg)
        };
        // Cache the pre-escalation verdict: `Proved`/`Inconclusive` are
        // pure functions of the closure digests (escalation only fires
        // on `Refuted`, which is never cached).
        if let (Some(mgr), Some(key)) = (mgr, memo_key) {
            mgr.record_validate(key, &verdict);
        }
        // Per-function refutation is only the final word for functions
        // whose standalone behaviour must be preserved: externally
        // visible ones and the module's differential entry. An internal
        // helper may be legitimately *specialized* against its
        // remaining call sites by an interprocedural pass (ipsccp
        // folding a constant argument, inlining + DCE), so a standalone
        // counterexample does not imply the module misbehaves. Escalate
        // instead: replay the module entry — a confirmed divergence
        // there is a real refutation; agreement downgrades to
        // inconclusive and the sanitizer's dynamic fallback takes over.
        let verdict = match verdict {
            Verdict::Refuted(cex) if !standalone_entry(src, &name) => {
                match entry_divergence(src, tgt) {
                    Some(entry_cex) => Verdict::Refuted(entry_cex),
                    None => Verdict::Inconclusive(format!(
                        "standalone counterexample on internal function \
                         (args {:?}) — possibly interprocedural \
                         specialization; module entry agrees on seeds",
                        cex.args
                    )),
                }
            }
            v => v,
        };
        if trace {
            eprintln!(
                "[validate] @{name} [{}] {} in {:?}",
                tgt.name,
                match &verdict {
                    Verdict::Proved => "proved".to_string(),
                    Verdict::Refuted(_) => "refuted".to_string(),
                    Verdict::Inconclusive(why) => format!("inconclusive: {why}"),
                },
                started.elapsed()
            );
        }
        out.funcs.push(FuncVerdict { name, verdict });
    }
    out
}

/// True when `name`'s standalone behaviour must be preserved by every
/// pass: externally visible functions, plus whichever function the
/// differential executor would drive as the module entry.
fn standalone_entry(src: &Module, name: &str) -> bool {
    if let Some(fid) = src.func_by_name(name) {
        let f = src.func(fid).expect("function exists");
        if f.linkage == posetrl_ir::module::Linkage::External {
            return true;
        }
    }
    crate::sanitizer::diff_entry(src).is_some_and(|(entry, _)| entry == name)
}

/// Replays the module's differential entry on both modules; a confirmed
/// non-refinement is a module-level counterexample.
fn entry_divergence(src: &Module, tgt: &Module) -> Option<Box<Counterexample>> {
    let (entry, args) = crate::sanitizer::diff_entry(src)?;
    match replay(src, tgt, &entry, args) {
        Verdict::Refuted(cex) => Some(cex),
        _ => None,
    }
}

/// Byte-level equality of the two global tables (names, types, counts,
/// mutability, initializers, arena ids — ids feed pointer ordinals).
fn globals_identical(src: &Module, tgt: &Module) -> bool {
    let a: Vec<_> = src.global_ids().collect();
    let b: Vec<_> = tgt.global_ids().collect();
    if a != b {
        return false;
    }
    a.iter().all(|&g| {
        let (x, y) = (src.global(g).unwrap(), tgt.global(g).unwrap());
        x.name == y.name
            && x.ty == y.ty
            && x.count == y.count
            && x.init == y.init
            && x.mutable == y.mutable
    })
}

/// Global-table changes the symbolic route cannot model soundly.
fn global_issue(src: &Module, tgt: &Module) -> Option<String> {
    for gid in tgt.global_ids() {
        let tg = tgt.global(gid).unwrap();
        let Some(sgid) = src.global_by_name(&tg.name) else {
            return Some("pass introduced a global".into());
        };
        let sg = src.global(sgid).unwrap();
        if sg.mutable != tg.mutable {
            return Some("global mutability changed".into());
        }
        if sg.mutable && (sg.ty != tg.ty || sg.count != tg.count || sg.init != tg.init) {
            return Some("mutable global initializer changed".into());
        }
    }
    None
}

fn validate_pair(
    src: &Module,
    tgt: &Module,
    sid: FuncId,
    tid: FuncId,
    cfg: &ValidateConfig,
) -> Verdict {
    let sf = src.func(sid).expect("function exists");
    let mut store = TermStore::new();

    // shared environment: one slot per global name, shared symbolic
    // initial cells per mutable global
    let mut env = SharedEnv::default();
    for m in [src, tgt] {
        for gid in m.global_ids() {
            let g = m.global(gid).unwrap();
            env.slot(&g.name);
            if g.mutable && !env.mutable_inits.contains_key(&g.name) {
                if g.ty == Ty::Ptr {
                    return Verdict::Inconclusive("pointer-typed global".into());
                }
                let cells = (0..g.count as usize)
                    .map(|i| SymVal {
                        v: store.sym(
                            width_of(g.ty),
                            SymOrigin::GlobalCell {
                                global: g.name.clone(),
                                index: i,
                                ty: g.ty,
                            },
                        ),
                        u: store.fls(),
                    })
                    .collect();
                env.mutable_inits.insert(g.name.clone(), cells);
            }
        }
    }

    // symbolic arguments (assumed non-undef; the dynamic fallback only
    // ever feeds concrete arguments, so this matches its input domain)
    let mut args = Vec::with_capacity(sf.params.len());
    let mut arg_syms: Vec<(TermId, Ty)> = Vec::new();
    for (i, &ty) in sf.params.iter().enumerate() {
        if ty == Ty::Ptr {
            return Verdict::Inconclusive("pointer parameter".into());
        }
        let v = store.sym(width_of(ty), SymOrigin::Arg { index: i, ty });
        arg_syms.push((v, ty));
        let u = store.fls();
        args.push(SVal::Scalar(SymVal { v, u }));
    }

    // symbolic execution of both sides over the shared environment
    let src_paths = match SymExec::new(src, &env, cfg).exec_function(&mut store, sid, &args) {
        Ok(p) => p,
        Err(b) => return Verdict::Inconclusive(b.0),
    };
    let tgt_paths = match SymExec::new(tgt, &env, cfg).exec_function(&mut store, tid, &args) {
        Ok(p) => p,
        Err(b) => return Verdict::Inconclusive(b.0),
    };
    if src_paths.len().saturating_mul(tgt_paths.len()) > cfg.max_path_pairs {
        return Verdict::Inconclusive("path-pair budget exhausted".into());
    }

    // src_ub: the source traps (paths partition the input space)
    let mut src_ub = store.fls();
    for s in &src_paths {
        let t = store.and(s.cond, s.ub);
        src_ub = store.or(src_ub, t);
    }
    let src_defined = store.not(src_ub);

    let mut viol = store.fls();
    // (1) the target traps where the source is defined
    for t in &tgt_paths {
        let tub = store.and(t.cond, t.ub);
        let v = store.and(tub, src_defined);
        viol = store.or(viol, v);
    }
    // (2) both defined, observable mismatch
    for s in &src_paths {
        let s_def = store.not(s.ub);
        for t in &tgt_paths {
            let t_def = store.not(t.ub);
            let conds = store.and(s.cond, t.cond);
            let defs = store.and(s_def, t_def);
            let guard = store.and(conds, defs);
            if store.as_const(guard) == Some(0) {
                continue;
            }
            let mm = mismatch(&mut store, &env, s, t);
            let v = store.and(guard, mm);
            viol = store.or(viol, v);
        }
    }

    match store.as_const(viol) {
        Some(0) => return Verdict::Proved,
        Some(_) => {
            // violated for every input: replay with all-zero arguments
            let args = zero_args(&arg_syms);
            return replay(src, tgt, &sf.name, args);
        }
        None => {}
    }

    // bit-blast and solve
    let mut blaster = Blaster::new(&store, cfg.max_clauses);
    let lit = match blaster.bit(viol) {
        Ok(l) => l,
        Err(_) => return Verdict::Inconclusive("bit-blasting budget exhausted".into()),
    };
    blaster.cnf.add(vec![lit]);
    match solve(&blaster.cnf, cfg.max_conflicts) {
        SatResult::Unsat => Verdict::Proved,
        SatResult::Unknown => Verdict::Inconclusive("SAT conflict budget exhausted".into()),
        SatResult::Sat(model) => {
            // a model is a *candidate*: if it leans on a global state the
            // initializers don't produce, or an uninterpreted operator,
            // the replay will not confirm it
            let args = arg_syms
                .iter()
                .map(|&(t, ty)| {
                    let raw = blaster.value_in_model(t, &model).unwrap_or(0);
                    if ty == Ty::F64 {
                        RtVal::Float(f64::from_bits(raw as u64))
                    } else {
                        RtVal::Int(raw)
                    }
                })
                .collect();
            replay(src, tgt, &sf.name, args)
        }
    }
}

fn zero_args(arg_syms: &[(TermId, Ty)]) -> Vec<RtVal> {
    arg_syms
        .iter()
        .map(|&(_, ty)| {
            if ty == Ty::F64 {
                RtVal::Float(0.0)
            } else {
                RtVal::Int(0)
            }
        })
        .collect()
}

/// Replays a candidate counterexample through the reference interpreter
/// on both modules; only a confirmed non-refinement is `Refuted`.
fn replay(src: &Module, tgt: &Module, entry: &str, args: Vec<RtVal>) -> Verdict {
    let cfg = InterpConfig {
        fuel: 20_000_000,
        max_depth: 512,
    };
    let src_obs = Interpreter::with_config(src, cfg)
        .run(entry, &args)
        .observation();
    let tgt_obs = Interpreter::with_config(tgt, cfg)
        .run(entry, &args)
        .observation();
    if tgt_obs.refines(&src_obs) {
        Verdict::Inconclusive("counterexample not confirmed by replay".into())
    } else {
        Verdict::Refuted(Box::new(Counterexample {
            entry: entry.to_string(),
            args,
            src_obs: render_obs(&src_obs),
            tgt_obs: render_obs(&tgt_obs),
        }))
    }
}

fn render_obs(o: &Observation) -> String {
    let head = match &o.result {
        Ok(Some(v)) => format!("ret {v:?}"),
        Ok(None) => "ret void".to_string(),
        Err(e) => format!("trap: {e}"),
    };
    if o.trace.is_empty() {
        head
    } else {
        format!("{head}; trace {:?}", o.trace)
    }
}

// --- mismatch construction ----------------------------------------------

/// Observable mismatch between one source and one target path, under
/// undef widening (source undef permits anything).
fn mismatch(store: &mut TermStore, env: &SharedEnv, s: &PathOutcome, t: &PathOutcome) -> TermId {
    let ret = ret_mismatch(store, &s.ret, &t.ret);
    let trace = trace_mismatch(store, &s.trace, &t.trace);
    let globals = globals_mismatch(store, env, s, t);
    let a = store.or(ret, trace);
    store.or(a, globals)
}

fn ret_mismatch(store: &mut TermStore, s: &Option<SVal>, t: &Option<SVal>) -> TermId {
    match (s, t) {
        (None, None) => store.fls(),
        (Some(sv), Some(tv)) => val_mismatch(store, sv, tv),
        _ => store.tru(),
    }
}

/// Strict value refinement (bases and offsets for pointers — stronger
/// than the observation's opaque-pointer abstraction, because returned
/// pointers flow into caller computations).
fn val_mismatch(store: &mut TermStore, s: &SVal, t: &SVal) -> TermId {
    match (s, t) {
        (SVal::Scalar(a), SVal::Scalar(b)) => scal_mismatch(store, a, b),
        (SVal::Ptr(a), SVal::Ptr(b)) => {
            let s_def = store.not(a.u);
            if a.base != b.base {
                return s_def;
            }
            let ne = store.ne(a.off, b.off);
            let bad = store.or(b.u, ne);
            store.and(s_def, bad)
        }
        _ => store.tru(),
    }
}

/// `¬s.u ∧ (t.u ∨ s.v ≠ t.v)` with widths reconciled the way the
/// interpreter compares (sign-extended i64).
fn scal_mismatch(store: &mut TermStore, s: &SymVal, t: &SymVal) -> TermId {
    let (sv, tv) = widen_pair(store, s.v, t.v);
    let ne = store.ne(sv, tv);
    let bad = store.or(t.u, ne);
    let s_def = store.not(s.u);
    store.and(s_def, bad)
}

fn widen_pair(store: &mut TermStore, a: TermId, b: TermId) -> (TermId, TermId) {
    if store.width(a) == store.width(b) {
        (a, b)
    } else {
        let a64 = sext64(store, a);
        let b64 = sext64(store, b);
        (a64, b64)
    }
}

fn sext64(store: &mut TermStore, t: TermId) -> TermId {
    if store.width(t) == 64 {
        t
    } else {
        store.cast(posetrl_ir::inst::CastKind::SExt, 64, t)
    }
}

fn trace_mismatch(
    store: &mut TermStore,
    s: &[super::exec::SymEvent],
    t: &[super::exec::SymEvent],
) -> TermId {
    if s.len() != t.len() {
        return store.tru();
    }
    let mut mm = store.fls();
    for (se, te) in s.iter().zip(t) {
        if se.callee != te.callee || se.args.len() != te.args.len() {
            return store.tru();
        }
        for (sa, ta) in se.args.iter().zip(&te.args) {
            let m = trace_arg_mismatch(store, sa, ta);
            mm = store.or(mm, m);
        }
    }
    mm
}

fn trace_arg_mismatch(store: &mut TermStore, s: &SymArg, t: &SymArg) -> TermId {
    match (s, t) {
        (SymArg::Scalar { fp: sf, val: a }, SymArg::Scalar { fp: tf, val: b }) => {
            if sf != tf {
                // Int vs Float trace variants never compare equal
                return store.not(a.u);
            }
            scal_mismatch(store, a, b)
        }
        // pointers trace opaquely: only the undef-ness is observable
        (SymArg::Ptr { u: su }, SymArg::Ptr { u: tu }) => {
            let s_def = store.not(*su);
            store.and(s_def, *tu)
        }
        (SymArg::Scalar { val: a, .. }, SymArg::Ptr { .. }) => store.not(a.u),
        (SymArg::Ptr { u: su }, SymArg::Scalar { .. }) => store.not(*su),
    }
}

/// Final-mutable-global-state obligation. A side that lacks the global
/// (e.g. the target after a pass deleted it) is held to the *initial*
/// shared cells — sound, though it demotes module-level dead-store
/// deletions to `Inconclusive`.
fn globals_mismatch(
    store: &mut TermStore,
    env: &SharedEnv,
    s: &PathOutcome,
    t: &PathOutcome,
) -> TermId {
    let mut mm = store.fls();
    for name in env.mutable_inits.keys() {
        let init = &env.mutable_inits[name];
        let s_cells = s
            .globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .unwrap_or(init);
        let t_cells = t
            .globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .unwrap_or(init);
        if s_cells.len() != t_cells.len() {
            return store.tru();
        }
        for (a, b) in s_cells.iter().zip(t_cells) {
            let m = scal_mismatch(store, a, b);
            mm = store.or(mm, m);
        }
    }
    mm
}
