//! Generic worklist fixpoint dataflow engine.
//!
//! Analyses describe a join-semilattice domain and a per-block transfer
//! function; the engine iterates blocks of the reachable CFG to a fixpoint.
//! Both directions are supported:
//!
//! - **Forward**: a block's input is the join of its predecessors' outputs;
//!   the transfer maps input (block entry) to output (block exit).
//! - **Backward**: a block's input is the join of its successors' outputs;
//!   the transfer maps input (block exit) to output (block entry).
//!
//! # Lattice contract
//!
//! [`JoinSemiLattice::join`] must be the least upper bound of a partial
//! order of finite height: idempotent (`x ⊔ x = x`), commutative,
//! associative, and monotone under repeated application (every join either
//! leaves the state unchanged or moves it strictly up a finite chain).
//! Transfer functions must be monotone in that order. Under those two
//! conditions the worklist terminates at the unique least fixpoint,
//! independent of visit order — the engine visits in reverse post-order
//! (forward) or post-order (backward) only to converge in fewer sweeps.

use posetrl_ir::analysis::cfg::Cfg;
use posetrl_ir::{BlockId, Function};
use std::collections::{HashMap, HashSet, VecDeque};

/// A join-semilattice: the domain of a dataflow analysis.
pub trait JoinSemiLattice: Clone {
    /// In-place least upper bound; returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Along control flow (entry towards exits).
    Forward,
    /// Against control flow (exits towards entry).
    Backward,
}

/// A dataflow analysis over one function.
pub trait DataflowAnalysis {
    /// The lattice the analysis computes over.
    type Domain: JoinSemiLattice;

    /// Direction of propagation.
    fn direction(&self) -> Direction;

    /// State at the boundary: the entry block's input for forward analyses,
    /// every exit block's input for backward analyses.
    fn boundary(&self, f: &Function) -> Self::Domain;

    /// The initial (bottom, "no information") state of every other block.
    fn bottom(&self, f: &Function) -> Self::Domain;

    /// Applies the whole-block transfer function to `state` in place.
    fn transfer(&self, f: &Function, b: BlockId, state: &mut Self::Domain);
}

/// The fixpoint solution: per-block states before and after the transfer.
///
/// `input` is the joined neighbor state the block's transfer consumed
/// (block entry for forward analyses, block exit for backward ones);
/// `output` is the transferred state. Only reachable blocks have entries.
#[derive(Debug, Clone)]
pub struct Fixpoint<D> {
    /// State at the transfer's input side of each reachable block.
    pub input: HashMap<BlockId, D>,
    /// State at the transfer's output side of each reachable block.
    pub output: HashMap<BlockId, D>,
}

/// Runs `analysis` over `f` to a fixpoint.
pub fn solve<A: DataflowAnalysis>(f: &Function, cfg: &Cfg, analysis: &A) -> Fixpoint<A::Domain> {
    let order: Vec<BlockId> = match analysis.direction() {
        Direction::Forward => cfg.rpo.clone(),
        Direction::Backward => cfg.rpo.iter().rev().copied().collect(),
    };
    let reachable: HashSet<BlockId> = order.iter().copied().collect();

    // neighbors feeding a block's input, and the blocks its output feeds
    let feeds_from = |b: BlockId| -> Vec<BlockId> {
        let ns = match analysis.direction() {
            Direction::Forward => cfg.preds.get(&b),
            Direction::Backward => cfg.succs.get(&b),
        };
        ns.map(|v| {
            v.iter()
                .copied()
                .filter(|n| reachable.contains(n))
                .collect()
        })
        .unwrap_or_default()
    };
    let feeds_into = |b: BlockId| -> Vec<BlockId> {
        let ns = match analysis.direction() {
            Direction::Forward => cfg.succs.get(&b),
            Direction::Backward => cfg.preds.get(&b),
        };
        ns.map(|v| {
            v.iter()
                .copied()
                .filter(|n| reachable.contains(n))
                .collect()
        })
        .unwrap_or_default()
    };

    let mut input: HashMap<BlockId, A::Domain> = HashMap::new();
    let mut output: HashMap<BlockId, A::Domain> = HashMap::new();
    for &b in &order {
        let is_boundary = match analysis.direction() {
            Direction::Forward => b == cfg.entry,
            Direction::Backward => feeds_from(b).is_empty(),
        };
        let state = if is_boundary {
            analysis.boundary(f)
        } else {
            analysis.bottom(f)
        };
        input.insert(b, state);
    }

    let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued: HashSet<BlockId> = queue.iter().copied().collect();
    while let Some(b) = queue.pop_front() {
        queued.remove(&b);
        let mut state = input[&b].clone();
        analysis.transfer(f, b, &mut state);
        let changed = match output.get_mut(&b) {
            Some(prev) => prev.join(&state),
            None => {
                output.insert(b, state);
                true
            }
        };
        if changed {
            for n in feeds_into(b) {
                if input.get_mut(&n).unwrap().join(&output[&b]) && queued.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }

    Fixpoint { input, output }
}

// ---------------------------------------------------------------------------
// Bit-set domains
// ---------------------------------------------------------------------------

/// A fixed-capacity bit set, the workhorse domain for per-instruction facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full universe `0..len`.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`; returns `true` if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let had = self.words[w] & m != 0;
        self.words[w] |= m;
        !had
    }

    /// Tests bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// In-place union; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place intersection; returns `true` if `self` shrank.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// A *may* (union-join) bit-set domain: bottom is the empty set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MayBits(pub BitSet);

impl JoinSemiLattice for MayBits {
    fn join(&mut self, other: &Self) -> bool {
        self.0.union_with(&other.0)
    }
}

/// A *must* (intersection-join) bit-set domain.
///
/// The join order is reversed relative to set inclusion: bottom ("no paths
/// seen yet") is [`MustBits::All`], the identity of intersection, so facts
/// only survive if they hold on **every** incoming path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MustBits {
    /// The universal set: the state of a block no path has reached yet.
    All,
    /// An explicit fact set.
    Known(BitSet),
}

impl MustBits {
    /// Tests membership (`All` contains everything).
    pub fn contains(&self, i: usize) -> bool {
        match self {
            MustBits::All => true,
            MustBits::Known(s) => s.contains(i),
        }
    }

    /// Sets bit `i` (no-op on `All`).
    pub fn insert(&mut self, i: usize) {
        if let MustBits::Known(s) = self {
            s.insert(i);
        }
    }
}

impl JoinSemiLattice for MustBits {
    fn join(&mut self, other: &Self) -> bool {
        match (&mut *self, other) {
            (_, MustBits::All) => false,
            (MustBits::All, MustBits::Known(o)) => {
                *self = MustBits::Known(o.clone());
                true
            }
            (MustBits::Known(s), MustBits::Known(o)) => s.intersect_with(o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_ir::{Op, Ty, Value};

    /// entry -> {a, b} -> merge; a loop edge merge -> a.
    fn diamond_with_loop() -> (Function, BlockId, BlockId, BlockId) {
        let mut f = Function::new("d", vec![], Ty::Void);
        let entry = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let merge = f.add_block();
        f.append_inst(
            entry,
            Op::CondBr {
                cond: Value::bool(true),
                then_bb: a,
                else_bb: b,
            },
        );
        f.append_inst(
            a,
            Op::CondBr {
                cond: Value::bool(false),
                then_bb: merge,
                else_bb: a,
            },
        );
        f.append_inst(b, Op::Br { target: merge });
        f.append_inst(merge, Op::Ret { val: None });
        (f, a, b, merge)
    }

    /// Forward reachability-count analysis: each block's input is the union
    /// of block ids on some path to it.
    struct ReachingBlocks;

    impl DataflowAnalysis for ReachingBlocks {
        type Domain = MayBits;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, f: &Function) -> MayBits {
            MayBits(BitSet::empty(f.num_blocks() + 4))
        }
        fn bottom(&self, f: &Function) -> MayBits {
            MayBits(BitSet::empty(f.num_blocks() + 4))
        }
        fn transfer(&self, _f: &Function, b: BlockId, state: &mut MayBits) {
            state.0.insert(b.index());
        }
    }

    #[test]
    fn forward_may_analysis_reaches_fixpoint() {
        let (f, a, b, merge) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let fx = solve(&f, &cfg, &ReachingBlocks);
        // merge's input has seen entry, a and b
        let at_merge = &fx.input[&merge].0;
        assert!(at_merge.contains(f.entry.index()));
        assert!(at_merge.contains(a.index()));
        assert!(at_merge.contains(b.index()));
        // a's input includes itself via the self-loop
        assert!(fx.input[&a].0.contains(a.index()));
        assert!(!fx.input[&b].0.contains(a.index()));
    }

    /// Must-analysis: blocks that appear on *every* path from the entry.
    struct DominatingBlocks;

    impl DataflowAnalysis for DominatingBlocks {
        type Domain = MustBits;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, f: &Function) -> MustBits {
            MustBits::Known(BitSet::empty(f.num_blocks() + 4))
        }
        fn bottom(&self, _f: &Function) -> MustBits {
            MustBits::All
        }
        fn transfer(&self, _f: &Function, b: BlockId, state: &mut MustBits) {
            state.insert(b.index());
        }
    }

    #[test]
    fn forward_must_analysis_matches_dominators() {
        let (f, a, _b, merge) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let fx = solve(&f, &cfg, &DominatingBlocks);
        let at_merge = &fx.input[&merge];
        assert!(at_merge.contains(f.entry.index()), "entry dominates merge");
        assert!(!at_merge.contains(a.index()), "a does not dominate merge");
    }

    /// Backward analysis: blocks from which `merge` is inevitable.
    struct BlocksSeenGoingBack;

    impl DataflowAnalysis for BlocksSeenGoingBack {
        type Domain = MayBits;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self, f: &Function) -> MayBits {
            MayBits(BitSet::empty(f.num_blocks() + 4))
        }
        fn bottom(&self, f: &Function) -> MayBits {
            MayBits(BitSet::empty(f.num_blocks() + 4))
        }
        fn transfer(&self, _f: &Function, b: BlockId, state: &mut MayBits) {
            state.0.insert(b.index());
        }
    }

    #[test]
    fn backward_analysis_propagates_against_edges() {
        let (f, a, b, merge) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let fx = solve(&f, &cfg, &BlocksSeenGoingBack);
        // the entry's input (its exit state, looking backward) sees all
        // blocks on paths to any exit
        let at_entry = &fx.input[&f.entry].0;
        assert!(at_entry.contains(a.index()));
        assert!(at_entry.contains(b.index()));
        assert!(at_entry.contains(merge.index()));
        // merge is an exit: its input is the boundary (empty)
        assert!(fx.input[&merge].0.is_empty());
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::empty(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        assert!(a.contains(129) && !a.contains(64));
        let mut b = BitSet::empty(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let full = BitSet::full(130);
        let mut c = full.clone();
        assert!(!c.intersect_with(&full));
        assert!(c.intersect_with(&a));
        assert_eq!(c, a);
    }

    #[test]
    fn must_bits_join_is_intersection_with_all_identity() {
        let mut x = MustBits::All;
        let mut k = BitSet::empty(8);
        k.insert(1);
        k.insert(2);
        assert!(x.join(&MustBits::Known(k.clone())));
        let mut only2 = BitSet::empty(8);
        only2.insert(2);
        assert!(x.join(&MustBits::Known(only2)));
        assert!(!x.contains(1));
        assert!(x.contains(2));
        assert!(!x.join(&MustBits::All));
    }
}
