//! Shared CLI exit-code scheme.
//!
//! Every analysis-facing binary (`mini-analyze`, `mini_opt`) uses the
//! same three-value contract so CI can distinguish "clean" from
//! "findings" from "operator error":
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean — no findings at the requested severity/level |
//! | 1    | findings — denied diagnostics, miscompiles, or refutations |
//! | 2    | usage or I/O error — bad flags, unreadable/unparsable input |

/// No findings.
pub const CLEAN: i32 = 0;
/// Findings at or above the requested severity (lint denials,
/// sanitizer miscompiles, validation refutations).
pub const FINDINGS: i32 = 1;
/// Usage, parse, or I/O error — the run itself could not be completed.
pub const USAGE: i32 = 2;
