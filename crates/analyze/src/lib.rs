//! Dataflow-based IR sanitizer for the POSET-RL reproduction.
//!
//! POSET-RL's phase-ordering agent applies long, learned sequences of
//! optimization passes; the paper implicitly trusts every pass. This crate
//! removes that trust boundary with three layers:
//!
//! - a generic worklist fixpoint **dataflow engine** ([`dataflow`]) over
//!   the IR's CFG, parameterized by a join-semilattice domain and a
//!   direction;
//! - a **lint suite** ([`analyses`]) built on it: dominance-aware SSA
//!   use-before-def, undef/poison propagation, constant-memory bounds and
//!   mutability checks, uninitialized-stack-load detection,
//!   unreachable/dead-code notes and call-boundary type consistency;
//! - a **pass-pipeline sanitizer** ([`sanitizer`]) that re-runs the suite
//!   after every applied pass, differentially executes the pre/post
//!   modules in the reference interpreter and, on an observation mismatch,
//!   emits a delta-reduced minimal reproducer as a JSON artifact;
//! - a **symbolic translation validator** ([`validate`]) that statically
//!   proves individual pass applications correct for *all* inputs
//!   (Alive2-style refinement: term language → symbolic execution →
//!   bit-blasting → CDCL SAT, with interpreter-confirmed
//!   counterexamples), wired in as the `validate` sanitizer level.
//!
//! The `mini-analyze` binary exposes the suite over `.pir` files and the
//! generated workload corpora for CI.

pub mod absint;
pub mod alias;
pub mod analyses;
pub mod dataflow;
pub mod depend;
pub mod diag;
pub mod exit_codes;
pub mod incremental;
pub mod profile;
pub mod sanitizer;
pub mod scev;
pub mod validate;

pub use absint::{analyze_module, analyze_module_with, FnSummary, FuncFacts, ModuleAbsint};
pub use alias::{
    memdep::MemDep, AliasConfig, AliasFnResult, FnAliasSummary, FuncAlias, MemObj, ModuleAlias,
    PtsSet,
};
pub use analyses::{run_all, run_all_with};
pub use dataflow::{solve, BitSet, DataflowAnalysis, Direction, Fixpoint, JoinSemiLattice};
pub use depend::{DepKind, DependConfig, DependFnResult, Dependence, LoopDepend, ModuleDepend};
pub use diag::{codes, Diagnostic, Severity};
pub use incremental::{CachedVerdict, ClassStats, IncrementalAnalysisManager, IncrementalStats};
pub use profile::{FnProfile, ModuleProfile};
pub use sanitizer::{
    check_sanitize_env, expect_verified, MiscompileReport, ParseLevelError, SanitizeLevel,
    Sanitizer, SanitizerStats, TransformVerdict,
};
pub use scev::{AddRec, LoopScev, ModuleScev, ScevConfig, ScevFnResult, TripCount};
pub use validate::{
    env_budget_or_usage, parse_env_budget, validate_transform, validate_transform_with,
    EnvParseError, ModuleValidation, ValidateConfig, Verdict,
};
