//! The abstract product domain: known-bits × signed/unsigned intervals ×
//! pointer nullness/alignment.
//!
//! Every integer fact is expressed over the IR's canonical runtime
//! representation: values of width `w` are stored **sign-extended to
//! `i64`** (see `posetrl_ir::Ty::wrap`), with `i1` the exception (0 or 1,
//! never −1). Known bits therefore cover the full 64-bit sign-extended
//! pattern, the signed interval bounds live in that same space, and the
//! unsigned interval bounds cover the `w`-bit zero-extended
//! reinterpretation.
//!
//! # Lattice shape and termination
//!
//! [`AbsVal::join`] is a plain componentwise least upper bound over the
//! product; the generic worklist engine has no widening hook, so the
//! interval component guarantees finite ascending chains itself: each
//! bound carries a *growth counter*, and after [`WIDEN_LIMIT`] joins that
//! strictly relax a bound, that bound snaps to the type extreme. Known
//! bits only ever lose bits under join (chain length ≤ 128) and nullness
//! is a 3-point lattice, so the whole product has finite height.

use posetrl_ir::{BinOp, CastKind, Const, IntPred, Ty};

/// Number of bound-relaxing joins before an interval bound is widened to
/// the type extreme.
pub const WIDEN_LIMIT: u8 = 4;

/// Signed value range of an integer type (in sign-extended `i64` space).
/// `i1` is unsigned-ish by construction: `Ty::wrap` maps it to {0, 1}.
pub fn ty_signed_range(ty: Ty) -> (i64, i64) {
    match ty {
        Ty::I1 => (0, 1),
        Ty::I8 => (i8::MIN as i64, i8::MAX as i64),
        Ty::I32 => (i32::MIN as i64, i32::MAX as i64),
        _ => (i64::MIN, i64::MAX),
    }
}

/// Maximum value of the `w`-bit unsigned reinterpretation.
pub fn ty_unsigned_max(ty: Ty) -> u64 {
    match ty {
        Ty::I1 => 1,
        Ty::I8 => u8::MAX as u64,
        Ty::I32 => u32::MAX as u64,
        _ => u64::MAX,
    }
}

/// Zero-extended `w`-bit reinterpretation of a sign-extended value.
pub fn zext_repr(v: i64, ty: Ty) -> u64 {
    (v as u64) & ty_unsigned_max(ty)
}

/// Bits of the 64-bit sign-extended representation known to be zero/one.
///
/// The empty fact (`zeros = ones = 0`) is ⊤; a fully known value `v` has
/// `ones = v` and `zeros = !v`. The invariant `zeros & ones == 0` holds
/// for every reachable fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Mask of bits known to be 0.
    pub zeros: u64,
    /// Mask of bits known to be 1.
    pub ones: u64,
}

impl KnownBits {
    /// No bit known.
    pub fn top() -> KnownBits {
        KnownBits { zeros: 0, ones: 0 }
    }

    /// Every bit of `v` known.
    pub fn exact(v: i64) -> KnownBits {
        KnownBits {
            zeros: !(v as u64),
            ones: v as u64,
        }
    }

    /// The exactly-known value, if every bit is known.
    pub fn as_exact(&self) -> Option<i64> {
        if self.zeros | self.ones == u64::MAX {
            Some(self.ones as i64)
        } else {
            None
        }
    }

    /// Number of known bits (0..=64).
    pub fn count_known(&self) -> u32 {
        (self.zeros | self.ones).count_ones()
    }

    /// Componentwise join: keep only agreement.
    pub fn join(&mut self, other: &KnownBits) -> bool {
        let z = self.zeros & other.zeros;
        let o = self.ones & other.ones;
        let changed = z != self.zeros || o != self.ones;
        self.zeros = z;
        self.ones = o;
        changed
    }

    /// Bitwise transfer functions (exact on the sign-extended repr).
    pub fn and(a: KnownBits, b: KnownBits) -> KnownBits {
        KnownBits {
            zeros: a.zeros | b.zeros,
            ones: a.ones & b.ones,
        }
    }

    /// Known bits of `a | b`.
    pub fn or(a: KnownBits, b: KnownBits) -> KnownBits {
        KnownBits {
            zeros: a.zeros & b.zeros,
            ones: a.ones | b.ones,
        }
    }

    /// Known bits of `a ^ b`.
    pub fn xor(a: KnownBits, b: KnownBits) -> KnownBits {
        let known = (a.zeros | a.ones) & (b.zeros | b.ones);
        let val = a.ones ^ b.ones;
        KnownBits {
            zeros: known & !val,
            ones: known & val,
        }
    }

    /// Number of trailing bits known to be zero.
    pub fn trailing_zeros(&self) -> u32 {
        (!self.zeros).trailing_zeros().min(64)
    }
}

/// Facts about one integer SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntFacts {
    /// The value's IR type (`i1`/`i8`/`i32`/`i64`).
    pub ty: Ty,
    /// Known bits over the sign-extended 64-bit representation.
    pub bits: KnownBits,
    /// Inclusive signed bounds (sign-extended representation).
    pub lo: i64,
    /// Inclusive signed upper bound.
    pub hi: i64,
    /// Inclusive unsigned bounds over the zero-extended `w`-bit value.
    pub ulo: u64,
    /// Inclusive unsigned upper bound.
    pub uhi: u64,
    /// Join-growth counters for `lo`/`hi` (widening bookkeeping).
    grow_lo: u8,
    grow_hi: u8,
}

impl IntFacts {
    /// The unconstrained fact of an integer type.
    pub fn top(ty: Ty) -> IntFacts {
        let (lo, hi) = ty_signed_range(ty);
        IntFacts {
            ty,
            bits: KnownBits::top(),
            lo,
            hi,
            ulo: 0,
            uhi: ty_unsigned_max(ty),
            grow_lo: 0,
            grow_hi: 0,
        }
    }

    /// The exact fact of a constant (already wrapped into `ty`).
    pub fn exact(ty: Ty, v: i64) -> IntFacts {
        let v = ty.wrap(v);
        let u = zext_repr(v, ty);
        IntFacts {
            ty,
            bits: KnownBits::exact(v),
            lo: v,
            hi: v,
            ulo: u,
            uhi: u,
            grow_lo: 0,
            grow_hi: 0,
        }
    }

    /// A fact from signed bounds alone (bounds clamped to the type range).
    pub fn range(ty: Ty, lo: i64, hi: i64) -> IntFacts {
        let (tlo, thi) = ty_signed_range(ty);
        let lo = lo.max(tlo);
        let hi = hi.min(thi);
        if lo > hi {
            // empty concretization cannot arise from sound transfers; fall
            // back to ⊤ rather than modelling bottom inside IntFacts
            return IntFacts::top(ty);
        }
        let mut f = IntFacts::top(ty);
        f.lo = lo;
        f.hi = hi;
        f.reconcile();
        f
    }

    /// The single concrete value, if the fact pins one down.
    pub fn as_singleton(&self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            self.bits.as_exact()
        }
    }

    /// `true` when no component carries any information.
    pub fn is_top(&self) -> bool {
        let (tlo, thi) = ty_signed_range(self.ty);
        self.lo == tlo
            && self.hi == thi
            && self.ulo == 0
            && self.uhi == ty_unsigned_max(self.ty)
            && self.bits.count_known() == 0
    }

    /// `true` when the signed range is strictly inside the type range.
    pub fn is_strict_range(&self) -> bool {
        let (tlo, thi) = ty_signed_range(self.ty);
        self.lo > tlo || self.hi < thi
    }

    /// `true` when the value is provably non-negative.
    pub fn non_negative(&self) -> bool {
        self.lo >= 0
    }

    /// Derives cheap cross-component facts: a singleton range pins the
    /// bits; non-negative small ranges pin high zero bits; known bits can
    /// tighten the unsigned range. Called at fact construction only (never
    /// inside `join`), keeping the join a plain componentwise lub.
    pub fn reconcile(&mut self) {
        if self.lo == self.hi {
            *self = IntFacts::exact(self.ty, self.lo);
            return;
        }
        if self.lo >= 0 {
            // all values in [lo, hi] share the leading zeros of hi
            let leading = (self.hi as u64).leading_zeros();
            if leading > 0 {
                self.bits.zeros |= !((u64::MAX) >> leading);
            }
            // unsigned order matches signed order on non-negative values
            self.ulo = self.ulo.max(zext_repr(self.lo, self.ty));
            self.uhi = self.uhi.min(zext_repr(self.hi, self.ty));
        }
        debug_assert_eq!(self.bits.zeros & self.bits.ones, 0);
    }

    /// Componentwise join with widening on the signed bounds.
    pub fn join(&mut self, other: &IntFacts) -> bool {
        debug_assert_eq!(self.ty, other.ty);
        let mut changed = self.bits.join(&other.bits);
        let (tlo, thi) = ty_signed_range(self.ty);
        if other.lo < self.lo {
            self.grow_lo = self.grow_lo.saturating_add(1).max(other.grow_lo);
            self.lo = if self.grow_lo >= WIDEN_LIMIT {
                tlo
            } else {
                other.lo
            };
            changed = true;
        }
        if other.hi > self.hi {
            self.grow_hi = self.grow_hi.saturating_add(1).max(other.grow_hi);
            self.hi = if self.grow_hi >= WIDEN_LIMIT {
                thi
            } else {
                other.hi
            };
            changed = true;
        }
        if other.ulo < self.ulo {
            self.ulo = if self.grow_lo >= WIDEN_LIMIT || self.grow_hi >= WIDEN_LIMIT {
                0
            } else {
                other.ulo
            };
            changed = true;
        }
        if other.uhi > self.uhi {
            self.uhi = if self.grow_lo >= WIDEN_LIMIT || self.grow_hi >= WIDEN_LIMIT {
                ty_unsigned_max(self.ty)
            } else {
                other.uhi
            };
            changed = true;
        }
        changed
    }
}

/// Pointer nullness: a 3-point lattice (joined towards `Maybe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// Provably the null pointer.
    Null,
    /// Provably not null.
    NonNull,
    /// Either.
    Maybe,
}

impl Nullness {
    fn join(&mut self, other: Nullness) -> bool {
        if *self == other {
            false
        } else {
            let changed = *self != Nullness::Maybe;
            *self = Nullness::Maybe;
            changed
        }
    }
}

/// The object a pointer provably derives from, within one function.
///
/// Bases are function-local (`Alloca` names an instruction arena slot),
/// so interprocedural summaries widen them to `Unknown` before export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrBase {
    /// A stack slot: `Alloca` arena index within the current function.
    Alloca(u32),
    /// A module global, by arena index.
    Global(u32),
    /// Any object.
    Unknown,
}

/// Facts about one pointer SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrFacts {
    /// Nullness.
    pub null: Nullness,
    /// Provable base object.
    pub base: PtrBase,
    /// Inclusive element-offset bounds from the base (meaningful only
    /// when `base` is not `Unknown`).
    pub off_lo: i64,
    /// Inclusive element-offset upper bound.
    pub off_hi: i64,
    /// Trailing zero bits provably present in the byte offset (element
    /// offset × element size), capped at 8 — the alignment fact.
    pub align_tz: u8,
    grow: u8,
}

impl PtrFacts {
    /// Any pointer.
    pub fn top() -> PtrFacts {
        PtrFacts {
            null: Nullness::Maybe,
            base: PtrBase::Unknown,
            off_lo: 0,
            off_hi: 0,
            align_tz: 0,
            grow: 0,
        }
    }

    /// The null pointer.
    pub fn null() -> PtrFacts {
        PtrFacts {
            null: Nullness::Null,
            base: PtrBase::Unknown,
            off_lo: 0,
            off_hi: 0,
            align_tz: 8,
            grow: 0,
        }
    }

    /// A pointer at offset 0 of a known base object of alignment
    /// `align_tz` trailing zero bits.
    pub fn object(base: PtrBase, align_tz: u8) -> PtrFacts {
        PtrFacts {
            null: Nullness::NonNull,
            base,
            off_lo: 0,
            off_hi: 0,
            align_tz: align_tz.min(8),
            grow: 0,
        }
    }

    /// Componentwise join (bases must match to survive; offsets widen).
    pub fn join(&mut self, other: &PtrFacts) -> bool {
        let mut changed = self.null.join(other.null);
        if self.base != other.base {
            if self.base != PtrBase::Unknown {
                self.base = PtrBase::Unknown;
                self.off_lo = 0;
                self.off_hi = 0;
                changed = true;
            }
        } else if self.base != PtrBase::Unknown {
            if other.off_lo < self.off_lo {
                self.grow = self.grow.saturating_add(1);
                self.off_lo = if self.grow >= WIDEN_LIMIT {
                    i64::MIN
                } else {
                    other.off_lo
                };
                changed = true;
            }
            if other.off_hi > self.off_hi {
                self.grow = self.grow.saturating_add(1);
                self.off_hi = if self.grow >= WIDEN_LIMIT {
                    i64::MAX
                } else {
                    other.off_hi
                };
                changed = true;
            }
        }
        if other.align_tz < self.align_tz {
            self.align_tz = other.align_tz;
            changed = true;
        }
        changed
    }
}

/// The abstract value of one SSA slot: a flat product-domain element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbsVal {
    /// Unreached / no information yet (⊥).
    #[default]
    Bottom,
    /// An integer with facts.
    Int(IntFacts),
    /// Any float (no float facts are tracked).
    Float,
    /// A pointer with facts.
    Ptr(PtrFacts),
    /// Any value of any kind, including undef (⊤).
    Top,
}

impl AbsVal {
    /// The abstract value of a constant. Undef maps to ⊤ so the absint
    /// lints never overlap the dedicated undef lint family.
    pub fn of_const(c: Const) -> AbsVal {
        match c {
            Const::Int { ty, val } => AbsVal::Int(IntFacts::exact(ty, val)),
            Const::Float(_) => AbsVal::Float,
            Const::Null => AbsVal::Ptr(PtrFacts::null()),
            Const::Undef(_) => AbsVal::Top,
        }
    }

    /// The unconstrained value of a static type.
    pub fn top_of(ty: Ty) -> AbsVal {
        match ty {
            Ty::I1 | Ty::I8 | Ty::I32 | Ty::I64 => AbsVal::Int(IntFacts::top(ty)),
            Ty::F64 => AbsVal::Float,
            Ty::Ptr => AbsVal::Ptr(PtrFacts::top()),
            Ty::Void => AbsVal::Top,
        }
    }

    /// Integer facts, if this is an integer.
    pub fn as_int(&self) -> Option<&IntFacts> {
        match self {
            AbsVal::Int(f) => Some(f),
            _ => None,
        }
    }

    /// Pointer facts, if this is a pointer.
    pub fn as_ptr(&self) -> Option<&PtrFacts> {
        match self {
            AbsVal::Ptr(f) => Some(f),
            _ => None,
        }
    }

    /// The single concrete integer, if pinned down.
    pub fn singleton(&self) -> Option<i64> {
        self.as_int().and_then(|f| f.as_singleton())
    }

    /// `true` for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, AbsVal::Bottom)
    }

    /// In-place least upper bound; returns `true` if `self` changed.
    pub fn join(&mut self, other: &AbsVal) -> bool {
        match (&mut *self, other) {
            (_, AbsVal::Bottom) => false,
            (AbsVal::Bottom, _) => {
                *self = *other;
                true
            }
            (AbsVal::Top, _) => false,
            (_, AbsVal::Top) => {
                *self = AbsVal::Top;
                true
            }
            (AbsVal::Int(a), AbsVal::Int(b)) if a.ty == b.ty => a.join(b),
            (AbsVal::Float, AbsVal::Float) => false,
            (AbsVal::Ptr(a), AbsVal::Ptr(b)) => a.join(b),
            _ => {
                *self = AbsVal::Top;
                true
            }
        }
    }

    /// Summary-export form: drops function-local pointer bases so a fact
    /// can cross a call boundary.
    pub fn exported(&self) -> AbsVal {
        match self {
            AbsVal::Ptr(p) => {
                let mut p = *p;
                p.base = PtrBase::Unknown;
                p.off_lo = 0;
                p.off_hi = 0;
                AbsVal::Ptr(p)
            }
            v => *v,
        }
    }
}

// ---------------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------------

/// Mirrors the interpreter's `eval_bin` on concrete integers (wrapping
/// two's complement; division traps are the caller's concern).
fn concrete_bin(op: BinOp, ty: Ty, a: i64, b: i64) -> Option<i64> {
    let width = ty.bit_width();
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b as u32) % width),
        BinOp::AShr => a.wrapping_shr((b as u32) % width),
        BinOp::LShr => {
            let ua = (a as u64) & ty_unsigned_max(ty);
            (ua >> ((b as u32) % width)) as i64
        }
        _ => return None,
    };
    Some(ty.wrap(v))
}

/// Abstract transfer of an integer binary operation.
pub fn transfer_bin(op: BinOp, ty: Ty, a: &IntFacts, b: &IntFacts) -> AbsVal {
    if op.is_float() {
        return AbsVal::Float;
    }
    // exact case first: both singletons
    if let (Some(x), Some(y)) = (a.as_singleton(), b.as_singleton()) {
        if let Some(v) = concrete_bin(op, ty, x, y) {
            return AbsVal::Int(IntFacts::exact(ty, v));
        }
        // a provable trap (div by zero); the lint reports it, the value
        // itself is unconstrained
        return AbsVal::Int(IntFacts::top(ty));
    }
    let mut out = IntFacts::top(ty);
    match op {
        BinOp::Add | BinOp::Sub => {
            let (lo, hi) = if op == BinOp::Add {
                (a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128)
            } else {
                (a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128)
            };
            let (tlo, thi) = ty_signed_range(ty);
            if lo >= tlo as i128 && hi <= thi as i128 {
                out.lo = lo as i64;
                out.hi = hi as i64;
            }
        }
        BinOp::Mul => {
            let cands = [
                a.lo as i128 * b.lo as i128,
                a.lo as i128 * b.hi as i128,
                a.hi as i128 * b.lo as i128,
                a.hi as i128 * b.hi as i128,
            ];
            let (lo, hi) = (*cands.iter().min().unwrap(), *cands.iter().max().unwrap());
            let (tlo, thi) = ty_signed_range(ty);
            if lo >= tlo as i128 && hi <= thi as i128 {
                out.lo = lo as i64;
                out.hi = hi as i64;
            }
        }
        BinOp::SDiv => {
            // |a / b| ≤ |a| unless the lone wrap case (MIN / −1); excluding
            // it keeps the magnitude bound sound
            let (tlo, _) = ty_signed_range(ty);
            if a.lo > tlo {
                let mag = a.lo.unsigned_abs().max(a.hi.unsigned_abs()) as i64;
                out.lo = -mag;
                out.hi = mag;
            }
        }
        BinOp::SRem => {
            // |a % b| < |b|, and the sign follows the dividend — sound
            // whenever the divisor's magnitude bound does not overflow
            let bmag = b.lo.unsigned_abs().max(b.hi.unsigned_abs());
            if bmag > 0 && bmag <= i64::MAX as u64 {
                let m = bmag as i64 - 1;
                out.lo = if a.non_negative() { 0 } else { -m };
                out.hi = m;
            }
        }
        BinOp::And => {
            out.bits = KnownBits::and(a.bits, b.bits);
            if a.non_negative() || b.non_negative() {
                out.lo = 0;
                out.hi = if a.non_negative() && b.non_negative() {
                    a.hi.min(b.hi)
                } else if a.non_negative() {
                    a.hi
                } else {
                    b.hi
                };
            }
        }
        BinOp::Or => {
            out.bits = KnownBits::or(a.bits, b.bits);
        }
        BinOp::Xor => {
            out.bits = KnownBits::xor(a.bits, b.bits);
        }
        BinOp::Shl => {
            if let Some(sh) = b.as_singleton() {
                let sh = (sh as u32) % ty.bit_width();
                if a.non_negative() && a.hi.leading_zeros() > sh + (64 - ty.bit_width()) {
                    out.lo = a.lo << sh;
                    out.hi = a.hi << sh;
                }
                out.bits.zeros |= (1u64 << sh) - 1;
            }
        }
        BinOp::AShr => {
            if let Some(sh) = b.as_singleton() {
                let sh = (sh as u32) % ty.bit_width();
                out.lo = a.lo >> sh;
                out.hi = a.hi >> sh;
            }
        }
        BinOp::LShr => {
            if let Some(sh) = b.as_singleton() {
                let sh = (sh as u32) % ty.bit_width();
                if sh > 0 {
                    out.lo = 0;
                    out.hi = (ty_unsigned_max(ty) >> sh) as i64;
                } else if a.non_negative() {
                    out.lo = a.lo;
                    out.hi = a.hi;
                }
            } else if a.non_negative() {
                // shifting a non-negative value right never grows it
                out.lo = 0;
                out.hi = a.hi;
            }
        }
        _ => {}
    }
    out.reconcile();
    AbsVal::Int(out)
}

/// Abstract transfer of an integer comparison: `Some(b)` when decided.
pub fn transfer_icmp(pred: IntPred, a: &IntFacts, b: &IntFacts) -> Option<bool> {
    if let (Some(x), Some(y)) = (a.as_singleton(), b.as_singleton()) {
        return Some(pred.eval(x, y));
    }
    match pred {
        IntPred::Eq => {
            if a.hi < b.lo || b.hi < a.lo {
                return Some(false);
            }
        }
        IntPred::Ne => {
            if a.hi < b.lo || b.hi < a.lo {
                return Some(true);
            }
        }
        IntPred::Slt => {
            if a.hi < b.lo {
                return Some(true);
            }
            if a.lo >= b.hi {
                return Some(false);
            }
        }
        IntPred::Sle => {
            if a.hi <= b.lo {
                return Some(true);
            }
            if a.lo > b.hi {
                return Some(false);
            }
        }
        IntPred::Sgt => {
            if a.lo > b.hi {
                return Some(true);
            }
            if a.hi <= b.lo {
                return Some(false);
            }
        }
        IntPred::Sge => {
            if a.lo >= b.hi {
                return Some(true);
            }
            if a.hi < b.lo {
                return Some(false);
            }
        }
    }
    None
}

/// Abstract transfer of a cast.
pub fn transfer_cast(kind: CastKind, to: Ty, v: &AbsVal) -> AbsVal {
    let f = match v.as_int() {
        Some(f) => f,
        None => return AbsVal::top_of(to),
    };
    match kind {
        CastKind::Trunc => {
            if let Some(x) = f.as_singleton() {
                AbsVal::Int(IntFacts::exact(to, x))
            } else if f.non_negative() && zext_repr(f.hi, f.ty) <= ty_unsigned_max(to) >> 1 {
                // the whole range fits in the narrower type unchanged
                AbsVal::Int(IntFacts::range(to, f.lo, f.hi))
            } else {
                AbsVal::Int(IntFacts::top(to))
            }
        }
        // sign extension is the identity on the sign-extended repr
        CastKind::SExt => {
            let mut out = IntFacts::range(to, f.lo, f.hi);
            out.bits = f.bits;
            out.reconcile();
            AbsVal::Int(out)
        }
        CastKind::ZExt => {
            if f.non_negative() {
                AbsVal::Int(IntFacts::range(to, f.lo, f.hi))
            } else {
                AbsVal::Int(IntFacts::range(to, 0, ty_unsigned_max(f.ty) as i64))
            }
        }
        CastKind::SiToFp => AbsVal::Float,
        CastKind::FpToSi => AbsVal::Int(IntFacts::top(to)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bits_exact_round_trip() {
        let k = KnownBits::exact(-7);
        assert_eq!(k.as_exact(), Some(-7));
        assert_eq!(k.count_known(), 64);
        let mut j = k;
        assert!(!j.join(&k));
        assert!(j.join(&KnownBits::exact(1)));
        assert!(j.as_exact().is_none());
    }

    #[test]
    fn bitwise_transfers_are_exact_on_constants() {
        let a = KnownBits::exact(0b1100);
        let b = KnownBits::exact(0b1010);
        assert_eq!(KnownBits::and(a, b).as_exact(), Some(0b1000));
        assert_eq!(KnownBits::or(a, b).as_exact(), Some(0b1110));
        assert_eq!(KnownBits::xor(a, b).as_exact(), Some(0b0110));
    }

    #[test]
    fn widening_snaps_after_limit() {
        // a loop counter pattern: join with ever-growing upper bounds
        let mut f = IntFacts::exact(Ty::I64, 0);
        let mut changes = 0;
        for i in 1..100 {
            if f.join(&IntFacts::exact(Ty::I64, i)) {
                changes += 1;
            }
            if f.hi == i64::MAX {
                break;
            }
        }
        assert_eq!(f.hi, i64::MAX, "upper bound widened to the type extreme");
        assert!(
            changes <= WIDEN_LIMIT as usize + 1,
            "chain is short: {changes}"
        );
        assert_eq!(f.lo, 0, "never-relaxed lower bound survives widening");
    }

    #[test]
    fn alternating_relaxations_still_have_finite_chains() {
        // both bounds relax on every join (a loop walking outward in both
        // directions); the ascending chain must stay bounded by the growth
        // counters, not the value range
        let mut f = IntFacts::exact(Ty::I64, 0);
        let mut changes = 0usize;
        for k in 1..200i64 {
            if f.join(&IntFacts::range(Ty::I64, -k, k)) {
                changes += 1;
            }
        }
        let (tlo, thi) = ty_signed_range(Ty::I64);
        assert_eq!((f.lo, f.hi), (tlo, thi), "both bounds widened");
        assert!(
            changes <= 2 * WIDEN_LIMIT as usize + 2,
            "chain is short: {changes}"
        );
    }

    #[test]
    fn pointer_offset_widening_terminates() {
        // a pointer marched through a loop: the offset interval must widen
        // to the extremes in finitely many joins instead of chasing k
        let mut p = PtrFacts::object(PtrBase::Alloca(0), 3);
        let mut changes = 0usize;
        for k in 1..200i64 {
            let mut step = PtrFacts::object(PtrBase::Alloca(0), 3);
            step.off_lo = k;
            step.off_hi = k;
            if p.join(&step) {
                changes += 1;
            }
        }
        assert_eq!(p.off_hi, i64::MAX, "offset widened to the extreme");
        assert!(
            changes <= WIDEN_LIMIT as usize + 2,
            "chain is short: {changes}"
        );
        assert_eq!(p.base, PtrBase::Alloca(0), "matching bases survive");
    }

    #[test]
    fn interval_add_respects_wrapping() {
        let a = IntFacts::range(Ty::I8, 100, 120);
        let b = IntFacts::range(Ty::I8, 10, 20);
        // 120 + 20 = 140 overflows i8: the transfer must widen to top
        let r = transfer_bin(BinOp::Add, Ty::I8, &a, &b);
        let f = r.as_int().unwrap();
        assert_eq!((f.lo, f.hi), ty_signed_range(Ty::I8));

        let c = IntFacts::range(Ty::I8, 1, 2);
        let r = transfer_bin(BinOp::Add, Ty::I8, &c, &c);
        let f = r.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (2, 4));
    }

    #[test]
    fn srem_bound_follows_divisor() {
        let a = IntFacts::top(Ty::I64);
        let b = IntFacts::range(Ty::I64, 1, 10);
        let r = transfer_bin(BinOp::SRem, Ty::I64, &a, &b);
        let f = r.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (-9, 9));

        let nn = IntFacts::range(Ty::I64, 0, 1000);
        let r = transfer_bin(BinOp::SRem, Ty::I64, &nn, &b);
        let f = r.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (0, 9));
    }

    #[test]
    fn icmp_decides_disjoint_ranges() {
        let a = IntFacts::range(Ty::I64, 0, 5);
        let b = IntFacts::range(Ty::I64, 10, 20);
        assert_eq!(transfer_icmp(IntPred::Slt, &a, &b), Some(true));
        assert_eq!(transfer_icmp(IntPred::Eq, &a, &b), Some(false));
        assert_eq!(transfer_icmp(IntPred::Sgt, &a, &b), Some(false));
        let c = IntFacts::range(Ty::I64, 3, 12);
        assert_eq!(transfer_icmp(IntPred::Slt, &a, &c), None);
    }

    #[test]
    fn sdiv_singleton_is_exact_and_min_over_minus_one_wraps() {
        let a = IntFacts::exact(Ty::I8, i8::MIN as i64);
        let b = IntFacts::exact(Ty::I8, -1);
        let r = transfer_bin(BinOp::SDiv, Ty::I8, &a, &b);
        // wrapping_div(i8::MIN, -1) wraps back to i8::MIN after Ty::wrap
        assert_eq!(r.singleton(), Some(i8::MIN as i64));
    }

    #[test]
    fn casts_model_the_interpreter() {
        let small = IntFacts::range(Ty::I8, -3, 5);
        let s = transfer_cast(CastKind::SExt, Ty::I64, &AbsVal::Int(small));
        let f = s.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (-3, 5));
        let z = transfer_cast(CastKind::ZExt, Ty::I64, &AbsVal::Int(small));
        let f = z.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (0, 255));
        let nn = IntFacts::range(Ty::I64, 0, 100);
        let t = transfer_cast(CastKind::Trunc, Ty::I8, &AbsVal::Int(nn));
        let f = t.as_int().unwrap();
        assert_eq!((f.lo, f.hi), (0, 100));
    }

    #[test]
    fn absval_join_collapses_kind_mismatch_to_top() {
        let mut v = AbsVal::Int(IntFacts::exact(Ty::I64, 1));
        assert!(v.join(&AbsVal::Ptr(PtrFacts::top())));
        assert_eq!(v, AbsVal::Top);
        let mut b = AbsVal::Bottom;
        assert!(b.join(&AbsVal::Float));
        assert_eq!(b, AbsVal::Float);
        assert!(!b.join(&AbsVal::Bottom));
    }

    #[test]
    fn nullness_join() {
        let mut p = PtrFacts::null();
        assert!(p.join(&PtrFacts::object(PtrBase::Global(0), 3)));
        assert_eq!(p.null, Nullness::Maybe);
        assert_eq!(p.base, PtrBase::Unknown);
    }
}
