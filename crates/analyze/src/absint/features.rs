//! AutoPhase-style static feature vector derived from the absint facts.
//!
//! [`module_features`] condenses the interprocedural analysis result into a
//! fixed-width vector of `FEATURE_DIM` floats, suitable for appending to the
//! RL state (behind `EnvConfig::static_features`). Every entry is a fraction,
//! a normalized average, or a squashed count (`x / (x + K)`), so all values
//! lie in `[0, 1]` and the vector is scale-stable across module sizes.
//!
//! The layout is frozen (tests pin it); append new features at the end and
//! bump `FEATURE_DIM` rather than reordering.
//!
//! | idx | meaning |
//! |-----|---------|
//! | 0   | squash(defined functions, 8) |
//! | 1   | squash(reachable value-producing insts, 64) |
//! | 2   | frac of int facts that are singletons |
//! | 3   | frac of int facts with a strict (non-top, non-singleton) range |
//! | 4   | frac of int facts that are ⊤ intervals |
//! | 5   | frac of int facts proven non-negative |
//! | 6   | average known bits / 64 over int facts |
//! | 7   | frac of int facts with ≥1 known trailing zero bit |
//! | 8   | average log₂(signed range width) / 64 over int facts |
//! | 9   | frac of i1 facts proven constant |
//! | 10  | frac of pointer facts proven non-null |
//! | 11  | frac of pointer facts proven null |
//! | 12  | frac of pointer facts with a known base object |
//! | 13  | average alignment trailing zeros / 8 over pointer facts |
//! | 14  | frac of condbr conditions proven constant (dead-branch rate) |
//! | 15  | squash(provable division traps, 4) |
//! | 16  | squash(provable null dereferences, 4) |
//! | 17  | squash(provable out-of-bounds accesses, 4) |
//! | 18  | frac of functions with a non-⊤ int return fact |
//! | 19  | frac of functions with a singleton return fact |
//! | 20  | frac of summary arguments with a non-⊤ fact |
//! | 21  | frac of blocks unreachable from their function entry |
//! | 22  | frac of value-producing insts with ⊥ (dead) facts |
//! | 23  | squash(average reachable blocks per function, 16) |
//! | 24  | frac of load/store pointers with a known base object |
//! | 25  | frac of icmp results decided statically |
//! | 26  | frac of select conditions decided statically |
//! | 27  | average log₂(unsigned range width) / 64 over int facts |
//! | 28  | frac of int facts with a non-⊤ unsigned range |
//! | 29  | squash(call sites, 16) |
//! | 30  | frac of call results with a non-⊤ fact |
//! | 31  | frac of functions analyzed with ⊤ argument summaries (roots) |
//! | 32  | squash(average points-to set size over pointer values, 2) |
//! | 33  | frac of pointer values with a ⊤ points-to set |
//! | 34  | frac of pointer values with a singleton points-to set |
//! | 35  | squash(average mod-summary size per function, 4) |
//! | 36  | squash(average ref-summary size per function, 4) |
//! | 37  | frac of functions with a ⊤ mod or ref summary |
//! | 38  | squash(average may-defs per load (memdep fan-in), 2) |
//! | 39  | squash(average max store→load chain depth per function, 4) |
//! | 40  | squash(natural loops, 4) |
//! | 41  | frac of loops at nesting depth ≥ 2 |
//! | 42  | frac of loops with an exact symbolic trip count |
//! | 43  | frac of loops with any known trip bound (exact or bounded) |
//! | 44  | average min(log₂(trip + 1) / 20, 1) over trip-known loops |
//! | 45  | average hot-block ratio (static profile) over functions |
//! | 46  | frac of blocks inside some natural loop |
//! | 47  | squash(average recognized recurrences per loop, 4) |
//! | 48  | frac of loops proved parallel-safe |
//! | 49  | frac of loops proved vector-safe |
//! | 50  | frac of loops with a carried dependence |
//! | 51  | squash(total surviving dependences, 8) |
//! | 52  | frac of dependences that are flow |
//! | 53  | frac of dependences that are output |
//! | 54  | frac of tested pairs disambiguated |
//! | 55  | squash(mean proved min carried distance, 4) |
//!
//! Dims 32–39 come from the interprocedural alias/memdep analysis
//! ([`crate::alias`]); ⊤ sets count as the configured points-to cap.
//! Dims 40–47 come from the scalar-evolution and static-profile
//! analyses ([`crate::scev`], [`crate::profile`]). Dims 48–55 come
//! from the loop dependence analysis ([`crate::depend`]).

use super::domain::{AbsVal, Nullness, PtrBase};
use super::{analyze_module, ModuleAbsint};
use crate::alias::ModuleAlias;
use crate::depend::{DepKind, DependConfig, ModuleDepend};
use crate::scev::{ModuleScev, ScevConfig};
use posetrl_ir::{Module, Op, Ty};

/// Width of the static feature vector.
pub const FEATURE_DIM: usize = 56;

/// `x / (x + k)`: maps a count into `[0, 1)` monotonically.
fn squash(x: f64, k: f64) -> f64 {
    x / (x + k)
}

/// `num / den`, or 0 for an empty denominator.
fn frac(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// log₂ of an interval width, normalized to `[0, 1]` by the 64-bit maximum.
fn width_log2(lo: i64, hi: i64) -> f64 {
    let w = (hi as i128 - lo as i128 + 1) as u128;
    (128 - w.leading_zeros()) as f64 / 64.0
}

/// Computes the feature vector from a precomputed absint analysis,
/// running the alias analysis internally (bit-identical to
/// [`features_with_alias`] on the same module).
pub fn features_with(m: &Module, mi: &ModuleAbsint) -> [f64; FEATURE_DIM] {
    features_with_alias(m, mi, &crate::alias::analyze_module(m))
}

/// Computes the feature vector from precomputed absint *and* alias
/// analyses, running the SCEV + profile analysis internally from the
/// shared absint facts (bit-identical to [`features_full`] on the
/// same inputs).
pub fn features_with_alias(m: &Module, mi: &ModuleAbsint, ma: &ModuleAlias) -> [f64; FEATURE_DIM] {
    let sc = crate::scev::analyze_module_cfg_absint(m, mi, &ScevConfig::from_env(), None);
    let md = crate::depend::analyze_module_full(m, &sc, ma, &DependConfig::from_env(), None);
    features_full(m, mi, ma, &sc, &md)
}

/// Computes the feature vector from precomputed absint, alias,
/// SCEV/profile, and dependence analyses.
pub fn features_full(
    m: &Module,
    mi: &ModuleAbsint,
    ma: &ModuleAlias,
    sc: &ModuleScev,
    md: &ModuleDepend,
) -> [f64; FEATURE_DIM] {
    let mut out = [0.0; FEATURE_DIM];

    let mut n_funcs = 0.0;
    let mut n_insts = 0.0;
    let mut n_int = 0.0;
    let (mut int_singleton, mut int_strict, mut int_top, mut int_nonneg) = (0.0, 0.0, 0.0, 0.0);
    let (mut known_bits_sum, mut int_tz, mut swidth_sum, mut uwidth_sum) = (0.0, 0.0, 0.0, 0.0);
    let mut int_utight = 0.0;
    let (mut n_bool, mut bool_const) = (0.0, 0.0);
    let mut n_ptr = 0.0;
    let (mut ptr_nonnull, mut ptr_null, mut ptr_based, mut align_sum) = (0.0, 0.0, 0.0, 0.0);
    let (mut n_condbr, mut condbr_decided) = (0.0, 0.0);
    let (mut div_traps, mut null_derefs, mut oob) = (0.0, 0.0, 0.0);
    let (mut ret_nontop, mut ret_singleton) = (0.0, 0.0);
    let (mut n_args, mut args_nontop) = (0.0, 0.0);
    let (mut n_blocks, mut n_reachable_blocks) = (0.0, 0.0);
    let mut dead_facts = 0.0;
    let (mut n_mem, mut mem_based) = (0.0, 0.0);
    let (mut n_icmp, mut icmp_decided) = (0.0, 0.0);
    let (mut n_select, mut select_decided) = (0.0, 0.0);
    let (mut n_calls, mut call_nontop) = (0.0, 0.0);
    let mut root_funcs = 0.0;

    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        n_funcs += 1.0;
        let Some(facts) = mi.facts(fid) else { continue };
        n_blocks += f.block_ids().count() as f64;
        n_reachable_blocks += facts.reachable.len() as f64;

        if let Some(s) = mi.summary(fid) {
            n_args += s.args.len() as f64;
            args_nontop += s
                .args
                .iter()
                .filter(|a| {
                    !matches!(a, AbsVal::Top) && a.as_int().map(|i| !i.is_top()).unwrap_or(true)
                })
                .count() as f64;
            if s.args.iter().all(|a| matches!(a, AbsVal::Top))
                || s.args
                    .iter()
                    .all(|a| a.as_int().map(|i| i.is_top()).unwrap_or(false))
            {
                root_funcs += 1.0;
            }
            if let Some(r) = s.ret.as_int() {
                if !r.is_top() {
                    ret_nontop += 1.0;
                }
                if r.as_singleton().is_some() {
                    ret_singleton += 1.0;
                }
            }
        }

        for &b in &facts.reachable {
            let Some(block) = f.block(b) else { continue };
            for &id in &block.insts {
                let op = f.op(id);
                match op {
                    Op::CondBr { cond, .. } => {
                        n_condbr += 1.0;
                        if cond
                            .as_inst()
                            .map(|i| facts.value(i).singleton().is_some())
                            .unwrap_or(cond.const_int().is_some())
                        {
                            condbr_decided += 1.0;
                        }
                    }
                    Op::Bin { op: bin, rhs, .. } if bin.can_trap() => {
                        let zero = match rhs.as_inst() {
                            Some(i) => facts.value(i).singleton() == Some(0),
                            None => rhs.const_int() == Some(0),
                        };
                        if zero {
                            div_traps += 1.0;
                        }
                    }
                    _ => {}
                }
                if let Op::Load { ptr, .. } | Op::Store { ptr, .. } = op {
                    n_mem += 1.0;
                    if let Some(pf) = ptr.as_inst().and_then(|i| facts.value(i).as_ptr().copied()) {
                        if pf.base != PtrBase::Unknown {
                            mem_based += 1.0;
                        }
                        if pf.null == Nullness::Null {
                            null_derefs += 1.0;
                        }
                    }
                }
                if op.result_ty() == Ty::Void {
                    continue;
                }
                n_insts += 1.0;
                let v = facts.value(id);
                match &v {
                    AbsVal::Bottom => dead_facts += 1.0,
                    AbsVal::Int(i) => {
                        n_int += 1.0;
                        if i.ty == Ty::I1 {
                            n_bool += 1.0;
                            if i.as_singleton().is_some() {
                                bool_const += 1.0;
                            }
                        }
                        if i.as_singleton().is_some() {
                            int_singleton += 1.0;
                        } else if i.is_top() {
                            int_top += 1.0;
                        } else {
                            int_strict += 1.0;
                        }
                        if i.non_negative() {
                            int_nonneg += 1.0;
                        }
                        known_bits_sum += i.bits.count_known() as f64 / 64.0;
                        if i.bits.trailing_zeros() > 0 {
                            int_tz += 1.0;
                        }
                        swidth_sum += width_log2(i.lo, i.hi);
                        uwidth_sum += width_log2(i.ulo as i64, i.uhi.min(i64::MAX as u64) as i64);
                        let (tlo, thi) = super::domain::ty_signed_range(i.ty);
                        if !(i.ulo == 0
                            && i.uhi == super::domain::ty_unsigned_max(i.ty)
                            && i.lo == tlo
                            && i.hi == thi)
                        {
                            int_utight += 1.0;
                        }
                    }
                    AbsVal::Ptr(p) => {
                        n_ptr += 1.0;
                        match p.null {
                            Nullness::NonNull => ptr_nonnull += 1.0,
                            Nullness::Null => ptr_null += 1.0,
                            Nullness::Maybe => {}
                        }
                        if p.base != PtrBase::Unknown {
                            ptr_based += 1.0;
                        }
                        align_sum += p.align_tz.min(8) as f64 / 8.0;
                    }
                    AbsVal::Float | AbsVal::Top => {}
                }
                match op {
                    Op::Icmp { .. } => {
                        n_icmp += 1.0;
                        if v.singleton().is_some() {
                            icmp_decided += 1.0;
                        }
                    }
                    Op::Select { cond, .. } => {
                        n_select += 1.0;
                        let decided = match cond.as_inst() {
                            Some(i) => facts.value(i).singleton().is_some(),
                            None => cond.const_int().is_some(),
                        };
                        if decided {
                            select_decided += 1.0;
                        }
                    }
                    Op::Call { .. } => {
                        n_calls += 1.0;
                        if !matches!(v, AbsVal::Top)
                            && v.as_int().map(|i| !i.is_top()).unwrap_or(true)
                        {
                            call_nontop += 1.0;
                        }
                    }
                    Op::Load { ptr, .. } | Op::Store { ptr, .. } => {
                        // OOB: base known and offsets entirely outside it
                        if let Some(pf) =
                            ptr.as_inst().and_then(|i| facts.value(i).as_ptr().copied())
                        {
                            let count = match pf.base {
                                PtrBase::Global(g) => {
                                    m.global(posetrl_ir::GlobalId(g)).map(|g| g.count as i64)
                                }
                                PtrBase::Alloca(a) => {
                                    match f.inst(posetrl_ir::InstId(a)).map(|i| &i.op) {
                                        Some(Op::Alloca { count, .. }) => Some(*count as i64),
                                        _ => None,
                                    }
                                }
                                PtrBase::Unknown => None,
                            };
                            if let Some(c) = count {
                                if pf.off_hi < 0 || pf.off_lo >= c {
                                    oob += 1.0;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    out[0] = squash(n_funcs, 8.0);
    out[1] = squash(n_insts, 64.0);
    out[2] = frac(int_singleton, n_int);
    out[3] = frac(int_strict, n_int);
    out[4] = frac(int_top, n_int);
    out[5] = frac(int_nonneg, n_int);
    out[6] = frac(known_bits_sum, n_int);
    out[7] = frac(int_tz, n_int);
    out[8] = frac(swidth_sum, n_int);
    out[9] = frac(bool_const, n_bool);
    out[10] = frac(ptr_nonnull, n_ptr);
    out[11] = frac(ptr_null, n_ptr);
    out[12] = frac(ptr_based, n_ptr);
    out[13] = frac(align_sum, n_ptr);
    out[14] = frac(condbr_decided, n_condbr);
    out[15] = squash(div_traps, 4.0);
    out[16] = squash(null_derefs, 4.0);
    out[17] = squash(oob, 4.0);
    out[18] = frac(ret_nontop, n_funcs);
    out[19] = frac(ret_singleton, n_funcs);
    out[20] = frac(args_nontop, n_args);
    out[21] = frac(n_blocks - n_reachable_blocks, n_blocks);
    out[22] = frac(dead_facts, n_insts);
    out[23] = squash(frac(n_reachable_blocks, n_funcs), 16.0);
    out[24] = frac(mem_based, n_mem);
    out[25] = frac(icmp_decided, n_icmp);
    out[26] = frac(select_decided, n_select);
    out[27] = frac(uwidth_sum, n_int);
    out[28] = frac(int_utight, n_int);
    out[29] = squash(n_calls, 16.0);
    out[30] = frac(call_nontop, n_calls);
    out[31] = frac(root_funcs, n_funcs);

    // dims 32–39: alias/memdep shape
    let cap = ma.cap.max(1);
    let (mut n_ptr_vals, mut pts_size_sum, mut pts_top, mut pts_singleton) = (0.0, 0.0, 0.0, 0.0);
    let (mut mod_size_sum, mut ref_size_sum, mut modref_top) = (0.0, 0.0, 0.0);
    let (mut n_loads, mut dep_sum) = (0.0, 0.0);
    let mut chain_sum = 0.0;
    let mut n_alias_funcs = 0.0;
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        n_alias_funcs += 1.0;
        if let Some(facts) = ma.facts(fid) {
            for id in f.inst_ids() {
                if f.op(id).result_ty() != Ty::Ptr {
                    continue;
                }
                let p = facts.pts_of(id);
                n_ptr_vals += 1.0;
                pts_size_sum += p.size_for(cap) as f64;
                if p.top {
                    pts_top += 1.0;
                } else if p.objs.len() == 1 {
                    pts_singleton += 1.0;
                }
            }
        }
        if let Some(s) = ma.summary(fid) {
            mod_size_sum += s.mods.size_for(cap) as f64;
            ref_size_sum += s.refs.size_for(cap) as f64;
            if s.mods.top || s.refs.top {
                modref_top += 1.0;
            }
        }
        if let Some(md) = ma.memdep(fid) {
            for deps in md.load_deps.values() {
                n_loads += 1.0;
                dep_sum += deps.len() as f64;
            }
            chain_sum += md.max_chain as f64;
        }
    }
    out[32] = squash(frac(pts_size_sum, n_ptr_vals), 2.0);
    out[33] = frac(pts_top, n_ptr_vals);
    out[34] = frac(pts_singleton, n_ptr_vals);
    out[35] = squash(frac(mod_size_sum, n_alias_funcs), 4.0);
    out[36] = squash(frac(ref_size_sum, n_alias_funcs), 4.0);
    out[37] = frac(modref_top, n_alias_funcs);
    out[38] = squash(frac(dep_sum, n_loads), 2.0);
    out[39] = squash(frac(chain_sum, n_alias_funcs), 4.0);

    // dims 40–47: loop/trip/frequency shape from the SCEV + profile analyses
    let (mut n_loops, mut deep_loops, mut exact_loops, mut known_loops) = (0.0, 0.0, 0.0, 0.0);
    let (mut trip_log_sum, mut rec_sum) = (0.0, 0.0);
    let (mut hot_sum, mut n_prof_funcs) = (0.0, 0.0);
    let (mut n_all_blocks, mut loop_blocks) = (0.0, 0.0);
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        n_all_blocks += f.block_ids().count() as f64;
        let Some(fr) = sc.func(fid) else { continue };
        n_prof_funcs += 1.0;
        hot_sum += fr.profile.hot_ratio;
        let mut in_loop: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for l in &fr.loops {
            n_loops += 1.0;
            if l.depth >= 2 {
                deep_loops += 1.0;
            }
            if l.trip.exact().is_some() {
                exact_loops += 1.0;
            }
            if let Some(t) = l.trip.known_max() {
                known_loops += 1.0;
                trip_log_sum += (((t as f64) + 1.0).log2() / 20.0).min(1.0);
            }
            rec_sum += l.recs.len() as f64;
            in_loop.extend(l.blocks.iter().copied());
        }
        loop_blocks += in_loop.len() as f64;
    }
    out[40] = squash(n_loops, 4.0);
    out[41] = frac(deep_loops, n_loops);
    out[42] = frac(exact_loops, n_loops);
    out[43] = frac(known_loops, n_loops);
    out[44] = frac(trip_log_sum, known_loops);
    out[45] = frac(hot_sum, n_prof_funcs);
    out[46] = frac(loop_blocks, n_all_blocks);
    out[47] = squash(frac(rec_sum, n_loops), 4.0);

    // dims 48–55: legality/dependence shape from the depend analysis
    let (mut d_loops, mut par_loops, mut vec_loops, mut carried_loops) = (0.0, 0.0, 0.0, 0.0);
    let (mut n_deps, mut flow_deps, mut output_deps, mut disamb) = (0.0, 0.0, 0.0, 0.0);
    let (mut dist_sum, mut dist_loops) = (0.0, 0.0);
    for fid in m.func_ids() {
        let Some(fr) = md.func(fid) else { continue };
        for l in &fr.loops {
            d_loops += 1.0;
            if l.parallel_safe {
                par_loops += 1.0;
            }
            if l.vector_safe {
                vec_loops += 1.0;
            }
            if l.deps.iter().any(|d| d.carried) {
                carried_loops += 1.0;
            }
            n_deps += l.deps.len() as f64;
            flow_deps += l.deps.iter().filter(|d| d.kind == DepKind::Flow).count() as f64;
            output_deps += l.deps.iter().filter(|d| d.kind == DepKind::Output).count() as f64;
            disamb += l.disambiguated as f64;
            if let Some(d) = l.min_distance {
                dist_sum += d as f64;
                dist_loops += 1.0;
            }
        }
    }
    out[48] = frac(par_loops, d_loops);
    out[49] = frac(vec_loops, d_loops);
    out[50] = frac(carried_loops, d_loops);
    out[51] = squash(n_deps, 8.0);
    out[52] = frac(flow_deps, n_deps);
    out[53] = frac(output_deps, n_deps);
    out[54] = frac(disamb, disamb + n_deps);
    out[55] = squash(frac(dist_sum, dist_loops), 4.0);
    out
}

/// Runs the analysis and computes the feature vector in one call.
pub fn module_features(m: &Module) -> [f64; FEATURE_DIM] {
    features_with(m, &analyze_module(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_ir::parser::parse_module;

    const SAMPLE: &str = r#"
module "t"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 2:i64, 3:i64
  %1 = mul i64 %0, 4:i64
  %2 = icmp slt i64 %1, 100:i64
  condbr %2, bb1, bb2
bb1:
  ret %1
bb2:
  ret 0:i64
}
"#;

    #[test]
    fn features_are_deterministic_and_bounded() {
        let m = parse_module(SAMPLE).unwrap();
        let a = module_features(&m);
        let b = module_features(&m);
        assert_eq!(a, b, "bit-identical across runs");
        for (i, v) in a.iter().enumerate() {
            assert!(*v >= 0.0 && *v <= 1.0, "feature {i} out of range: {v}");
            assert!(v.is_finite(), "feature {i} not finite");
        }
    }

    #[test]
    fn constant_heavy_module_scores_high_on_singletons() {
        let m = parse_module(SAMPLE).unwrap();
        let f = module_features(&m);
        assert!(f[2] > 0.5, "most values fold to singletons: {}", f[2]);
        assert!(f[14] > 0.0, "the condbr is decided: {}", f[14]);
    }

    #[test]
    fn empty_module_is_all_zeros_except_counts() {
        let m = parse_module("module \"empty\"\n").unwrap();
        let f = module_features(&m);
        assert!(f.iter().all(|v| *v == 0.0), "{f:?}");
    }

    const MEM_SAMPLE: &str = r#"
module "mem"

fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 1:i64, %a
  %v = load i64, %a
  ret %v
}
"#;

    #[test]
    fn alias_dims_populate_and_agree_with_precomputed() {
        let m = parse_module(MEM_SAMPLE).unwrap();
        let f = module_features(&m);
        assert!(f[34] > 0.9, "every pointer is a singleton slot: {}", f[34]);
        assert_eq!(f[33], 0.0, "no ⊤ pointers: {}", f[33]);
        assert!(f[38] > 0.0, "the load has one feeding def: {}", f[38]);
        assert!(f[39] > 0.0, "chain depth 1: {}", f[39]);
        let mi = analyze_module(&m);
        let ma = crate::alias::analyze_module(&m);
        assert_eq!(f, features_with_alias(&m, &mi, &ma), "paths bit-identical");
    }

    const LOOP_SAMPLE: &str = r#"
module "loops"

fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb1: %n]
  %n = add i64 %i, 1:i64
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#;

    #[test]
    fn scev_dims_populate_and_agree_with_precomputed() {
        let m = parse_module(LOOP_SAMPLE).unwrap();
        let f = module_features(&m);
        assert!(f[40] > 0.0, "one loop: {}", f[40]);
        assert_eq!(f[41], 0.0, "no nested loops: {}", f[41]);
        assert_eq!(f[42], 1.0, "the trip count is exact: {}", f[42]);
        assert_eq!(f[43], 1.0, "the trip count is known: {}", f[43]);
        assert!(f[44] > 0.0 && f[44] < 1.0, "trip magnitude: {}", f[44]);
        assert!(f[46] > 0.0, "some blocks sit in loops: {}", f[46]);
        assert!(f[47] > 0.0, "recurrences recognized: {}", f[47]);
        let mi = analyze_module(&m);
        let ma = crate::alias::analyze_module(&m);
        let sc = crate::scev::analyze_module_cfg_absint(
            &m,
            &mi,
            &crate::scev::ScevConfig::default(),
            None,
        );
        let md = crate::depend::analyze_module_full(&m, &sc, &ma, &DependConfig::default(), None);
        assert_eq!(
            f,
            features_full(&m, &mi, &ma, &sc, &md),
            "paths bit-identical"
        );
        assert!(
            module_features(&parse_module(SAMPLE).unwrap())[40] == 0.0,
            "loop-free module has zero loop mass"
        );
    }

    const DEP_SAMPLE: &str = r#"
module "dep"

fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 16
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %n]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %i2 = add i64 %i, 2:i64
  %ps = gep i64, %a, %i
  %v = load i64, %ps
  %pd = gep i64, %a, %i2
  store i64 %v, %pd
  %n = add i64 %i, 1:i64
  br bb1
bb3:
  ret 0:i64
}
"#;

    #[test]
    fn depend_dims_populate_and_stay_zero_on_loop_free_modules() {
        let m = parse_module(DEP_SAMPLE).unwrap();
        let f = module_features(&m);
        assert_eq!(f[48], 0.0, "the carried dep blocks parallelism: {}", f[48]);
        assert_eq!(f[49], 1.0, "distance 2 admits a jam: {}", f[49]);
        assert_eq!(f[50], 1.0, "the loop has a carried dep: {}", f[50]);
        assert!(f[51] > 0.0, "one dependence survives: {}", f[51]);
        assert_eq!(f[52], 1.0, "it is a flow dep: {}", f[52]);
        assert!(f[55] > 0.0, "min distance proved: {}", f[55]);
        let loop_free = module_features(&parse_module(SAMPLE).unwrap());
        for (i, v) in loop_free.iter().enumerate().take(56).skip(48) {
            assert_eq!(*v, 0.0, "dim {i} must be zero on a loop-free module");
        }
    }
}
