//! Interprocedural abstract interpretation over the product domain of
//! known-bits, signed/unsigned intervals and pointer nullness/alignment.
//!
//! The engine is context-insensitive: every function gets one
//! argument/return summary ([`FnSummary`]). Analysis proceeds bottom-up
//! over the call graph's strongly connected components (callees before
//! callers), so non-recursive call results flow from final summaries;
//! within an SCC the member summaries iterate from ⊥ to a fixpoint.
//! Because argument facts flow in the opposite direction (callers into
//! callees), the whole module is analyzed in two rounds: round one runs
//! with ⊤ argument summaries, then every reachable call site's argument
//! facts are joined into its callee's summary, and round two re-runs with
//! the sharpened arguments. Functions whose arguments cannot be enumerated
//! — external linkage, `main`, address-taken, or never called — keep ⊤.
//!
//! The intraprocedural half reuses the generic [`crate::dataflow`]
//! worklist engine: the domain is the whole SSA environment (one
//! [`AbsVal`] per instruction arena slot, joined pointwise), and the
//! per-block transfer interprets each instruction abstractly. Widening
//! inside [`domain::IntFacts::join`] keeps every chain finite, so the
//! engine terminates without a dedicated widening hook.
//!
//! Three consumers sit on top: the `range-trap`/`null-deref`/`dead-branch`
//! lints ([`check`]), the `rangeopt` pass in `posetrl-opt`, and the static
//! feature vector ([`features`]) the RL environment can append to its
//! state.

pub mod domain;
pub mod features;

use crate::dataflow::{solve, DataflowAnalysis, Direction, JoinSemiLattice};
use crate::diag::{codes, Diagnostic};
use domain::{
    transfer_bin, transfer_cast, transfer_icmp, AbsVal, IntFacts, Nullness, PtrBase, PtrFacts,
};
use posetrl_ir::analysis::cfg::Cfg;
use posetrl_ir::{BlockId, FuncId, Function, InstId, Module, Op, SourceLoc, Ty, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-function argument/return summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Abstract value of each parameter (exported form).
    pub args: Vec<AbsVal>,
    /// Abstract return value (exported form); ⊥ until a `ret` is reached.
    pub ret: AbsVal,
}

/// Final per-instruction facts of one analyzed function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncFacts {
    /// One fact per instruction arena slot; ⊥ for void results, removed
    /// slots and unreachable code.
    pub values: Vec<AbsVal>,
    /// Blocks reachable from the entry (the facts' domain of validity).
    pub reachable: Vec<BlockId>,
}

impl FuncFacts {
    /// The fact of `id` (⊥ when out of range).
    pub fn value(&self, id: InstId) -> AbsVal {
        self.values
            .get(id.index())
            .copied()
            .unwrap_or(AbsVal::Bottom)
    }
}

/// The module-wide analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAbsint {
    /// Summaries keyed by function arena index (deterministic order).
    pub summaries: BTreeMap<u32, FnSummary>,
    /// Per-function facts for every defined function.
    pub funcs: BTreeMap<u32, FuncFacts>,
}

impl ModuleAbsint {
    /// The summary of `id`, if analyzed.
    pub fn summary(&self, id: FuncId) -> Option<&FnSummary> {
        self.summaries.get(&id.0)
    }

    /// The facts of `id`, if it has a body.
    pub fn facts(&self, id: FuncId) -> Option<&FuncFacts> {
        self.funcs.get(&id.0)
    }
}

// ---------------------------------------------------------------------------
// Intraprocedural transfer (over the generic dataflow engine)
// ---------------------------------------------------------------------------

/// The dataflow domain: the whole SSA environment, joined pointwise.
#[derive(Debug, Clone)]
pub struct Env(pub Vec<AbsVal>);

impl JoinSemiLattice for Env {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            changed |= a.join(b);
        }
        changed
    }
}

struct Intra<'a> {
    universe: usize,
    args: &'a [AbsVal],
    summaries: &'a BTreeMap<u32, FnSummary>,
}

impl Intra<'_> {
    fn value_of(&self, env: &Env, v: Value) -> AbsVal {
        match v {
            Value::Const(c) => AbsVal::of_const(c),
            Value::Arg(i) => self.args.get(i as usize).copied().unwrap_or(AbsVal::Top),
            Value::Inst(id) => env.0.get(id.index()).copied().unwrap_or(AbsVal::Bottom),
            Value::Global(g) => AbsVal::Ptr(PtrFacts::object(PtrBase::Global(g.0), 8)),
            Value::Func(_) => AbsVal::Top,
        }
    }

    fn int_of(&self, env: &Env, v: Value, ty: Ty) -> Option<IntFacts> {
        match self.value_of(env, v) {
            AbsVal::Bottom => None,
            AbsVal::Int(f) if f.ty == ty => Some(f),
            _ => Some(IntFacts::top(ty)),
        }
    }

    fn compute(&self, f: &Function, id: InstId, env: &Env) -> AbsVal {
        let op = f.op(id);
        match op {
            Op::Bin { op, ty, lhs, rhs } => {
                if op.is_float() {
                    return AbsVal::Float;
                }
                let (Some(a), Some(b)) = (self.int_of(env, *lhs, *ty), self.int_of(env, *rhs, *ty))
                else {
                    return AbsVal::Bottom;
                };
                transfer_bin(*op, *ty, &a, &b)
            }
            Op::Icmp { pred, ty, lhs, rhs } => {
                let (Some(a), Some(b)) = (self.int_of(env, *lhs, *ty), self.int_of(env, *rhs, *ty))
                else {
                    return AbsVal::Bottom;
                };
                match transfer_icmp(*pred, &a, &b) {
                    Some(v) => AbsVal::Int(IntFacts::exact(Ty::I1, v as i64)),
                    None => AbsVal::Int(IntFacts::top(Ty::I1)),
                }
            }
            Op::Fcmp { lhs, rhs, .. } => {
                if self.value_of(env, *lhs).is_bottom() || self.value_of(env, *rhs).is_bottom() {
                    AbsVal::Bottom
                } else {
                    AbsVal::Int(IntFacts::top(Ty::I1))
                }
            }
            Op::Select {
                cond, tval, fval, ..
            } => {
                let c = self.value_of(env, *cond);
                if c.is_bottom() {
                    return AbsVal::Bottom;
                }
                match c.singleton() {
                    Some(1) => self.value_of(env, *tval),
                    Some(_) => self.value_of(env, *fval),
                    None => {
                        let mut v = self.value_of(env, *tval);
                        v.join(&self.value_of(env, *fval));
                        v
                    }
                }
            }
            Op::Cast { kind, to, val } => {
                let v = self.value_of(env, *val);
                if v.is_bottom() {
                    return AbsVal::Bottom;
                }
                transfer_cast(*kind, *to, &v)
            }
            Op::Alloca { ty, .. } => {
                let tz = ty.byte_size().max(1).trailing_zeros().min(8) as u8;
                AbsVal::Ptr(PtrFacts::object(PtrBase::Alloca(id.0), tz))
            }
            Op::Load { ty, .. } => AbsVal::top_of(*ty),
            Op::Gep {
                elem_ty,
                ptr,
                index,
            } => {
                let p = self.value_of(env, *ptr);
                let i = self.value_of(env, *index);
                if p.is_bottom() || i.is_bottom() {
                    return AbsVal::Bottom;
                }
                let mut out = match p.as_ptr() {
                    Some(p) => *p,
                    None => PtrFacts::top(),
                };
                let elem_tz = elem_ty.byte_size().max(1).trailing_zeros().min(8);
                match i.as_int() {
                    Some(idx) => {
                        if out.base != PtrBase::Unknown {
                            let lo = out.off_lo as i128 + idx.lo as i128;
                            let hi = out.off_hi as i128 + idx.hi as i128;
                            if lo >= i64::MIN as i128 && hi <= i64::MAX as i128 {
                                out.off_lo = lo as i64;
                                out.off_hi = hi as i64;
                            } else {
                                out.base = PtrBase::Unknown;
                            }
                        }
                        let idx_tz = idx
                            .as_singleton()
                            .map(|v| if v == 0 { 8 } else { v.trailing_zeros().min(8) })
                            .unwrap_or_else(|| idx.bits.trailing_zeros().min(8));
                        out.align_tz = out.align_tz.min((idx_tz + elem_tz).min(8) as u8);
                    }
                    None => {
                        out.base = PtrBase::Unknown;
                        out.align_tz = 0;
                    }
                }
                AbsVal::Ptr(out)
            }
            Op::Call { callee, ret_ty, .. } => match self.summaries.get(&callee.0) {
                Some(s) if !s.ret.is_bottom() => s.ret,
                Some(_) => AbsVal::Bottom,
                None => AbsVal::top_of(*ret_ty),
            },
            Op::Phi { incomings, .. } => {
                let mut v = AbsVal::Bottom;
                for (_, inc) in incomings {
                    v.join(&self.value_of(env, *inc));
                }
                v
            }
            // void results: no fact slot
            _ => AbsVal::Bottom,
        }
    }
}

impl DataflowAnalysis for Intra<'_> {
    type Domain = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _f: &Function) -> Env {
        Env(vec![AbsVal::Bottom; self.universe])
    }

    fn bottom(&self, _f: &Function) -> Env {
        Env(vec![AbsVal::Bottom; self.universe])
    }

    fn transfer(&self, f: &Function, b: BlockId, state: &mut Env) {
        let Some(block) = f.block(b) else { return };
        for &id in &block.insts {
            let v = self.compute(f, id, state);
            if let Some(slot) = state.0.get_mut(id.index()) {
                // facts only move up the lattice across worklist revisits
                slot.join(&v);
            }
        }
    }
}

/// Analyzes one function body against fixed summaries, returning its
/// facts and the (exported) return fact.
fn analyze_function(
    f: &Function,
    args: &[AbsVal],
    summaries: &BTreeMap<u32, FnSummary>,
) -> (FuncFacts, AbsVal) {
    let cfg = Cfg::compute(f);
    let universe = f
        .inst_ids()
        .iter()
        .map(|i| i.index() + 1)
        .max()
        .unwrap_or(0);
    let analysis = Intra {
        universe,
        args,
        summaries,
    };
    let fx = solve(f, &cfg, &analysis);

    // final fact of every value: join over all reachable block outputs
    let mut values = vec![AbsVal::Bottom; universe];
    for b in &cfg.rpo {
        if let Some(env) = fx.output.get(b) {
            for (slot, v) in values.iter_mut().zip(&env.0) {
                slot.join(v);
            }
        }
    }

    let env = Env(values.clone());
    let mut ret = AbsVal::Bottom;
    for &b in &cfg.rpo {
        if let Some(t) = f.terminator(b) {
            if let Op::Ret { val } = f.op(t) {
                match val {
                    Some(v) => ret.join(&analysis.value_of(&env, *v).exported()),
                    None => ret.join(&AbsVal::Top),
                };
            }
        }
    }
    (
        FuncFacts {
            values,
            reachable: cfg.rpo,
        },
        ret,
    )
}

// ---------------------------------------------------------------------------
// Call graph, SCCs and the module driver
// ---------------------------------------------------------------------------

/// Iterative Tarjan SCC over the call graph; returns SCCs bottom-up
/// (every SCC precedes its callers).
pub(crate) fn call_graph_sccs(m: &Module, callees: &HashMap<u32, Vec<u32>>) -> Vec<Vec<u32>> {
    let nodes: Vec<u32> = m.func_ids().map(|f| f.0).collect();
    let mut index: HashMap<u32, u32> = HashMap::new();
    let mut low: HashMap<u32, u32> = HashMap::new();
    let mut on_stack: HashSet<u32> = HashSet::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();

    for &root in &nodes {
        if index.contains_key(&root) {
            continue;
        }
        // explicit DFS frames: (node, next child position)
        let mut frames: Vec<(u32, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index.insert(v, next);
                low.insert(v, next);
                next += 1;
                stack.push(v);
                on_stack.insert(v);
            }
            let succs = callees.get(&v).map(|s| s.as_slice()).unwrap_or(&[]);
            if *ci < succs.len() {
                let w = succs[*ci];
                *ci += 1;
                if !index.contains_key(&w) {
                    frames.push((w, 0));
                } else if on_stack.contains(&w) {
                    let lw = index[&w];
                    let lv = low.get_mut(&v).unwrap();
                    *lv = (*lv).min(lw);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let lv = low[&v];
                    let lp = low.get_mut(&p).unwrap();
                    *lp = (*lp).min(lv);
                }
                if low[&v] == index[&v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Upper bound on within-SCC summary iterations before returns widen to ⊤.
const SCC_ITER_LIMIT: usize = 24;

/// Runs the interprocedural analysis over `m`.
pub fn analyze_module(m: &Module) -> ModuleAbsint {
    analyze_module_with(m, None)
}

/// [`analyze_module`], optionally memoizing per-function analyses through
/// an [`IncrementalAnalysisManager`](crate::incremental::IncrementalAnalysisManager).
///
/// The driver schedule (two sharpening rounds, bottom-up SCC fixpoints,
/// widening at `SCC_ITER_LIMIT`) is identical with and without a manager;
/// only the `analyze_function` leaf calls are content-addressed. Each
/// leaf is a pure function of `(function fingerprint, argument
/// summaries, direct-callee return summaries)` — exactly the memo key —
/// so results are bit-identical either way.
pub fn analyze_module_with(
    m: &Module,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
) -> ModuleAbsint {
    // call graph + address-taken set
    let mut callees: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut address_taken: HashSet<u32> = HashSet::new();
    let mut call_counts: HashMap<u32, usize> = HashMap::new();
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        let mut cs = Vec::new();
        for id in f.inst_ids() {
            let op = f.op(id);
            if let Op::Call { callee, .. } = op {
                cs.push(callee.0);
                *call_counts.entry(callee.0).or_default() += 1;
            }
            for v in op.operands() {
                if let Value::Func(g) = v {
                    address_taken.insert(g.0);
                }
            }
        }
        cs.sort_unstable();
        cs.dedup();
        callees.insert(fid.0, cs);
    }

    let is_root = |fid: FuncId, f: &Function| {
        f.linkage == posetrl_ir::Linkage::External
            || f.name == "main"
            || address_taken.contains(&fid.0)
            || call_counts.get(&fid.0).copied().unwrap_or(0) == 0
    };

    let top_args =
        |f: &Function| -> Vec<AbsVal> { f.params.iter().map(|&t| AbsVal::top_of(t)).collect() };

    let sccs = call_graph_sccs(m, &callees);

    // arena fingerprints feed the memo keys; computed once per driver run
    let fps: BTreeMap<u32, u128> = if mgr.is_some() {
        m.func_ids()
            .map(|fid| {
                (
                    fid.0,
                    posetrl_ir::function_fingerprint(m, m.func(fid).unwrap()),
                )
            })
            .collect()
    } else {
        BTreeMap::new()
    };
    let run_one = |f: &Function,
                   i: u32,
                   args: &[AbsVal],
                   summaries: &BTreeMap<u32, FnSummary>|
     -> (FuncFacts, AbsVal) {
        let Some(mgr) = mgr else {
            return analyze_function(f, args, summaries);
        };
        use std::fmt::Write as _;
        let mut cal = String::new();
        for c in callees.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
            match summaries.get(c) {
                Some(s) => {
                    let _ = write!(cal, "{c}:{:?};", s.ret);
                }
                None => {
                    let _ = write!(cal, "{c}:N;");
                }
            }
        }
        let key = (
            fps[&i],
            posetrl_ir::digest_str(&format!("{args:?}")),
            posetrl_ir::digest_str(&cal),
        );
        let out = mgr.absint_memo(&f.name, key, || analyze_function(f, args, summaries));
        (out.0.clone(), out.1)
    };

    // argument summaries for the current round; round 1 is all-⊤
    let mut args: BTreeMap<u32, Vec<AbsVal>> = BTreeMap::new();
    for fid in m.func_ids() {
        args.insert(fid.0, top_args(m.func(fid).unwrap()));
    }

    let mut summaries: BTreeMap<u32, FnSummary> = BTreeMap::new();
    let mut funcs: BTreeMap<u32, FuncFacts> = BTreeMap::new();

    for round in 0..2 {
        summaries.clear();
        funcs.clear();
        // declarations: unconstrained returns, fixed from the start
        for fid in m.func_ids() {
            let f = m.func(fid).unwrap();
            if f.is_decl {
                summaries.insert(
                    fid.0,
                    FnSummary {
                        args: args[&fid.0].clone(),
                        ret: AbsVal::top_of(f.ret),
                    },
                );
            }
        }

        for scc in &sccs {
            let members: Vec<u32> = scc
                .iter()
                .copied()
                .filter(|i| !m.func(FuncId(*i)).map(|f| f.is_decl).unwrap_or(true))
                .collect();
            if members.is_empty() {
                continue;
            }
            // within the SCC, iterate from ⊥ returns to a fixpoint
            for &i in &members {
                summaries.insert(
                    i,
                    FnSummary {
                        args: args[&i].clone(),
                        ret: AbsVal::Bottom,
                    },
                );
            }
            let mut iter = 0;
            loop {
                let mut changed = false;
                for &i in &members {
                    let f = m.func(FuncId(i)).unwrap();
                    let (facts, ret) = run_one(f, i, &args[&i], &summaries);
                    funcs.insert(i, facts);
                    let s = summaries.get_mut(&i).unwrap();
                    changed |= s.ret.join(&ret);
                }
                iter += 1;
                if !changed {
                    break;
                }
                if iter >= SCC_ITER_LIMIT {
                    for &i in &members {
                        let f = m.func(FuncId(i)).unwrap();
                        summaries.get_mut(&i).unwrap().ret = AbsVal::top_of(f.ret);
                        let (facts, _) = run_one(f, i, &args[&i], &summaries);
                        funcs.insert(i, facts);
                    }
                    break;
                }
            }
        }

        if round == 1 {
            break;
        }

        // sharpen argument summaries from every reachable call site
        let mut acc: BTreeMap<u32, Vec<AbsVal>> = BTreeMap::new();
        for fid in m.func_ids() {
            let f = m.func(fid).unwrap();
            let Some(facts) = funcs.get(&fid.0) else {
                continue;
            };
            let env = Env(facts.values.clone());
            let intra = Intra {
                universe: facts.values.len(),
                args: &args[&fid.0],
                summaries: &summaries,
            };
            for &b in &facts.reachable {
                let Some(block) = f.block(b) else { continue };
                for &id in &block.insts {
                    if let Op::Call {
                        callee,
                        args: call_args,
                        ..
                    } = f.op(id)
                    {
                        let slot = acc
                            .entry(callee.0)
                            .or_insert_with(|| vec![AbsVal::Bottom; call_args.len()]);
                        for (s, a) in slot.iter_mut().zip(call_args) {
                            s.join(&intra.value_of(&env, *a).exported());
                        }
                    }
                }
            }
        }
        for fid in m.func_ids() {
            let f = m.func(fid).unwrap();
            if is_root(fid, f) {
                continue;
            }
            if let Some(seen) = acc.remove(&fid.0) {
                if seen.len() == f.params.len() && seen.iter().all(|v| !v.is_bottom()) {
                    args.insert(fid.0, seen);
                }
            }
        }
    }

    // final summaries reflect the argument facts they were computed with
    for (i, s) in summaries.iter_mut() {
        s.args = args[i].clone();
    }

    ModuleAbsint { summaries, funcs }
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

/// Follows constant-index gep chains to a base (mirrors the `constmem`
/// resolver): accesses it can resolve are already covered by `const-oob`,
/// so the absint OOB lint skips them instead of double-reporting.
fn const_chain_resolves(f: &Function, v: Value, depth: u32) -> bool {
    if depth == 0 {
        return false;
    }
    match v {
        Value::Global(_) => true,
        Value::Inst(id) => match f.inst(id).map(|i| &i.op) {
            Some(Op::Alloca { .. }) => true,
            Some(Op::Gep { ptr, index, .. }) => {
                index.const_int().is_some() && const_chain_resolves(f, *ptr, depth - 1)
            }
            _ => false,
        },
        _ => false,
    }
}

/// Element count of a pointer base, if it still exists.
fn base_count(m: &Module, f: &Function, base: PtrBase) -> Option<i64> {
    match base {
        PtrBase::Global(g) => Some(m.global(posetrl_ir::GlobalId(g))?.count as i64),
        PtrBase::Alloca(i) => match f.inst(InstId(i)).map(|i| &i.op) {
            Some(Op::Alloca { count, .. }) => Some(*count as i64),
            _ => None,
        },
        PtrBase::Unknown => None,
    }
}

/// Lints one module against precomputed facts.
pub fn lint_with(m: &Module, mi: &ModuleAbsint, out: &mut Vec<Diagnostic>) {
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        let Some(facts) = mi.facts(fid) else { continue };
        let env = Env(facts.values.clone());
        let intra = Intra {
            universe: facts.values.len(),
            args: &mi.summary(fid).map(|s| s.args.clone()).unwrap_or_default(),
            summaries: &mi.summaries,
        };
        for &b in &facts.reachable {
            let Some(block) = f.block(b) else { continue };
            for &id in &block.insts {
                let op = f.op(id);
                let loc = || SourceLoc::of_inst(f, id);
                match op {
                    Op::Bin {
                        op: bin, rhs, ty, ..
                    } if bin.can_trap() => {
                        let d = intra.value_of(&env, *rhs);
                        if d.singleton() == Some(0) {
                            out.push(Diagnostic::warning(
                                codes::RANGE_TRAP,
                                loc(),
                                format!("{} divisor is provably zero ({ty})", bin.mnemonic()),
                            ));
                        }
                    }
                    Op::Load { ptr, .. } | Op::Store { ptr, .. } => {
                        let p = intra.value_of(&env, *ptr);
                        let Some(pf) = p.as_ptr() else { continue };
                        if pf.null == Nullness::Null {
                            out.push(Diagnostic::warning(
                                codes::NULL_DEREF,
                                loc(),
                                format!("{} through a provably null pointer", op.kind_name()),
                            ));
                            continue;
                        }
                        if let Some(count) = base_count(m, f, pf.base) {
                            let proven_oob = pf.off_hi < 0 || pf.off_lo >= count;
                            if proven_oob && !const_chain_resolves(f, *ptr, 32) {
                                out.push(Diagnostic::warning(
                                    codes::RANGE_TRAP,
                                    loc(),
                                    format!(
                                        "{} at offset in [{}, {}] is provably outside the \
                                         {count}-element allocation",
                                        op.kind_name(),
                                        pf.off_lo,
                                        pf.off_hi
                                    ),
                                ));
                            }
                        }
                    }
                    Op::MemCpy { dst, src, .. } => {
                        for (what, v) in [("memcpy destination", dst), ("memcpy source", src)] {
                            let p = intra.value_of(&env, *v);
                            if p.as_ptr().map(|pf| pf.null) == Some(Nullness::Null) {
                                out.push(Diagnostic::warning(
                                    codes::NULL_DEREF,
                                    loc(),
                                    format!("{what} is provably null"),
                                ));
                            }
                        }
                    }
                    Op::MemSet { dst, .. } => {
                        let p = intra.value_of(&env, *dst);
                        if p.as_ptr().map(|pf| pf.null) == Some(Nullness::Null) {
                            out.push(Diagnostic::warning(
                                codes::NULL_DEREF,
                                loc(),
                                "memset destination is provably null",
                            ));
                        }
                    }
                    Op::CondBr { cond, .. } => {
                        if let Some(v) = intra.value_of(&env, *cond).singleton() {
                            let (taken, dead) = if v != 0 {
                                ("then", "else")
                            } else {
                                ("else", "then")
                            };
                            out.push(Diagnostic::note(
                                codes::DEAD_BRANCH,
                                loc(),
                                format!(
                                    "condition is provably {}; the {dead} edge is dead \
                                     (always branches to {taken})",
                                    v != 0
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Runs the analysis and the lints over `m` in one call.
pub fn check(m: &Module, out: &mut Vec<Diagnostic>) {
    check_with(m, None, out);
}

/// [`check`], optionally routed through an incremental manager: the
/// analysis memoizes per-function, the (linear-time) lint pass then runs
/// over the assembled facts as usual.
pub fn check_with(
    m: &Module,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
    out: &mut Vec<Diagnostic>,
) {
    let mi = analyze_module_with(m, mgr);
    lint_with(m, &mi, out);
}

// ---------------------------------------------------------------------------
// Textual dump (mini-analyze --absint)
// ---------------------------------------------------------------------------

/// Renders one abstract value in the stable dump syntax.
pub fn render_absval(v: &AbsVal) -> String {
    match v {
        AbsVal::Bottom => "unreachable".to_string(),
        AbsVal::Top => "top".to_string(),
        AbsVal::Float => "f64 any".to_string(),
        AbsVal::Int(f) => {
            let mut s = format!("{} in [{}, {}] u[{}, {}]", f.ty, f.lo, f.hi, f.ulo, f.uhi);
            s.push_str(&format!(" known {}/64", f.bits.count_known()));
            if f.bits.trailing_zeros() > 0 && f.as_singleton().is_none() {
                s.push_str(&format!(" tz {}", f.bits.trailing_zeros()));
            }
            s
        }
        AbsVal::Ptr(p) => {
            let mut s = String::from("ptr ");
            s.push_str(match p.null {
                Nullness::Null => "null",
                Nullness::NonNull => "nonnull",
                Nullness::Maybe => "maybe-null",
            });
            match p.base {
                PtrBase::Alloca(i) => s.push_str(&format!(
                    " base alloca %{i} off [{}, {}]",
                    p.off_lo, p.off_hi
                )),
                PtrBase::Global(g) => s.push_str(&format!(
                    " base global #{g} off [{}, {}]",
                    p.off_lo, p.off_hi
                )),
                PtrBase::Unknown => {}
            }
            if p.align_tz > 0 {
                s.push_str(&format!(" align {}", 1u32 << p.align_tz.min(8)));
            }
            s
        }
    }
}

/// Renders the whole analysis in a stable, line-oriented format.
pub fn render(m: &Module, mi: &ModuleAbsint) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {}\n", m.name));
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        out.push_str(&format!("fn @{}\n", f.name));
        if let Some(s) = mi.summary(fid) {
            for (i, a) in s.args.iter().enumerate() {
                out.push_str(&format!("  arg {i}: {}\n", render_absval(a)));
            }
            out.push_str(&format!("  ret: {}\n", render_absval(&s.ret)));
        }
        if let Some(facts) = mi.facts(fid) {
            for b in f.block_ids() {
                let Some(block) = f.block(b) else { continue };
                out.push_str(&format!("  {b}:\n"));
                for &id in &block.insts {
                    if f.op(id).result_ty() == Ty::Void {
                        continue;
                    }
                    out.push_str(&format!(
                        "    %{}: {}\n",
                        id.0,
                        render_absval(&facts.value(id))
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_ir::parser::parse_module;

    fn facts_of(text: &str, func: &str) -> (Module, ModuleAbsint, FuncId) {
        let m = parse_module(text).expect("test module parses");
        let mi = analyze_module(&m);
        let fid = m.func_by_name(func).expect("function exists");
        (m, mi, fid)
    }

    #[test]
    fn straight_line_constant_folding() {
        let (m, mi, fid) = facts_of(
            r#"
module "t"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 2:i64, 3:i64
  %1 = mul i64 %0, 4:i64
  ret %1
}
"#,
            "main",
        );
        let f = m.func(fid).unwrap();
        let ids = f.inst_ids();
        let facts = mi.facts(fid).unwrap();
        assert_eq!(facts.value(ids[0]).singleton(), Some(5));
        assert_eq!(facts.value(ids[1]).singleton(), Some(20));
        assert_eq!(mi.summary(fid).unwrap().ret.singleton(), Some(20));
    }

    #[test]
    fn loop_counter_widens_but_terminates() {
        // while (i < 10) i++ — the back edge forces widening; the analysis
        // must terminate and keep i's lower bound
        let (m, mi, fid) = facts_of(
            r#"
module "t"

fn @main() -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb2: %i2]
  %c = icmp slt i64 %i, 10:i64
  condbr %c, bb2, bb3
bb2:
  %i2 = add i64 %i, 1:i64
  br bb1
bb3:
  ret %i
}
"#,
            "main",
        );
        let f = m.func(fid).unwrap();
        let phi = f.inst_ids()[1];
        let facts = mi.facts(fid).unwrap();
        let pf = facts.value(phi);
        let int = pf.as_int().expect("phi is an integer");
        // Without branch-edge refinement the wrapping increment forces the
        // counter to ⊤ — the point of this test is that widening got there
        // in finitely many joins instead of counting up one by one.
        assert!(int.is_top(), "widened to ⊤: {int:?}");
        let ret = mi.summary(fid).unwrap().ret;
        assert!(!ret.is_bottom(), "exit block stayed reachable");
    }

    #[test]
    fn widening_terminates_on_nested_and_down_counting_loops() {
        // the nastiest chain shapes for interval widening: a two-deep nest
        // whose inner counter runs *down*, plus a stand-alone down-counting
        // loop with a stride that skips the exit value. The assertion is
        // mostly that `analyze_module` converges (a widening bug here loops
        // until SCC_ITER_LIMIT or forever); the summaries staying non-⊥
        // pins that every exit stayed reachable through the joins.
        let (_, mi, outer) = facts_of(
            r#"
module "t"

fn @nest(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb4: %i2]
  %s = phi i64 [bb0: 0:i64], [bb4: %t]
  %ci = icmp slt i64 %i, %arg0
  condbr %ci, bb2, bb5
bb2:
  %j = phi i64 [bb1: 8:i64], [bb3: %j2]
  %t = phi i64 [bb1: %s], [bb3: %t2]
  %cj = icmp sgt i64 %j, 0:i64
  condbr %cj, bb3, bb4
bb3:
  %t2 = add i64 %t, %j
  %j2 = sub i64 %j, 1:i64
  br bb2
bb4:
  %i2 = add i64 %i, 1:i64
  br bb1
bb5:
  ret %s
}

fn @down(i64) -> i64 internal {
bb0:
  br bb1
bb1:
  %i = phi i64 [bb0: %arg0], [bb2: %i2]
  %c = icmp sgt i64 %i, 0:i64
  condbr %c, bb2, bb3
bb2:
  %i2 = sub i64 %i, 3:i64
  br bb1
bb3:
  ret %i
}
"#,
            "nest",
        );
        assert!(!mi.summary(outer).unwrap().ret.is_bottom());
        let down = mi.summaries.values().filter(|s| !s.ret.is_bottom()).count();
        assert_eq!(down, 2, "both loop functions reached their exits");
    }

    #[test]
    fn interprocedural_return_summary_flows_to_caller() {
        let (m, mi, fid) = facts_of(
            r#"
module "t"

fn @five() -> i64 internal {
bb0:
  ret 5:i64
}

fn @main() -> i64 internal {
bb0:
  %0 = call @five() -> i64
  %1 = add i64 %0, 1:i64
  ret %1
}
"#,
            "main",
        );
        let f = m.func(fid).unwrap();
        let facts = mi.facts(fid).unwrap();
        assert_eq!(facts.value(f.inst_ids()[1]).singleton(), Some(6));
    }

    #[test]
    fn argument_summaries_sharpen_in_round_two() {
        let (m, mi, _) = facts_of(
            r#"
module "t"

fn @helper(i64) -> i64 internal {
bb0:
  %0 = add i64 %arg0, 1:i64
  ret %0
}

fn @main() -> i64 internal {
bb0:
  %0 = call @helper(41:i64) -> i64
  ret %0
}
"#,
            "main",
        );
        let hid = m.func_by_name("helper").unwrap();
        let s = mi.summary(hid).unwrap();
        assert_eq!(s.args[0].singleton(), Some(41), "call-site arg joined");
        assert_eq!(s.ret.singleton(), Some(42), "return recomputed with it");
    }

    #[test]
    fn recursion_reaches_a_sound_fixpoint() {
        let (m, mi, _) = facts_of(
            r#"
module "t"

fn @count(i64) -> i64 internal {
bb0:
  %0 = icmp sle i64 %arg0, 0:i64
  condbr %0, bb1, bb2
bb1:
  ret 0:i64
bb2:
  %1 = sub i64 %arg0, 1:i64
  %2 = call @count(%1) -> i64
  %3 = add i64 %2, 1:i64
  ret %3
}

fn @main() -> i64 internal {
bb0:
  %0 = call @count(3:i64) -> i64
  ret %0
}
"#,
            "main",
        );
        // the summary must be a sound over-approximation of {0..}, not ⊥
        let s = mi.summary(m.func_by_name("count").unwrap()).unwrap();
        assert!(!s.ret.is_bottom(), "recursive summary converged");
    }

    #[test]
    fn lints_fire_on_provable_traps() {
        let m = parse_module(
            r#"
module "t"

fn @main(i64) -> i64 internal {
bb0:
  %0 = srem i64 %arg0, 7:i64
  %1 = mul i64 %0, 0:i64
  %2 = sdiv i64 %arg0, %1
  ret %2
}
"#,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&m, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::RANGE_TRAP),
            "x * 0 is provably zero: {out:?}"
        );
    }

    #[test]
    fn clean_code_stays_clean() {
        let m = parse_module(
            r#"
module "t"

fn @main(i64) -> i64 internal {
bb0:
  %0 = srem i64 %arg0, 7:i64
  %1 = add i64 %0, 10:i64
  %2 = sdiv i64 100:i64, %1
  ret %2
}
"#,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&m, &mut out);
        assert!(out.is_empty(), "srem in [-6,6] + 10 is never zero: {out:?}");
    }

    #[test]
    fn dead_branch_note_on_proven_condition() {
        let m = parse_module(
            r#"
module "t"

fn @main(i64) -> i64 internal {
bb0:
  %0 = srem i64 %arg0, 4:i64
  %1 = icmp slt i64 %0, 100:i64
  condbr %1, bb1, bb2
bb1:
  ret 1:i64
bb2:
  ret 2:i64
}
"#,
        )
        .unwrap();
        let mut out = Vec::new();
        check(&m, &mut out);
        let notes: Vec<_> = out
            .iter()
            .filter(|d| d.code == codes::DEAD_BRANCH)
            .collect();
        assert_eq!(notes.len(), 1, "{out:?}");
        assert!(notes[0].message.contains("provably true"));
    }

    #[test]
    fn render_is_stable_and_mentions_facts() {
        let (m, mi, _) = facts_of(
            r#"
module "t"

fn @main() -> i64 internal {
bb0:
  %0 = add i64 2:i64, 2:i64
  ret %0
}
"#,
            "main",
        );
        let a = render(&m, &mi);
        let b = render(&m, &analyze_module(&m));
        assert_eq!(a, b, "renders deterministically");
        assert!(a.contains("fn @main"));
        assert!(a.contains("in [4, 4]"), "{a}");
    }
}
