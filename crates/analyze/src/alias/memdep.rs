//! MemorySSA-style per-function memory dependence.
//!
//! On top of the points-to solution, this module computes a classic
//! reaching-definitions dataflow over the memory-writing instructions
//! (stores, memsets/memcpys, calls with a non-empty mod set), with
//! strong updates for syntactically identical store targets. Every load
//! is then attached to the set of defs that *may* feed it, after
//! disambiguation by (a) the points-to sets and (b) base-object +
//! constant-offset reasoning — the same const-index gep walk absint's
//! pointer facts are built from (two accesses off one base at different
//! constant cell offsets cannot touch the same cell).
//!
//! The builder additionally proves stores *dead*: a store is dead when
//! its target is provably frame-private (own, never-escaping alloca),
//! provably in-bounds and type-matched (so it cannot trap), and no
//! reachable instruction after it may read the cell. Those judgements
//! feed the `store-dead` lint and the `dse` pass — and because the
//! in-bounds requirement makes removal *exactly* semantics-preserving
//! (not merely a refinement), the interpreter-equality property tests
//! hold as well.

use super::{FnAliasSummary, FuncAlias, MemObj, PtsSet};
use posetrl_ir::analysis::cfg::Cfg;
use posetrl_ir::{Function, InstId, Op, Ty, Value};
use std::collections::{BTreeMap, HashMap};

/// Upper bound on recorded may-defs per load (tail truncated, smallest
/// instruction ids kept — deterministic).
const MAX_DEPS_PER_LOAD: usize = 32;

/// Upper bound on the store→load chain depth metric.
const MAX_CHAIN: u32 = 64;

/// The memory-dependence result of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemDep {
    /// For each load (by instruction id): the ids of the defs that may
    /// reach it, ascending.
    pub load_deps: BTreeMap<u32, Vec<u32>>,
    /// Stores proven dead (frame-private target, in-bounds, no reachable
    /// may-reader), ascending.
    pub dead_stores: Vec<u32>,
    /// The deepest store→load def/use chain observed (0 when the
    /// function has no loads).
    pub max_chain: u32,
}

/// One memory-writing site.
struct Def {
    id: InstId,
    /// What the def may write.
    mods: PtsSet,
    /// For plain stores: the syntactic (pointer value, type) key used
    /// for strong updates, plus the const-offset resolution.
    store_key: Option<(Value, Ty)>,
    root: Option<(Value, i64)>,
    /// Whether offset disambiguation applies (single-cell access).
    single_cell: bool,
}

/// Walks constant-index geps down to the underlying base value.
/// Returns the base and the accumulated cell offset, or `None` for the
/// offset as soon as one index is not a constant.
fn resolve_root(f: &Function, v: Value) -> (Value, Option<i64>) {
    let mut cur = v;
    let mut off: Option<i64> = Some(0);
    loop {
        let Value::Inst(id) = cur else {
            return (cur, off);
        };
        let Op::Gep { ptr, index, .. } = f.op(id) else {
            return (cur, off);
        };
        match index {
            Value::Const(c) => match c.as_int() {
                Some(i) => off = off.map(|o| o.saturating_add(i)),
                None => off = None,
            },
            _ => off = None,
        }
        cur = *ptr;
    }
}

/// Local (driver-independent) alias queries against in-progress facts —
/// the memdep builder runs inside the memoized `analyze_function` leaf,
/// before a `ModuleAlias` exists.
struct Ctx<'a> {
    fid: u32,
    f: &'a Function,
    facts: &'a FuncAlias,
    summaries: &'a BTreeMap<u32, FnAliasSummary>,
    cap: usize,
}

impl Ctx<'_> {
    fn value_pts(&self, v: Value) -> PtsSet {
        match v {
            Value::Const(_) => PtsSet::empty(),
            Value::Global(g) => PtsSet::of(MemObj::Global(g.0)),
            Value::Func(g) => PtsSet::of(MemObj::Func(g.0)),
            Value::Arg(i) => {
                if self.f.params.get(i as usize) == Some(&Ty::Ptr) {
                    PtsSet::of(MemObj::Arg {
                        func: self.fid,
                        arg: i,
                    })
                } else {
                    PtsSet::empty()
                }
            }
            Value::Inst(id) => self.facts.pts_of(id),
        }
    }

    fn externally_reachable(&self, o: &MemObj) -> bool {
        match o {
            MemObj::Alloca { func, .. } if *func == self.fid => self.facts.escaped.contains(o),
            _ => true,
        }
    }

    fn sets_may_alias(&self, a: &PtsSet, b: &PtsSet) -> bool {
        let wild_a = a.top || a.has_arg_obj();
        let wild_b = b.top || b.has_arg_obj();
        if wild_a && wild_b {
            return true;
        }
        if wild_a && b.objs.iter().any(|o| self.externally_reachable(o)) {
            return true;
        }
        if wild_b && a.objs.iter().any(|o| self.externally_reachable(o)) {
            return true;
        }
        a.objs.intersection(&b.objs).next().is_some()
    }

    fn subst(&self, set: &PtsSet, callee: u32, cargs: &[Value]) -> PtsSet {
        if set.top {
            return PtsSet::top();
        }
        let mut out = PtsSet::empty();
        for o in &set.objs {
            match o {
                MemObj::Arg { func, arg } if *func == callee => {
                    let ap = cargs
                        .get(*arg as usize)
                        .map(|&v| self.value_pts(v))
                        .unwrap_or_else(PtsSet::top);
                    out.join(&ap, self.cap);
                }
                _ => {
                    out.insert(*o, self.cap);
                }
            }
        }
        out
    }

    /// The mod set of a call instruction, from this function's view.
    fn call_mods(&self, id: InstId) -> Option<PtsSet> {
        let Op::Call { callee, args, .. } = self.f.op(id) else {
            return None;
        };
        Some(match self.summaries.get(&callee.0) {
            Some(s) => self.subst(&s.mods, callee.0, args),
            None => PtsSet::top(),
        })
    }

    /// The ref set of a call instruction, from this function's view.
    fn call_refs(&self, id: InstId) -> Option<PtsSet> {
        let Op::Call { callee, args, .. } = self.f.op(id) else {
            return None;
        };
        Some(match self.summaries.get(&callee.0) {
            Some(s) => self.subst(&s.refs, callee.0, args),
            None => PtsSet::top(),
        })
    }

    /// May the def write the cell a single-cell access at
    /// `(acc_root, acc_ty)` touches?
    fn def_may_clobber(
        &self,
        d: &Def,
        acc_pts: &PtsSet,
        acc_root: &(Value, Option<i64>),
        acc_ty: Ty,
    ) -> bool {
        if d.single_cell {
            if let (Some((dr, doff)), (ar, Some(aoff))) = (&d.root, acc_root) {
                if dr == ar {
                    if doff != aoff {
                        return false; // same base, different cells
                    }
                    if let Some((_, dty)) = d.store_key {
                        if dty != acc_ty {
                            // same cell, different access type: one of
                            // the two traps, conservatively a clobber
                            return true;
                        }
                    }
                    return true;
                }
            }
        }
        self.sets_may_alias(&d.mods, acc_pts)
    }
}

/// Dense bitset over def indices.
#[derive(Clone, PartialEq, Eq, Default)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(n: usize) -> Bits {
        Bits(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn union(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            let n = *a | *b;
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        changed
    }
    fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| {
                if bits & (1 << b) != 0 {
                    Some(w * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Builds the memory-dependence structure for `f` against already-solved
/// points-to facts. Pure in its inputs (memo-safe).
pub fn build(
    fid: u32,
    f: &Function,
    facts: &FuncAlias,
    summaries: &BTreeMap<u32, FnAliasSummary>,
    cfg: &super::AliasConfig,
) -> MemDep {
    let ctx = Ctx {
        fid,
        f,
        facts,
        summaries,
        cap: cfg.pts_cap,
    };
    let graph = Cfg::compute(f);

    // --- collect defs --------------------------------------------------
    let mut defs: Vec<Def> = Vec::new();
    let mut def_index: HashMap<InstId, usize> = HashMap::new();
    for &b in &graph.rpo {
        let Some(block) = f.block(b) else { continue };
        for &id in &block.insts {
            let d = match f.op(id) {
                Op::Store { ty, ptr, .. } => Some(Def {
                    id,
                    mods: ctx.value_pts(*ptr),
                    store_key: Some((*ptr, *ty)),
                    root: {
                        let (r, o) = resolve_root(f, *ptr);
                        o.map(|o| (r, o))
                    },
                    single_cell: true,
                }),
                Op::MemSet { dst, .. } | Op::MemCpy { dst, .. } => Some(Def {
                    id,
                    mods: ctx.value_pts(*dst),
                    store_key: None,
                    root: None,
                    single_cell: false,
                }),
                Op::Call { .. } => {
                    let mods = ctx.call_mods(id).unwrap_or_else(PtsSet::top);
                    if mods.is_empty() {
                        None
                    } else {
                        Some(Def {
                            id,
                            mods,
                            store_key: None,
                            root: None,
                            single_cell: false,
                        })
                    }
                }
                _ => None,
            };
            if let Some(d) = d {
                def_index.insert(id, defs.len());
                defs.push(d);
            }
        }
    }
    let n = defs.len();

    // strong-update kill sets: a store kills every other store with the
    // identical (pointer value, type) key
    let mut kills: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        let mut by_key: HashMap<(Value, Ty), Vec<usize>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            if let Some(k) = d.store_key {
                by_key.entry(k).or_default().push(i);
            }
        }
        for group in by_key.values() {
            for &i in group {
                kills[i] = group.iter().copied().filter(|&j| j != i).collect();
            }
        }
    }

    // --- reaching defs fixpoint over blocks ----------------------------
    let transfer = |start: &Bits, b: posetrl_ir::BlockId| -> Bits {
        let mut cur = start.clone();
        if let Some(block) = f.block(b) {
            for &id in &block.insts {
                if let Some(&i) = def_index.get(&id) {
                    for &k in &kills[i] {
                        cur.clear(k);
                    }
                    cur.set(i);
                }
            }
        }
        cur
    };
    let mut ins: HashMap<posetrl_ir::BlockId, Bits> =
        graph.rpo.iter().map(|&b| (b, Bits::new(n))).collect();
    loop {
        let mut changed = false;
        for &b in &graph.rpo {
            let out = transfer(&ins[&b], b);
            for &s in graph.succs.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(si) = ins.get_mut(&s) {
                    if si.union(&out) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- per-load may-def chains ---------------------------------------
    let mut load_deps: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &b in &graph.rpo {
        let Some(block) = f.block(b) else { continue };
        let mut cur = ins[&b].clone();
        for &id in &block.insts {
            if let Op::Load { ty, ptr } = f.op(id) {
                let pts = ctx.value_pts(*ptr);
                let root = resolve_root(f, *ptr);
                let mut deps: Vec<u32> = cur
                    .iter_set()
                    .filter(|&i| ctx.def_may_clobber(&defs[i], &pts, &root, *ty))
                    .map(|i| defs[i].id.0)
                    .collect();
                deps.sort_unstable();
                deps.truncate(MAX_DEPS_PER_LOAD);
                load_deps.insert(id.0, deps);
            }
            if let Some(&i) = def_index.get(&id) {
                for &k in &kills[i] {
                    cur.clear(k);
                }
                cur.set(i);
            }
        }
    }

    // --- dead stores ----------------------------------------------------
    let dead_stores = find_dead_stores(&ctx, &graph);

    // --- chain depth metric ---------------------------------------------
    let mut depth_memo: HashMap<u32, u32> = HashMap::new();
    let mut max_chain = 0u32;
    for &l in load_deps.keys() {
        let d = chain_depth(f, &load_deps, l, &mut depth_memo, 0);
        max_chain = max_chain.max(d);
    }

    MemDep {
        load_deps,
        dead_stores,
        max_chain,
    }
}

/// Depth of the def/use chain ending at load `l`: 1 + the deepest chain
/// feeding any store whose *stored value* is itself a load. Cycles (loop
/// carried chains) and depths beyond [`MAX_CHAIN`] saturate.
fn chain_depth(
    f: &Function,
    load_deps: &BTreeMap<u32, Vec<u32>>,
    l: u32,
    memo: &mut HashMap<u32, u32>,
    guard: u32,
) -> u32 {
    if let Some(&d) = memo.get(&l) {
        return d;
    }
    if guard >= MAX_CHAIN {
        return MAX_CHAIN;
    }
    // mark as in-progress so loop-carried chains terminate
    memo.insert(l, 1);
    let mut best = 1u32;
    for &d in load_deps.get(&l).map(Vec::as_slice).unwrap_or(&[]) {
        if let Op::Store { val, .. } = f.op(InstId(d)) {
            let mut feeders = Vec::new();
            feeding_loads(f, *val, &mut feeders, 0);
            for v in feeders {
                let sub = chain_depth(f, load_deps, v, memo, guard + 1);
                best = best.max(sub.saturating_add(1).min(MAX_CHAIN));
            }
        }
    }
    memo.insert(l, best);
    best
}

/// Collects the loads that (transitively, through a bounded slice of the
/// SSA operand tree) feed value `v`.
fn feeding_loads(f: &Function, v: Value, out: &mut Vec<u32>, depth: u32) {
    if depth > 4 || out.len() >= 8 {
        return;
    }
    let Value::Inst(id) = v else { return };
    if matches!(f.op(id), Op::Load { .. }) {
        if !out.contains(&id.0) {
            out.push(id.0);
        }
        return;
    }
    // phis can cycle back through themselves; the depth bound terminates
    for o in f.op(id).operands() {
        feeding_loads(f, o, out, depth + 1);
    }
}

/// Proves stores dead: frame-private in-bounds target, no reachable
/// may-reader afterwards.
fn find_dead_stores(ctx: &Ctx, graph: &Cfg) -> Vec<u32> {
    let f = ctx.f;
    // per-block list of (position, read set) readers
    let mut readers: HashMap<posetrl_ir::BlockId, Vec<(usize, PtsSet)>> = HashMap::new();
    for &b in &graph.rpo {
        let Some(block) = f.block(b) else { continue };
        let mut rs = Vec::new();
        for (pos, &id) in block.insts.iter().enumerate() {
            let r = match f.op(id) {
                Op::Load { ptr, .. } => Some(ctx.value_pts(*ptr)),
                Op::MemCpy { src, .. } => Some(ctx.value_pts(*src)),
                Op::Call { .. } => {
                    let refs = ctx.call_refs(id).unwrap_or_else(PtsSet::top);
                    if refs.is_empty() {
                        None
                    } else {
                        Some(refs)
                    }
                }
                _ => None,
            };
            if let Some(r) = r {
                rs.push((pos, r));
            }
        }
        readers.insert(b, rs);
    }

    // transitive successor closure (blocks reachable strictly after each
    // block via its successor edges; a loop makes a block self-reachable)
    let order = &graph.rpo;
    let idx: HashMap<posetrl_ir::BlockId, usize> =
        order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let nb = order.len();
    let mut reach: Vec<Bits> = vec![Bits::new(nb); nb];
    loop {
        let mut changed = false;
        for (i, &b) in order.iter().enumerate() {
            for &s in graph.succs.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(&si) = idx.get(&s) {
                    let mut next = reach[si].clone();
                    next.set(si);
                    if reach[i].union(&next) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut dead = Vec::new();
    'stores: for &b in &graph.rpo {
        let Some(block) = f.block(b) else { continue };
        for (pos, &id) in block.insts.iter().enumerate() {
            let Op::Store { ty, ptr, .. } = f.op(id) else {
                continue;
            };
            let pts = ctx.value_pts(*ptr);
            // frame-private target only
            if pts.top || pts.objs.is_empty() {
                continue;
            }
            if pts.objs.iter().any(|o| ctx.externally_reachable(o)) {
                continue;
            }
            // provably in-bounds and type-matched (the store cannot trap,
            // so removing it is exactly behavior-preserving)
            let (root, off) = resolve_root(f, *ptr);
            let Some(off) = off else { continue };
            let Value::Inst(aid) = root else { continue };
            let Op::Alloca { ty: aty, count } = f.op(aid) else {
                continue;
            };
            if *aty != *ty || off < 0 || off >= *count as i64 {
                continue;
            }
            // no reachable may-reader after the store
            for (rpos, rset) in readers.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                if *rpos > pos && ctx.sets_may_alias(&pts, rset) {
                    continue 'stores;
                }
            }
            let Some(&bi) = idx.get(&b) else { continue };
            for ri in reach[bi].iter_set() {
                for (_, rset) in readers.get(&order[ri]).map(Vec::as_slice).unwrap_or(&[]) {
                    if ctx.sets_may_alias(&pts, rset) {
                        continue 'stores;
                    }
                }
            }
            dead.push(id.0);
        }
    }
    dead.sort_unstable();
    dead
}

#[cfg(test)]
mod tests {
    use crate::alias::{analyze_module_cfg, AliasConfig};
    use posetrl_ir::parser::parse_module;
    use posetrl_ir::Op;

    #[test]
    fn load_chains_point_at_feeding_stores() {
        let m = parse_module(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  store i64 1:i64, %a
  store i64 2:i64, %b
  %v = load i64, %a
  ret %v
}
"#,
        )
        .unwrap();
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let md = ma.memdep(fid).unwrap();
        let ids = f.inst_ids();
        let store_a = ids[2];
        let load = ids[4];
        assert_eq!(md.load_deps[&load.0], vec![store_a.0], "{md:?}");
        assert_eq!(md.max_chain, 1);
    }

    #[test]
    fn overwritten_store_is_killed_by_strong_update() {
        let m = parse_module(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 1:i64, %a
  store i64 2:i64, %a
  %v = load i64, %a
  ret %v
}
"#,
        )
        .unwrap();
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let md = ma.memdep(fid).unwrap();
        let ids = f.inst_ids();
        // only the second store reaches the load
        assert_eq!(md.load_deps[&ids[3].0], vec![ids[2].0], "{md:?}");
    }

    #[test]
    fn constant_offsets_disambiguate_cells() {
        let m = parse_module(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 4
  %p0 = gep i64, %a, 0:i64
  %p1 = gep i64, %a, 1:i64
  store i64 1:i64, %p0
  store i64 2:i64, %p1
  %v = load i64, %p0
  ret %v
}
"#,
        )
        .unwrap();
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let md = ma.memdep(fid).unwrap();
        let ids = f.inst_ids();
        // the load of cell 0 depends only on the store to cell 0, even
        // though both stores hit the same alloca's points-to set
        assert_eq!(md.load_deps[&ids[5].0], vec![ids[3].0], "{md:?}");
    }

    #[test]
    fn unread_private_store_is_dead_but_escaped_is_not() {
        let m = parse_module(
            r#"
module "t"
declare @sink(ptr) -> void
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  store i64 1:i64, %a
  store i64 2:i64, %b
  call @sink(%b) -> void
  ret 0:i64
}
"#,
        )
        .unwrap();
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let md = ma.memdep(fid).unwrap();
        let ids = f.inst_ids();
        assert_eq!(md.dead_stores, vec![ids[2].0], "{md:?}");
    }

    #[test]
    fn loop_readers_keep_stores_alive() {
        let m = parse_module(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 0:i64, %a
  br bb1
bb1:
  %i = phi i64 [bb0: 0:i64], [bb1: %i2]
  %v = load i64, %a
  %v2 = add i64 %v, 1:i64
  store i64 %v2, %a
  %i2 = add i64 %i, 1:i64
  %c = icmp slt i64 %i2, 4:i64
  condbr %c, bb1, bb2
bb2:
  %r = load i64, %a
  ret %r
}
"#,
        )
        .unwrap();
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let md = ma.memdep(fid).unwrap();
        assert!(md.dead_stores.is_empty(), "{md:?}");
        // the loop-carried load sees both the init store and the loop store
        let ids = f.inst_ids();
        let loop_load = ids[4];
        assert!(matches!(f.op(loop_load), Op::Load { .. }));
        assert_eq!(md.load_deps[&loop_load.0].len(), 2, "{md:?}");
        assert!(md.max_chain >= 2, "loop-carried chain: {md:?}");
    }
}
