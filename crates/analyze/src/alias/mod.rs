//! Interprocedural alias analysis: Andersen-style points-to sets,
//! mod/ref summaries and a per-function memory-dependence builder.
//!
//! The analysis is flow-insensitive and context-insensitive, mirroring
//! the `absint` engine's interprocedural shape: constraints are
//! generated per function, solving proceeds bottom-up over the call
//! graph's strongly connected components (the same iterative Tarjan
//! machinery), and every function exports one summary. Context
//! insensitivity is recovered through *symbolic argument objects*: a
//! pointer parameter `i` of function `f` points to the placeholder
//! [`MemObj::Arg`]`{f, i}`, and call sites substitute the caller's
//! actual argument sets into the callee's exported summary. External
//! declarations and address-taken roots keep ⊤ mod/ref summaries (an
//! unknown caller or callee can reach anything externally reachable).
//!
//! The abstract memory objects are allocation sites ([`MemObj::Alloca`]),
//! globals, function addresses (so `&@f` escapes are tracked) and the
//! symbolic argument objects. A points-to set ([`PtsSet`]) is a bounded
//! object set with an explicit ⊤; the `POSETRL_ALIAS_PTS` budget
//! saturates oversized sets to ⊤ and `POSETRL_ALIAS_ITERS` caps the
//! per-function constraint iterations (both via the structured
//! [`crate::validate::EnvParseError`] scheme shared with
//! `POSETRL_VALIDATE_*`).
//!
//! On top of the points-to solution, [`memdep`] builds a MemorySSA-style
//! per-function [`MemDep`]: reaching may-def chains for
//! every load, a dead-store judgement (no reachable may-reader and a
//! provably frame-private, in-bounds target), and chain-depth metrics.
//! Store/load pairs are disambiguated by the points-to sets *and* by the
//! same base-object/constant-offset reasoning absint's pointer facts
//! encode (a shared constant-index gep walk).
//!
//! Three consumers sit on top: the alias-aware `dse`/`gvn`/
//! `early-cse-memssa`/`licm` passes in `posetrl-opt`, the
//! [`check`] lints (`store-dead`, `alias-uaf`, alias-tightened
//! `uninit-load`/`const-write`), and eight static feature dimensions in
//! [`crate::absint::features`]. Per-function results are memoized in the
//! [`IncrementalAnalysisManager`](crate::incremental::IncrementalAnalysisManager)
//! keyed by content fingerprint + config digest + callee-summary
//! digests, exactly like the absint memo class.

pub mod memdep;

use crate::diag::{codes, Diagnostic};
use crate::validate::{parse_env_budget, EnvParseError};
use memdep::MemDep;
use posetrl_ir::{FuncId, Function, InstId, Module, Op, SourceLoc, Ty, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Budgets of the constraint solver. Env-tunable via `POSETRL_ALIAS_*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasConfig {
    /// Maximum constraint-propagation sweeps per function before every
    /// pointer fact saturates to ⊤.
    pub max_iters: usize,
    /// Maximum object count per points-to set; joins beyond it saturate
    /// the set to an explicit ⊤.
    pub pts_cap: usize,
}

impl Default for AliasConfig {
    fn default() -> Self {
        AliasConfig {
            max_iters: 64,
            pts_cap: 16,
        }
    }
}

impl AliasConfig {
    /// Reads the budgets through `lookup` (`POSETRL_ALIAS_ITERS`,
    /// `POSETRL_ALIAS_PTS`). Unset knobs fall back to the defaults;
    /// malformed knobs are a structured error, consistent with the
    /// `POSETRL_VALIDATE_*` scheme.
    pub fn from_vars(lookup: impl Fn(&str) -> Option<String>) -> Result<Self, EnvParseError> {
        let d = AliasConfig::default();
        Ok(AliasConfig {
            max_iters: parse_env_budget(
                "POSETRL_ALIAS_ITERS",
                lookup("POSETRL_ALIAS_ITERS").as_deref(),
                d.max_iters,
            )?,
            pts_cap: parse_env_budget(
                "POSETRL_ALIAS_PTS",
                lookup("POSETRL_ALIAS_PTS").as_deref(),
                d.pts_cap,
            )?,
        })
    }

    /// [`AliasConfig::from_vars`] over the process environment.
    pub fn try_from_env() -> Result<Self, EnvParseError> {
        Self::from_vars(|k| std::env::var(k).ok())
    }

    /// Like [`AliasConfig::try_from_env`], but for callers that cannot
    /// propagate the error (engine hot paths): malformed knobs are
    /// reported on stderr and the defaults are used. CLIs should prefer
    /// `try_from_env` and exit with a usage error.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            eprintln!("posetrl-analyze: {e}; using the default alias budgets");
            AliasConfig::default()
        })
    }
}

/// An abstract memory object (allocation site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemObj {
    /// The stack slot allocated by instruction `inst` of function `func`
    /// (function arena indices keep the identity module-global).
    Alloca { func: u32, inst: u32 },
    /// The symbolic pointee of pointer parameter `arg` of `func` — the
    /// context-insensitive stand-in for "whatever the caller passed".
    Arg { func: u32, arg: u32 },
    /// A global variable.
    Global(u32),
    /// A function address (tracks `&@f` escapes).
    Func(u32),
}

impl MemObj {
    /// Stable textual form used by the render dump.
    pub fn render(&self) -> String {
        match self {
            MemObj::Alloca { func, inst } => format!("alloca f{func}:%{inst}"),
            MemObj::Arg { func, arg } => format!("arg f{func}:{arg}"),
            MemObj::Global(g) => format!("global #{g}"),
            MemObj::Func(g) => format!("fn #{g}"),
        }
    }
}

/// A bounded points-to set with an explicit ⊤ ("may point anywhere,
/// including every externally reachable object").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PtsSet {
    /// Saturated: the set of objects is unknown.
    pub top: bool,
    /// Known objects (empty and non-⊤ means "provably no object":
    /// null/undef/never-assigned).
    pub objs: BTreeSet<MemObj>,
}

impl PtsSet {
    /// The empty set.
    pub fn empty() -> PtsSet {
        PtsSet::default()
    }

    /// The saturated set.
    pub fn top() -> PtsSet {
        PtsSet {
            top: true,
            objs: BTreeSet::new(),
        }
    }

    /// A singleton set.
    pub fn of(o: MemObj) -> PtsSet {
        PtsSet {
            top: false,
            objs: BTreeSet::from([o]),
        }
    }

    /// Whether the set holds no object and is not ⊤.
    pub fn is_empty(&self) -> bool {
        !self.top && self.objs.is_empty()
    }

    /// Object count used for size metrics (`cap` when ⊤).
    pub fn size_for(&self, cap: usize) -> usize {
        if self.top {
            cap
        } else {
            self.objs.len()
        }
    }

    /// Saturates to ⊤. Returns `true` if that changed the set.
    pub fn set_top(&mut self) -> bool {
        if self.top {
            return false;
        }
        self.top = true;
        self.objs.clear();
        true
    }

    /// Joins `other` in, saturating at `cap` objects. Returns `true` on
    /// change.
    pub fn join(&mut self, other: &PtsSet, cap: usize) -> bool {
        if self.top {
            return false;
        }
        if other.top {
            return self.set_top();
        }
        let before = self.objs.len();
        self.objs.extend(other.objs.iter().copied());
        if self.objs.len() > cap {
            return self.set_top();
        }
        self.objs.len() != before
    }

    /// Inserts one object, saturating at `cap`. Returns `true` on change.
    pub fn insert(&mut self, o: MemObj, cap: usize) -> bool {
        if self.top {
            return false;
        }
        let changed = self.objs.insert(o);
        if self.objs.len() > cap {
            return self.set_top();
        }
        changed
    }

    /// Whether the set contains any symbolic argument object (the
    /// wildcard for "anything the caller could have passed").
    pub fn has_arg_obj(&self) -> bool {
        self.objs.iter().any(|o| matches!(o, MemObj::Arg { .. }))
    }

    /// Stable textual form used by the render dump.
    pub fn render(&self) -> String {
        if self.top {
            return "top".to_string();
        }
        if self.objs.is_empty() {
            return "{}".to_string();
        }
        let items: Vec<String> = self.objs.iter().map(|o| o.render()).collect();
        format!("{{{}}}", items.join(", "))
    }
}

/// Per-function exported summary: argument/return points-to sets plus
/// the mod/ref/escape effect sets a call site must account for.
///
/// Exported sets may contain the function's own [`MemObj::Arg`] objects;
/// call sites substitute the actual argument sets for them. A ⊤ `mods`
/// or `refs` means "every externally reachable object" — frame-private
/// allocas of the *caller* are still exempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnAliasSummary {
    /// Points-to set of each parameter (symbolic `Arg` objects for
    /// pointer parameters, empty otherwise).
    pub args: Vec<PtsSet>,
    /// What the return value may point to (may include the function's
    /// own allocas — the dangling-pointer signal).
    pub ret: PtsSet,
    /// Objects a call may write, transitively (own frame-private
    /// allocas filtered out).
    pub mods: PtsSet,
    /// Objects a call may read, transitively.
    pub refs: PtsSet,
    /// Objects whose address escapes to unknown code during the call.
    pub escapes: PtsSet,
}

impl FnAliasSummary {
    /// The ⊥ summary an SCC fixpoint starts from.
    fn bottom(fid: u32, f: &Function) -> FnAliasSummary {
        FnAliasSummary {
            args: symbolic_args(fid, f),
            ret: PtsSet::empty(),
            mods: PtsSet::empty(),
            refs: PtsSet::empty(),
            escapes: PtsSet::empty(),
        }
    }

    /// The ⊤ summary of an external declaration: unknown body, so it may
    /// read/write anything reachable and every pointer argument escapes.
    fn top_decl(fid: u32, f: &Function) -> FnAliasSummary {
        let mut escapes = PtsSet::empty();
        for (i, &t) in f.params.iter().enumerate() {
            if t == Ty::Ptr {
                escapes.objs.insert(MemObj::Arg {
                    func: fid,
                    arg: i as u32,
                });
            }
        }
        FnAliasSummary {
            args: symbolic_args(fid, f),
            ret: if f.ret == Ty::Ptr {
                PtsSet::top()
            } else {
                PtsSet::empty()
            },
            mods: PtsSet::top(),
            refs: PtsSet::top(),
            escapes,
        }
    }
}

/// Symbolic argument sets: `{Arg{fid, i}}` for pointer params.
fn symbolic_args(fid: u32, f: &Function) -> Vec<PtsSet> {
    f.params
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            if t == Ty::Ptr {
                PtsSet::of(MemObj::Arg {
                    func: fid,
                    arg: i as u32,
                })
            } else {
                PtsSet::empty()
            }
        })
        .collect()
}

/// Final per-value points-to facts of one analyzed function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncAlias {
    /// One points-to set per instruction arena slot (empty for non-pointer
    /// results and removed slots).
    pub pts: Vec<PtsSet>,
    /// Objects whose address escapes to unknown code somewhere in this
    /// function (local view; own allocas in here are *not* frame-private).
    pub escaped: BTreeSet<MemObj>,
}

impl FuncAlias {
    /// The points-to set of instruction `id`.
    pub fn pts_of(&self, id: InstId) -> PtsSet {
        self.pts.get(id.index()).cloned().unwrap_or_default()
    }
}

/// Everything the per-function analysis produces — the unit the
/// incremental manager memoizes.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasFnResult {
    /// Per-value points-to facts.
    pub facts: FuncAlias,
    /// The exported summary (before any driver-side root saturation).
    pub summary: FnAliasSummary,
    /// The memory-dependence structure built on top of the facts.
    pub memdep: MemDep,
}

/// The module-wide analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAlias {
    /// Summaries keyed by function arena index (address-taken roots are
    /// saturated to ⊤ mod/ref here).
    pub summaries: BTreeMap<u32, FnAliasSummary>,
    /// Per-function points-to facts for every defined function.
    pub funcs: BTreeMap<u32, FuncAlias>,
    /// Per-function memory-dependence results.
    pub memdeps: BTreeMap<u32, MemDep>,
    /// The points-to cap the solution was computed with (joins performed
    /// through the query API keep saturating consistently).
    pub cap: usize,
}

impl ModuleAlias {
    /// The summary of `id`, if analyzed.
    pub fn summary(&self, id: FuncId) -> Option<&FnAliasSummary> {
        self.summaries.get(&id.0)
    }

    /// The facts of `id`, if it has a body.
    pub fn facts(&self, id: FuncId) -> Option<&FuncAlias> {
        self.funcs.get(&id.0)
    }

    /// The memory-dependence result of `id`, if it has a body.
    pub fn memdep(&self, id: FuncId) -> Option<&MemDep> {
        self.memdeps.get(&id.0)
    }

    /// The points-to set of value `v` inside function `fid`.
    pub fn value_pts(&self, fid: FuncId, f: &Function, v: Value) -> PtsSet {
        match v {
            Value::Const(_) => PtsSet::empty(),
            Value::Global(g) => PtsSet::of(MemObj::Global(g.0)),
            Value::Func(g) => PtsSet::of(MemObj::Func(g.0)),
            Value::Arg(i) => self
                .summaries
                .get(&fid.0)
                .and_then(|s| s.args.get(i as usize).cloned())
                .unwrap_or_else(|| {
                    if f.params.get(i as usize) == Some(&Ty::Ptr) {
                        PtsSet::top()
                    } else {
                        PtsSet::empty()
                    }
                }),
            Value::Inst(id) => self
                .funcs
                .get(&fid.0)
                .map(|fa| fa.pts_of(id))
                .unwrap_or_else(PtsSet::top),
        }
    }

    /// Whether object `o`, seen from function `fid`, can be reached by
    /// code outside the function (so a ⊤ pointer or a symbolic argument
    /// may refer to it). Frame-private: an own alloca that never escaped.
    pub fn externally_reachable(&self, fid: FuncId, o: &MemObj) -> bool {
        match o {
            MemObj::Alloca { func, .. } if *func == fid.0 => self
                .funcs
                .get(&fid.0)
                .map(|fa| fa.escaped.contains(o))
                .unwrap_or(true),
            _ => true,
        }
    }

    /// May the two points-to sets refer to a common memory cell, seen
    /// from function `fid`? ⊤ and symbolic argument objects act as
    /// wildcards over the externally reachable objects — but never over
    /// the function's frame-private allocas.
    pub fn sets_may_alias(&self, fid: FuncId, a: &PtsSet, b: &PtsSet) -> bool {
        let wild_a = a.top || a.has_arg_obj();
        let wild_b = b.top || b.has_arg_obj();
        if wild_a && wild_b {
            return true;
        }
        if wild_a && b.objs.iter().any(|o| self.externally_reachable(fid, o)) {
            return true;
        }
        if wild_b && a.objs.iter().any(|o| self.externally_reachable(fid, o)) {
            return true;
        }
        a.objs.intersection(&b.objs).next().is_some()
    }

    /// Conservative may-alias query between two pointer values of
    /// function `fid`, by their points-to sets.
    pub fn may_alias(&self, fid: FuncId, f: &Function, a: Value, b: Value) -> bool {
        if a == b {
            return true;
        }
        let pa = self.value_pts(fid, f, a);
        let pb = self.value_pts(fid, f, b);
        self.sets_may_alias(fid, &pa, &pb)
    }

    /// Substitutes the caller's actual argument sets for the callee's
    /// symbolic `Arg` objects in an exported summary set.
    fn subst(
        &self,
        fid: FuncId,
        f: &Function,
        set: &PtsSet,
        callee: u32,
        cargs: &[Value],
    ) -> PtsSet {
        if set.top {
            return PtsSet::top();
        }
        let mut out = PtsSet::empty();
        for o in &set.objs {
            match o {
                MemObj::Arg { func, arg } if *func == callee => {
                    let ap = cargs
                        .get(*arg as usize)
                        .map(|&v| self.value_pts(fid, f, v))
                        .unwrap_or_else(PtsSet::top);
                    out.join(&ap, self.cap);
                }
                _ => {
                    out.insert(*o, self.cap);
                }
            }
        }
        out
    }

    /// The set of objects the call instruction `id` may write, from the
    /// caller's view. `None` when `id` is not a call.
    pub fn call_mods(&self, fid: FuncId, f: &Function, id: InstId) -> Option<PtsSet> {
        let Op::Call { callee, args, .. } = f.op(id) else {
            return None;
        };
        Some(match self.summaries.get(&callee.0) {
            Some(s) => self.subst(fid, f, &s.mods, callee.0, args),
            None => PtsSet::top(),
        })
    }

    /// The set of objects the call instruction `id` may read, from the
    /// caller's view. `None` when `id` is not a call.
    pub fn call_refs(&self, fid: FuncId, f: &Function, id: InstId) -> Option<PtsSet> {
        let Op::Call { callee, args, .. } = f.op(id) else {
            return None;
        };
        Some(match self.summaries.get(&callee.0) {
            Some(s) => self.subst(fid, f, &s.refs, callee.0, args),
            None => PtsSet::top(),
        })
    }
}

// ---------------------------------------------------------------------------
// Per-function constraint solver
// ---------------------------------------------------------------------------

/// Flow-insensitive constraint state of one function.
struct Solver<'a> {
    fid: u32,
    f: &'a Function,
    summaries: &'a BTreeMap<u32, FnAliasSummary>,
    cfg: &'a AliasConfig,
    args: Vec<PtsSet>,
    pts: Vec<PtsSet>,
    /// Contents of frame-private alloca cells (what a load from the slot
    /// may point to). Escaped or foreign cells are not tracked — loads
    /// from them yield ⊤.
    cells: BTreeMap<MemObj, PtsSet>,
    escaped: BTreeSet<MemObj>,
    mods: PtsSet,
    refs: PtsSet,
    changed: bool,
}

impl Solver<'_> {
    fn value_pts(&self, v: Value) -> PtsSet {
        match v {
            Value::Const(_) => PtsSet::empty(),
            Value::Global(g) => PtsSet::of(MemObj::Global(g.0)),
            Value::Func(g) => PtsSet::of(MemObj::Func(g.0)),
            Value::Arg(i) => self
                .args
                .get(i as usize)
                .cloned()
                .unwrap_or_else(PtsSet::top),
            Value::Inst(id) => self.pts.get(id.index()).cloned().unwrap_or_default(),
        }
    }

    /// A cell is tracked iff it is a frame-private alloca of this
    /// function: nothing outside can read or write it.
    fn tracked(&self, o: &MemObj) -> bool {
        matches!(o, MemObj::Alloca { func, .. } if *func == self.fid) && !self.escaped.contains(o)
    }

    /// Marks every object of `vp` as escaped. A ⊤ source escapes nothing
    /// new: a saturated pointer can only hold addresses that already
    /// escaped (a frame-private address has, by definition, never been
    /// published where a ⊤ source could pick it up).
    fn escape_objs(&mut self, vp: &PtsSet) {
        for o in &vp.objs {
            if self.escaped.insert(*o) {
                self.changed = true;
            }
        }
    }

    /// The set a load through `p` may yield.
    fn load_from(&self, p: &PtsSet) -> PtsSet {
        if p.top {
            return PtsSet::top();
        }
        let mut out = PtsSet::empty();
        for o in &p.objs {
            if self.tracked(o) {
                if let Some(c) = self.cells.get(o) {
                    out.join(c, self.cfg.pts_cap);
                }
            } else if !matches!(o, MemObj::Func(_)) {
                // unknown contents of a shared cell
                return PtsSet::top();
            }
        }
        out
    }

    /// Stores value set `vp` through pointer set `p`.
    fn store_into(&mut self, p: &PtsSet, vp: &PtsSet) {
        if vp.is_empty() {
            return;
        }
        if p.top {
            self.escape_objs(&vp.clone());
            return;
        }
        for o in p.objs.clone() {
            if self.tracked(&o) {
                let cell = self.cells.entry(o).or_default();
                if cell.join(vp, self.cfg.pts_cap) {
                    self.changed = true;
                }
            } else {
                self.escape_objs(&vp.clone());
            }
        }
    }

    /// Substitutes actual argument sets for a callee's symbolic `Arg`
    /// objects, against the in-progress local state.
    fn subst(&self, set: &PtsSet, callee: u32, cargs: &[Value]) -> PtsSet {
        if set.top {
            return PtsSet::top();
        }
        let mut out = PtsSet::empty();
        for o in &set.objs {
            match o {
                MemObj::Arg { func, arg } if *func == callee => {
                    let ap = cargs
                        .get(*arg as usize)
                        .map(|&v| self.value_pts(v))
                        .unwrap_or_else(PtsSet::top);
                    out.join(&ap, self.cfg.pts_cap);
                }
                _ => {
                    out.insert(*o, self.cfg.pts_cap);
                }
            }
        }
        out
    }

    fn join_pts(&mut self, id: InstId, v: &PtsSet) {
        let cap = self.cfg.pts_cap;
        if let Some(slot) = self.pts.get_mut(id.index()) {
            if slot.join(v, cap) {
                self.changed = true;
            }
        }
    }

    fn join_mods(&mut self, v: &PtsSet) {
        let cap = self.cfg.pts_cap;
        if self.mods.join(v, cap) {
            self.changed = true;
        }
    }

    fn join_refs(&mut self, v: &PtsSet) {
        let cap = self.cfg.pts_cap;
        if self.refs.join(v, cap) {
            self.changed = true;
        }
    }

    /// One transfer sweep over every instruction.
    fn sweep(&mut self) {
        for id in self.f.inst_ids() {
            let op = self.f.op(id).clone();
            match op {
                Op::Alloca { .. } => {
                    let o = MemObj::Alloca {
                        func: self.fid,
                        inst: id.0,
                    };
                    let s = PtsSet::of(o);
                    self.join_pts(id, &s);
                }
                Op::Gep { ptr, .. } => {
                    let p = self.value_pts(ptr);
                    self.join_pts(id, &p);
                }
                Op::Phi {
                    ty: Ty::Ptr,
                    incomings,
                } => {
                    for (_, v) in &incomings {
                        let p = self.value_pts(*v);
                        self.join_pts(id, &p);
                    }
                }
                Op::Select {
                    ty: Ty::Ptr,
                    tval,
                    fval,
                    ..
                } => {
                    let a = self.value_pts(tval);
                    let b = self.value_pts(fval);
                    self.join_pts(id, &a);
                    self.join_pts(id, &b);
                }
                Op::Load { ty, ptr } => {
                    let p = self.value_pts(ptr);
                    self.join_refs(&p);
                    if ty == Ty::Ptr {
                        let l = self.load_from(&p);
                        self.join_pts(id, &l);
                    }
                }
                Op::Store { val, ptr, .. } => {
                    let p = self.value_pts(ptr);
                    self.join_mods(&p);
                    let vp = self.value_pts(val);
                    self.store_into(&p, &vp);
                }
                Op::MemSet { dst, val, .. } => {
                    let p = self.value_pts(dst);
                    self.join_mods(&p);
                    let vp = self.value_pts(val);
                    self.store_into(&p, &vp);
                }
                Op::MemCpy { dst, src, .. } => {
                    let sp = self.value_pts(src);
                    let dp = self.value_pts(dst);
                    self.join_refs(&sp);
                    self.join_mods(&dp);
                    let transferred = self.load_from(&sp);
                    self.store_into(&dp, &transferred);
                }
                Op::Call {
                    callee,
                    args: cargs,
                    ret_ty,
                } => {
                    let s = self.summaries.get(&callee.0).cloned();
                    let (cm, cr, ce, cret) = match &s {
                        Some(s) => (
                            self.subst(&s.mods, callee.0, &cargs),
                            self.subst(&s.refs, callee.0, &cargs),
                            self.subst(&s.escapes, callee.0, &cargs),
                            self.subst(&s.ret, callee.0, &cargs),
                        ),
                        None => (PtsSet::top(), PtsSet::top(), PtsSet::top(), PtsSet::top()),
                    };
                    self.escape_objs(&ce);
                    // unknown values written through cells the callee mods
                    for o in cm.objs.clone() {
                        if self.tracked(&o) {
                            let cell = self.cells.entry(o).or_default();
                            if cell.set_top() {
                                self.changed = true;
                            }
                        }
                    }
                    self.join_mods(&cm);
                    self.join_refs(&cr);
                    if ret_ty == Ty::Ptr {
                        self.join_pts(id, &cret);
                    }
                }
                _ => {}
            }
        }
        // escaping a slot also publishes everything stored in it
        let escaped: Vec<MemObj> = self.escaped.iter().copied().collect();
        for o in escaped {
            if let Some(c) = self.cells.get(&o).cloned() {
                self.escape_objs(&c);
            }
        }
    }

    /// Saturates every fact to ⊤ (iteration budget exhausted).
    fn saturate(&mut self) {
        for id in self.f.inst_ids() {
            if self.f.op(id).result_ty() == Ty::Ptr {
                if let Some(slot) = self.pts.get_mut(id.index()) {
                    slot.set_top();
                }
            }
        }
        self.mods.set_top();
        self.refs.set_top();
        for id in self.f.inst_ids() {
            if matches!(self.f.op(id), Op::Alloca { .. }) {
                self.escaped.insert(MemObj::Alloca {
                    func: self.fid,
                    inst: id.0,
                });
            }
        }
        self.cells.clear();
    }
}

/// Analyzes one function body against fixed callee summaries. Pure in
/// `(fid, function content, callee summaries, config)` — exactly the
/// incremental memo key.
pub fn analyze_function(
    fid: u32,
    f: &Function,
    summaries: &BTreeMap<u32, FnAliasSummary>,
    cfg: &AliasConfig,
) -> AliasFnResult {
    let universe = f
        .inst_ids()
        .iter()
        .map(|i| i.index() + 1)
        .max()
        .unwrap_or(0);
    let mut s = Solver {
        fid,
        f,
        summaries,
        cfg,
        args: symbolic_args(fid, f),
        pts: vec![PtsSet::empty(); universe],
        cells: BTreeMap::new(),
        escaped: BTreeSet::new(),
        mods: PtsSet::empty(),
        refs: PtsSet::empty(),
        changed: false,
    };
    let mut iters = 0usize;
    loop {
        s.changed = false;
        s.sweep();
        iters += 1;
        if !s.changed {
            break;
        }
        if iters >= cfg.max_iters.max(1) {
            s.saturate();
            break;
        }
    }

    // exported return set
    let mut ret = PtsSet::empty();
    for id in f.inst_ids() {
        if let Op::Ret { val: Some(v) } = f.op(id) {
            let p = s.value_pts(*v);
            ret.join(&p, cfg.pts_cap);
        }
    }

    // exported mod/ref/escape sets: the caller can never observe an
    // access to this frame's own allocas (they die with the frame), so
    // filter them out of the effect sets.
    let own = |o: &MemObj| matches!(o, MemObj::Alloca { func, .. } if *func == fid);
    let export = |set: &PtsSet| -> PtsSet {
        if set.top {
            return PtsSet::top();
        }
        PtsSet {
            top: false,
            objs: set.objs.iter().filter(|o| !own(o)).copied().collect(),
        }
    };
    let summary = FnAliasSummary {
        args: symbolic_args(fid, f),
        ret,
        mods: export(&s.mods),
        refs: export(&s.refs),
        escapes: PtsSet {
            top: false,
            objs: s.escaped.iter().copied().collect(),
        },
    };
    let facts = FuncAlias {
        pts: s.pts,
        escaped: s.escaped,
    };
    let md = memdep::build(fid, f, &facts, summaries, cfg);
    AliasFnResult {
        facts,
        summary,
        memdep: md,
    }
}

// ---------------------------------------------------------------------------
// Module driver (bottom-up over call-graph SCCs)
// ---------------------------------------------------------------------------

/// Upper bound on within-SCC summary iterations before summaries
/// saturate to ⊤ (mirrors the absint SCC schedule).
const SCC_ITER_LIMIT: usize = 24;

/// Runs the interprocedural analysis over `m` with env-configured
/// budgets.
pub fn analyze_module(m: &Module) -> ModuleAlias {
    analyze_module_cfg(m, &AliasConfig::from_env(), None)
}

/// [`analyze_module`], optionally memoizing per-function analyses
/// through an [`IncrementalAnalysisManager`](crate::incremental::IncrementalAnalysisManager).
pub fn analyze_module_with(
    m: &Module,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
) -> ModuleAlias {
    analyze_module_cfg(m, &AliasConfig::from_env(), mgr)
}

/// The full driver: bottom-up SCC schedule identical with and without a
/// manager; only the [`analyze_function`] leaves are content-addressed
/// (key: function fingerprint + `fid`/config digest + callee-summary
/// digest — address-taken saturation is applied to the *exported* copy,
/// so a changed address-taken set reaches callers through their callee
/// digests exactly like a moved absint summary).
pub fn analyze_module_cfg(
    m: &Module,
    cfg: &AliasConfig,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
) -> ModuleAlias {
    // call graph + address-taken set (same construction as absint)
    let mut callees: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut address_taken: HashSet<u32> = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        let mut cs = Vec::new();
        for id in f.inst_ids() {
            let op = f.op(id);
            if let Op::Call { callee, .. } = op {
                cs.push(callee.0);
            }
            for v in op.operands() {
                if let Value::Func(g) = v {
                    address_taken.insert(g.0);
                }
            }
        }
        cs.sort_unstable();
        cs.dedup();
        callees.insert(fid.0, cs);
    }

    let sccs = crate::absint::call_graph_sccs(m, &callees);

    let fps: BTreeMap<u32, u128> = if mgr.is_some() {
        m.func_ids()
            .map(|fid| {
                (
                    fid.0,
                    posetrl_ir::function_fingerprint(m, m.func(fid).unwrap()),
                )
            })
            .collect()
    } else {
        BTreeMap::new()
    };
    let run_one = |f: &Function,
                   i: u32,
                   summaries: &BTreeMap<u32, FnAliasSummary>|
     -> std::sync::Arc<AliasFnResult> {
        let Some(mgr) = mgr else {
            return std::sync::Arc::new(analyze_function(i, f, summaries, cfg));
        };
        use std::fmt::Write as _;
        let mut cal = String::new();
        for c in callees.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
            match summaries.get(c) {
                Some(s) => {
                    let _ = write!(cal, "{c}:{s:?};");
                }
                None => {
                    let _ = write!(cal, "{c}:N;");
                }
            }
        }
        let key = (
            fps[&i],
            posetrl_ir::digest_str(&format!("{i}|{}|{}", cfg.max_iters, cfg.pts_cap)),
            posetrl_ir::digest_str(&cal),
        );
        mgr.alias_memo(&f.name, key, || analyze_function(i, f, summaries, cfg))
    };

    // Exported-summary shaping: address-taken roots may additionally be
    // invoked from unknown contexts reached through any external call, so
    // their effect summaries saturate to ⊤ (the ISSUE's "⊤ for
    // external/address-taken roots"); declarations are ⊤ from the start.
    let shape = |i: u32, mut s: FnAliasSummary| -> FnAliasSummary {
        if address_taken.contains(&i) {
            s.mods.set_top();
            s.refs.set_top();
        }
        s
    };

    let mut summaries: BTreeMap<u32, FnAliasSummary> = BTreeMap::new();
    let mut funcs: BTreeMap<u32, FuncAlias> = BTreeMap::new();
    let mut memdeps: BTreeMap<u32, MemDep> = BTreeMap::new();

    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            summaries.insert(fid.0, FnAliasSummary::top_decl(fid.0, f));
        }
    }

    for scc in &sccs {
        let members: Vec<u32> = scc
            .iter()
            .copied()
            .filter(|i| !m.func(FuncId(*i)).map(|f| f.is_decl).unwrap_or(true))
            .collect();
        if members.is_empty() {
            continue;
        }
        for &i in &members {
            let f = m.func(FuncId(i)).unwrap();
            summaries.insert(i, FnAliasSummary::bottom(i, f));
        }
        let mut iter = 0;
        loop {
            let mut changed = false;
            for &i in &members {
                let f = m.func(FuncId(i)).unwrap();
                let out = run_one(f, i, &summaries);
                funcs.insert(i, out.facts.clone());
                memdeps.insert(i, out.memdep.clone());
                let exported = shape(i, out.summary.clone());
                if summaries.get(&i) != Some(&exported) {
                    summaries.insert(i, exported);
                    changed = true;
                }
            }
            iter += 1;
            if !changed {
                break;
            }
            if iter >= SCC_ITER_LIMIT {
                for &i in &members {
                    let f = m.func(FuncId(i)).unwrap();
                    let mut sat = FnAliasSummary::top_decl(i, f);
                    if f.ret != Ty::Ptr {
                        sat.ret = PtsSet::empty();
                    } else {
                        sat.ret = PtsSet::top();
                    }
                    summaries.insert(i, sat);
                }
                for &i in &members {
                    let f = m.func(FuncId(i)).unwrap();
                    let out = run_one(f, i, &summaries);
                    funcs.insert(i, out.facts.clone());
                    memdeps.insert(i, out.memdep.clone());
                }
                break;
            }
        }
    }

    ModuleAlias {
        summaries,
        funcs,
        memdeps,
        cap: cfg.pts_cap,
    }
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

/// Lints one module against precomputed alias facts: `alias-uaf`
/// (dangling stack addresses), `store-dead` (never-observed stores), and
/// alias-tightened `uninit-load`/`const-write` variants that see through
/// phi/select/interprocedural indirection the syntactic lints miss.
pub fn lint_with(m: &Module, ma: &ModuleAlias, out: &mut Vec<Diagnostic>) {
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        let Some(facts) = ma.facts(fid) else { continue };
        let own_alloca = |o: &MemObj| matches!(o, MemObj::Alloca { func, .. } if *func == fid.0);

        // alias-uaf 1: a returned pointer may carry the address of an own
        // stack slot.
        if let Some(s) = ma.summary(fid) {
            if s.ret.objs.iter().any(own_alloca) {
                for id in f.inst_ids() {
                    if let Op::Ret { val: Some(v) } = f.op(id) {
                        let p = ma.value_pts(fid, f, *v);
                        if p.objs.iter().any(own_alloca) {
                            out.push(Diagnostic::warning(
                                codes::ALIAS_UAF,
                                SourceLoc::of_inst(f, id),
                                "returned pointer may hold the address of a stack slot \
                                 of this function (dangling after return)",
                            ));
                        }
                    }
                }
            }
        }

        // per-instruction lints
        let mut never_written: BTreeSet<MemObj> = f
            .inst_ids()
            .iter()
            .filter(|&&id| matches!(f.op(id), Op::Alloca { .. }))
            .map(|&id| MemObj::Alloca {
                func: fid.0,
                inst: id.0,
            })
            .filter(|o| !facts.escaped.contains(o))
            .collect();
        for id in f.inst_ids() {
            let written = match f.op(id) {
                Op::Store { ptr, .. } => Some(ma.value_pts(fid, f, *ptr)),
                Op::MemSet { dst, .. } | Op::MemCpy { dst, .. } => Some(ma.value_pts(fid, f, *dst)),
                Op::Call { .. } => ma.call_mods(fid, f, id),
                _ => None,
            };
            if let Some(w) = written {
                if w.top {
                    never_written.clear();
                } else {
                    for o in &w.objs {
                        never_written.remove(o);
                    }
                }
            }
        }
        for id in f.inst_ids() {
            let loc = || SourceLoc::of_inst(f, id);
            match f.op(id) {
                // alias-uaf 2: a stack address is published through a
                // cell that outlives the frame (global or caller memory).
                Op::Store { val, ptr, .. } => {
                    let vp = ma.value_pts(fid, f, *val);
                    let pp = ma.value_pts(fid, f, *ptr);
                    let outlives = pp.top
                        || pp.has_arg_obj()
                        || pp.objs.iter().any(|o| matches!(o, MemObj::Global(_)));
                    if outlives && vp.objs.iter().any(own_alloca) {
                        out.push(Diagnostic::warning(
                            codes::ALIAS_UAF,
                            loc(),
                            "address of a stack slot is stored to memory that outlives \
                             this function's frame",
                        ));
                    }
                    // alias-tightened const-write: every object the
                    // pointer can refer to is an immutable global.
                    if !pp.top && !pp.objs.is_empty() {
                        let all_const = pp.objs.iter().all(|o| match o {
                            MemObj::Global(g) => m
                                .global(posetrl_ir::GlobalId(*g))
                                .map(|gl| !gl.mutable)
                                .unwrap_or(false),
                            _ => false,
                        });
                        if all_const {
                            out.push(Diagnostic::warning(
                                codes::CONST_WRITE,
                                loc(),
                                "store through a pointer that can only refer to \
                                 constant globals",
                            ));
                        }
                    }
                }
                // alias-tightened uninit-load: the loaded cell is a
                // frame-private slot nothing in the function ever writes.
                Op::Load { ptr, .. } => {
                    let pp = ma.value_pts(fid, f, *ptr);
                    if !pp.top
                        && !pp.objs.is_empty()
                        && pp.objs.iter().all(|o| never_written.contains(o))
                    {
                        out.push(Diagnostic::warning(
                            codes::UNINIT_LOAD,
                            loc(),
                            "load from a stack slot that is never written on any path",
                        ));
                    }
                }
                _ => {}
            }
        }

        // store-dead: the memdep builder proved no reachable may-reader
        // and a frame-private, in-bounds target.
        if let Some(md) = ma.memdep(fid) {
            for &sid in &md.dead_stores {
                out.push(Diagnostic::note(
                    codes::STORE_DEAD,
                    SourceLoc::of_inst(f, InstId(sid)),
                    "store to a frame-private slot that no reachable instruction \
                     may read",
                ));
            }
        }
    }
}

/// Runs the analysis and the lints over `m` in one call.
pub fn check(m: &Module, out: &mut Vec<Diagnostic>) {
    check_with(m, None, out);
}

/// [`check`], optionally routed through an incremental manager.
pub fn check_with(
    m: &Module,
    mgr: Option<&crate::incremental::IncrementalAnalysisManager>,
    out: &mut Vec<Diagnostic>,
) {
    let ma = analyze_module_with(m, mgr);
    lint_with(m, &ma, out);
}

// ---------------------------------------------------------------------------
// Textual dump (mini-analyze --alias)
// ---------------------------------------------------------------------------

/// Renders the whole analysis in a stable, line-oriented format:
/// per-function argument/return points-to sets, mod/ref/escape
/// summaries, per-value points-to sets and per-load memdep chains.
pub fn render(m: &Module, ma: &ModuleAlias) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {}\n", m.name));
    for fid in m.func_ids() {
        let f = m.func(fid).unwrap();
        if f.is_decl {
            continue;
        }
        out.push_str(&format!("fn @{}\n", f.name));
        if let Some(s) = ma.summary(fid) {
            for (i, a) in s.args.iter().enumerate() {
                out.push_str(&format!("  arg {i}: {}\n", a.render()));
            }
            out.push_str(&format!("  ret: {}\n", s.ret.render()));
            out.push_str(&format!("  mod: {}\n", s.mods.render()));
            out.push_str(&format!("  ref: {}\n", s.refs.render()));
            out.push_str(&format!("  escape: {}\n", s.escapes.render()));
        }
        if let Some(md) = ma.memdep(fid) {
            out.push_str(&format!(
                "  memdep: loads {} dead-stores {} max-chain {}\n",
                md.load_deps.len(),
                md.dead_stores.len(),
                md.max_chain
            ));
        }
        let Some(facts) = ma.facts(fid) else { continue };
        for b in f.block_ids() {
            let Some(block) = f.block(b) else { continue };
            out.push_str(&format!("  {b}:\n"));
            for &id in &block.insts {
                if f.op(id).result_ty() == Ty::Ptr {
                    out.push_str(&format!("    %{}: {}\n", id.0, facts.pts_of(id).render()));
                }
                if matches!(f.op(id), Op::Load { .. }) {
                    if let Some(md) = ma.memdep(fid) {
                        if let Some(deps) = md.load_deps.get(&id.0) {
                            let items: Vec<String> = deps.iter().map(|d| format!("%{d}")).collect();
                            out.push_str(&format!(
                                "    %{} <- defs [{}]\n",
                                id.0,
                                items.join(", ")
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use posetrl_ir::parser::parse_module;

    fn analyzed(text: &str) -> (Module, ModuleAlias) {
        let m = parse_module(text).expect("test module parses");
        let ma = analyze_module_cfg(&m, &AliasConfig::default(), None);
        (m, ma)
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  store i64 1:i64, %a
  store i64 2:i64, %b
  %v = load i64, %a
  ret %v
}
"#,
        );
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let ids = f.inst_ids();
        assert!(!ma.may_alias(fid, f, Value::Inst(ids[0]), Value::Inst(ids[1])));
        assert!(ma.may_alias(fid, f, Value::Inst(ids[0]), Value::Inst(ids[0])));
    }

    #[test]
    fn phi_merges_points_to_sets() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @main(i64) -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  %c = icmp sgt i64 %arg0, 0:i64
  condbr %c, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %p = phi ptr [bb1: %a], [bb2: %b]
  %v = load i64, %p
  ret %v
}
"#,
        );
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let ids = f.inst_ids();
        let phi = ids[ids.len() - 3];
        let p = ma.facts(fid).unwrap().pts_of(phi);
        assert_eq!(p.objs.len(), 2, "{p:?}");
        // phi may alias both slots
        assert!(ma.may_alias(fid, f, Value::Inst(phi), Value::Inst(ids[0])));
        assert!(ma.may_alias(fid, f, Value::Inst(phi), Value::Inst(ids[1])));
    }

    #[test]
    fn callee_modref_summary_is_parameterized() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @write(ptr) -> void internal {
bb0:
  store i64 7:i64, %arg0
  ret
}
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  call @write(%a) -> void
  %v = load i64, %b
  ret %v
}
"#,
        );
        let w = m.func_by_name("write").unwrap();
        let s = ma.summary(w).unwrap();
        assert!(!s.mods.top, "writes only through its argument: {s:?}");
        assert!(s.mods.has_arg_obj());

        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let call = f
            .inst_ids()
            .into_iter()
            .find(|&id| matches!(f.op(id), Op::Call { .. }))
            .unwrap();
        let mods = ma.call_mods(fid, f, call).unwrap();
        // the call writes %a but provably not %b
        let a = f.inst_ids()[0];
        let b = f.inst_ids()[1];
        assert!(ma.sets_may_alias(fid, &mods, &ma.value_pts(fid, f, Value::Inst(a))));
        assert!(!ma.sets_may_alias(fid, &mods, &ma.value_pts(fid, f, Value::Inst(b))));
    }

    #[test]
    fn external_call_escapes_pointer_args_only() {
        let (m, ma) = analyzed(
            r#"
module "t"
declare @sink(ptr) -> void
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  %b = alloca i64 x 1
  call @sink(%a) -> void
  %v = load i64, %b
  ret %v
}
"#,
        );
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid).unwrap();
        let facts = ma.facts(fid).unwrap();
        let a = MemObj::Alloca {
            func: fid.0,
            inst: f.inst_ids()[0].0,
        };
        let b = MemObj::Alloca {
            func: fid.0,
            inst: f.inst_ids()[1].0,
        };
        assert!(facts.escaped.contains(&a), "%a escaped to the decl");
        assert!(!facts.escaped.contains(&b), "%b stayed frame-private");
        // a top pointer may alias the escaped slot but not the private one
        assert!(ma.sets_may_alias(fid, &PtsSet::top(), &PtsSet::of(a)));
        assert!(!ma.sets_may_alias(fid, &PtsSet::top(), &PtsSet::of(b)));
    }

    #[test]
    fn function_pointers_are_tracked_objects() {
        let (m, ma) = analyzed(
            r#"
module "t"
global @slot : ptr x 1 mutable internal = []
fn @cb() -> i64 internal {
bb0:
  ret 1:i64
}
fn @main() -> i64 internal {
bb0:
  store ptr &@cb, @slot
  ret 0:i64
}
"#,
        );
        let cb = m.func_by_name("cb").unwrap();
        // address-taken root: mod/ref saturate to ⊤
        let s = ma.summary(cb).unwrap();
        assert!(s.mods.top && s.refs.top, "{s:?}");
    }

    #[test]
    fn pts_cap_saturates_to_top() {
        let mut set = PtsSet::empty();
        for i in 0..4 {
            set.insert(MemObj::Global(i), 2);
        }
        assert!(set.top, "cap 2 exceeded: explicit ⊤ saturation");
        assert!(set.objs.is_empty());
    }

    #[test]
    fn recursion_converges_with_parameterized_summaries() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @rec(ptr, i64) -> i64 internal {
bb0:
  %z = icmp sle i64 %arg1, 0:i64
  condbr %z, bb1, bb2
bb1:
  %v = load i64, %arg0
  ret %v
bb2:
  %a = alloca i64 x 1
  store i64 %arg1, %a
  %n = sub i64 %arg1, 1:i64
  %r = call @rec(%a, %n) -> i64
  ret %r
}
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 3:i64, %a
  %r = call @rec(%a, 2:i64) -> i64
  ret %r
}
"#,
        );
        let fid = m.func_by_name("rec").unwrap();
        let f = m.func(fid).unwrap();
        let facts = ma.facts(fid).unwrap();
        let alloca = f
            .inst_ids()
            .into_iter()
            .find(|&id| matches!(f.op(id), Op::Alloca { .. }))
            .unwrap();
        let o = MemObj::Alloca {
            func: fid.0,
            inst: alloca.0,
        };
        // passing the slot to the *known* recursive callee is not an
        // escape: the summary proves the callee only reads through it.
        // And because each frame's alloca is a fresh instance, the
        // incoming argument can never carry the current frame's slot —
        // so arg0 provably does not alias it.
        assert!(!facts.escaped.contains(&o), "{facts:?}");
        assert!(!ma.may_alias(fid, f, Value::Arg(0), Value::Inst(alloca)));
        let s = ma.summary(fid).unwrap();
        assert!(s.mods.is_empty(), "writes only its own frame: {s:?}");
        assert!(s.refs.has_arg_obj(), "reads through its argument: {s:?}");
    }

    #[test]
    fn lints_flag_returned_stack_address() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @bad() -> ptr internal {
bb0:
  %a = alloca i64 x 1
  ret %a
}
"#,
        );
        let mut out = Vec::new();
        lint_with(&m, &ma, &mut out);
        assert!(out.iter().any(|d| d.code == codes::ALIAS_UAF), "{out:?}");
    }

    #[test]
    fn clean_code_stays_clean() {
        let (m, ma) = analyzed(
            r#"
module "t"
global @g : i64 x 4 mutable internal = [1:i64, 2:i64]
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 5:i64, %a
  %v = load i64, %a
  %w = load i64, @g
  %r = add i64 %v, %w
  ret %r
}
"#,
        );
        let mut out = Vec::new();
        lint_with(&m, &ma, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn render_is_stable() {
        let (m, ma) = analyzed(
            r#"
module "t"
fn @main() -> i64 internal {
bb0:
  %a = alloca i64 x 1
  store i64 1:i64, %a
  %v = load i64, %a
  ret %v
}
"#,
        );
        let a = render(&m, &ma);
        let b = render(&m, &analyze_module_cfg(&m, &AliasConfig::default(), None));
        assert_eq!(a, b, "renders deterministically");
        assert!(a.contains("fn @main"));
        assert!(a.contains("mod: "), "{a}");
        assert!(a.contains("<- defs"), "{a}");
    }

    #[test]
    fn env_knobs_parse_with_structured_errors() {
        let cfg = AliasConfig::from_vars(|_| None).unwrap();
        assert_eq!(cfg, AliasConfig::default());
        let cfg = AliasConfig::from_vars(|k| (k == "POSETRL_ALIAS_PTS").then(|| "3".to_string()))
            .unwrap();
        assert_eq!(cfg.pts_cap, 3);
        let e =
            AliasConfig::from_vars(|k| (k == "POSETRL_ALIAS_ITERS").then(|| "many".to_string()))
                .unwrap_err();
        assert_eq!(e.key, "POSETRL_ALIAS_ITERS");
        assert_eq!(e.value, "many");
    }
}
