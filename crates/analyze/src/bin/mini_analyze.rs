//! `mini-analyze`: run the lint suite over textual IR files and the
//! generated workload corpora, or symbolically validate a transform pair.
//!
//! ```text
//! mini-analyze [FILES...] [--corpus] [--suites] [--deny warnings|errors]
//!              [--level verify|validate|full] [--absint] [--json] [-q]
//! mini-analyze --validate SRC.pir TGT.pir [--json] [-q]
//! ```
//!
//! - `FILES` are `.pir` modules in the workspace textual format.
//! - `--corpus` additionally checks every program of the training suite.
//! - `--suites` additionally checks MiBench, SPEC 2006 and SPEC 2017.
//! - `--deny warnings` (default `errors`) exits nonzero when any finding
//!   at or above the threshold is reported; notes never fail the run.
//! - `--absint` switches to abstract-interpretation mode: per-value facts
//!   (known bits, signed/unsigned intervals, pointer nullness/alignment,
//!   argument/return summaries) are dumped in a stable textual format and
//!   only the absint lints (`range-trap`, `null-deref`, `dead-branch`)
//!   contribute findings. Exit codes are unchanged.
//! - `--alias` switches to points-to mode: per-value points-to sets,
//!   per-function mod/ref/escape summaries and the MemorySSA-style
//!   load-dependence chains are dumped, and only the alias lints
//!   (`store-dead`, `alias-uaf`, `uninit-load`, `const-write`) contribute
//!   findings. Solver budgets come from the `POSETRL_ALIAS_*` knobs.
//! - `--scev` switches to scalar-evolution mode: per-loop add
//!   recurrences, symbolic trip counts and the static block-frequency
//!   profile are dumped, and only the scev lints (`infinite-loop`,
//!   `iv-overflow`) contribute findings. Budgets come from the
//!   `POSETRL_SCEV_*` knobs.
//! - `--depend` switches to loop-dependence mode: per-loop dependences
//!   (kind, distance, carried-ness), disambiguation counts and the
//!   vectorization/parallelization legality verdicts are dumped, and
//!   only the depend lints (`loop-carried-uaf`, `overlap-copy`)
//!   contribute findings. Budgets come from the `POSETRL_DEPEND_*`
//!   knobs.
//! - `--list-lints` prints the full lint registry (code, severity,
//!   producing analysis) as JSON and exits 0.
//! - `--json` prints one JSON object per module instead of text lines.
//! - `--level` is accepted for symmetry with the engine flags; all
//!   levels run the same static suite here (differential execution needs
//!   a pass pipeline, which file linting does not have).
//! - `--validate SRC TGT` runs the symbolic translation validator on the
//!   pair: `SRC` is the pre-transform module and `TGT` the post-transform
//!   module. Each function in `TGT` gets a `proved`, `refuted` (with an
//!   interpreter-confirmed counterexample) or `inconclusive` verdict.
//!   Budgets come from the `POSETRL_VALIDATE_*` environment knobs.
//!
//! Exit codes (shared with `mini_opt`, see
//! [`posetrl_analyze::exit_codes`]): 0 clean (in `--validate` mode:
//! no refutations — `inconclusive` is not a finding), 1 findings
//! (denied diagnostics or refuted functions), 2 usage or I/O error.

use posetrl_analyze::{
    exit_codes, run_all, validate_transform, AliasConfig, Diagnostic, SanitizeLevel, Severity,
    ValidateConfig, Verdict,
};
use posetrl_ir::parser::parse_module;
use posetrl_ir::verifier::verify_module;
use posetrl_ir::Module;
use posetrl_workloads::suites::{mibench, spec2006, spec2017, training_suite};
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    validate_pair: Option<(String, String)>,
    corpus: bool,
    suites: bool,
    absint: bool,
    alias: bool,
    scev: bool,
    depend: bool,
    deny: Severity,
    json: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mini-analyze [FILES...] [--corpus] [--suites] \
         [--deny warnings|errors] [--level verify|validate|full] [--absint] [--alias] [--scev] [--depend] [--json] [-q]\n\
         \x20      mini-analyze --validate SRC.pir TGT.pir [--json] [-q]\n\
         \x20      mini-analyze --list-lints"
    );
    std::process::exit(exit_codes::USAGE);
}

fn parse_args() -> Options {
    let mut opts = Options {
        files: Vec::new(),
        validate_pair: None,
        corpus: false,
        suites: false,
        absint: false,
        alias: false,
        scev: false,
        depend: false,
        deny: Severity::Error,
        json: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => opts.corpus = true,
            "--suites" => opts.suites = true,
            "--absint" => opts.absint = true,
            "--alias" => opts.alias = true,
            "--scev" => opts.scev = true,
            "--depend" => opts.depend = true,
            "--list-lints" => {
                let out = serde_json::to_string_pretty(&posetrl_analyze::diag::registry())
                    .expect("registry serializes");
                println!("{out}");
                std::process::exit(exit_codes::CLEAN);
            }
            "--json" => opts.json = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny = Severity::Warning,
                Some("errors") => opts.deny = Severity::Error,
                _ => usage(),
            },
            "--validate" => {
                let (Some(src), Some(tgt)) = (args.next(), args.next()) else {
                    usage();
                };
                opts.validate_pair = Some((src, tgt));
            }
            "--level" => {
                let Some(raw) = args.next() else { usage() };
                let level = SanitizeLevel::parse(&raw).unwrap_or_else(|e| {
                    eprintln!("mini-analyze: {e}");
                    std::process::exit(exit_codes::USAGE);
                });
                if level == SanitizeLevel::Off {
                    eprintln!("mini-analyze: --level off disables nothing here; ignoring");
                }
            }
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => opts.files.push(arg),
        }
    }
    if opts.files.is_empty() && !opts.corpus && !opts.suites && opts.validate_pair.is_none() {
        usage();
    }
    opts
}

/// Lints one module; returns the diagnostics at or above the deny level.
fn lint(name: &str, m: &Module, opts: &Options) -> Vec<Diagnostic> {
    let mut dump = None;
    let diags = match verify_module(m) {
        Ok(()) if opts.depend => {
            // budgets are env-tunable; a malformed knob is a usage error
            let cfg = posetrl_analyze::DependConfig::try_from_env().unwrap_or_else(|e| {
                eprintln!("mini-analyze: {e}");
                std::process::exit(exit_codes::USAGE);
            });
            let ms = posetrl_analyze::scev::analyze_module(m);
            let ma = posetrl_analyze::alias::analyze_module(m);
            let md = posetrl_analyze::depend::analyze_module_full(m, &ms, &ma, &cfg, None);
            dump = Some(posetrl_analyze::depend::render(m, &md));
            let mut out = Vec::new();
            posetrl_analyze::depend::lint_with(m, &ms, &ma, &mut out);
            posetrl_analyze::analyses::sort_report(&mut out);
            out
        }
        Ok(()) if opts.scev => {
            // budgets are env-tunable; a malformed knob is a usage error
            let cfg = posetrl_analyze::ScevConfig::try_from_env().unwrap_or_else(|e| {
                eprintln!("mini-analyze: {e}");
                std::process::exit(exit_codes::USAGE);
            });
            let ms = posetrl_analyze::scev::analyze_module_cfg(m, &cfg, None);
            dump = Some(posetrl_analyze::scev::render(m, &ms));
            let mut out = Vec::new();
            posetrl_analyze::scev::lint_with(m, &ms, &mut out);
            posetrl_analyze::analyses::sort_report(&mut out);
            out
        }
        Ok(()) if opts.alias => {
            // budgets are env-tunable; a malformed knob is a usage error
            let cfg = AliasConfig::try_from_env().unwrap_or_else(|e| {
                eprintln!("mini-analyze: {e}");
                std::process::exit(exit_codes::USAGE);
            });
            let ma = posetrl_analyze::alias::analyze_module_cfg(m, &cfg, None);
            dump = Some(posetrl_analyze::alias::render(m, &ma));
            let mut out = Vec::new();
            posetrl_analyze::alias::lint_with(m, &ma, &mut out);
            posetrl_analyze::analyses::sort_report(&mut out);
            out
        }
        Ok(()) if opts.absint => {
            let mi = posetrl_analyze::absint::analyze_module(m);
            dump = Some(posetrl_analyze::absint::render(m, &mi));
            let mut out = Vec::new();
            posetrl_analyze::absint::lint_with(m, &mi, &mut out);
            posetrl_analyze::analyses::sort_report(&mut out);
            out
        }
        Ok(()) => run_all(m),
        Err(e) => {
            // surface verifier failures through the same reporting path
            vec![Diagnostic::error(
                posetrl_analyze::codes::VERIFY,
                e.loc.clone(),
                e.message.clone(),
            )]
        }
    };
    if opts.json {
        let payload = serde_json::json!({
            "module": name,
            "facts": dump,
            "diagnostics": &diags,
        });
        println!("{payload}");
    } else if !opts.quiet {
        if let Some(dump) = &dump {
            print!("{dump}");
        }
        for d in &diags {
            println!("{name}: {d}");
        }
    }
    diags
        .into_iter()
        .filter(|d| d.severity >= opts.deny)
        .collect()
}

fn load(path: &str) -> Module {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mini-analyze: cannot read {path}: {e}");
        std::process::exit(exit_codes::USAGE);
    });
    parse_module(&text).unwrap_or_else(|e| {
        eprintln!("mini-analyze: parse error in {path}: {e}");
        std::process::exit(exit_codes::USAGE);
    })
}

/// `--validate SRC TGT`: symbolic refinement check of a transform pair.
fn run_validate(src_path: &str, tgt_path: &str, opts: &Options) -> ExitCode {
    let src = load(src_path);
    let tgt = load(tgt_path);
    let cfg = ValidateConfig::try_from_env().unwrap_or_else(|e| {
        eprintln!("mini-analyze: {e}");
        std::process::exit(exit_codes::USAGE);
    });
    let mv = validate_transform(&src, &tgt, &cfg);

    if opts.json {
        let funcs: Vec<serde_json::Value> = mv
            .funcs
            .iter()
            .map(|fv| {
                let (verdict, detail) = match &fv.verdict {
                    Verdict::Proved => ("proved", serde_json::Value::Null),
                    Verdict::Refuted(cex) => (
                        "refuted",
                        serde_json::json!({
                            "entry": cex.entry,
                            "args": cex.args.iter().map(|a| format!("{a:?}")).collect::<Vec<_>>(),
                            "src_obs": cex.src_obs,
                            "tgt_obs": cex.tgt_obs,
                        }),
                    ),
                    Verdict::Inconclusive(why) => {
                        ("inconclusive", serde_json::Value::String(why.clone()))
                    }
                };
                serde_json::json!({ "function": fv.name, "verdict": verdict, "detail": detail })
            })
            .collect();
        let payload = serde_json::json!({
            "src": src_path,
            "tgt": tgt_path,
            "proved": mv.proved(),
            "refuted": mv.refuted(),
            "inconclusive": mv.inconclusive(),
            "functions": funcs,
        });
        println!("{payload}");
    } else {
        for fv in &mv.funcs {
            match &fv.verdict {
                Verdict::Proved => {
                    if !opts.quiet {
                        println!("{}: proved", fv.name);
                    }
                }
                Verdict::Refuted(cex) => {
                    println!("{}: REFUTED", fv.name);
                    println!("  entry: {} args: {:?}", cex.entry, cex.args);
                    println!("  source observed:    {}", cex.src_obs);
                    println!("  optimized observed: {}", cex.tgt_obs);
                }
                Verdict::Inconclusive(why) => {
                    if !opts.quiet {
                        println!("{}: inconclusive ({why})", fv.name);
                    }
                }
            }
        }
    }
    if !opts.quiet {
        eprintln!(
            "mini-analyze: validate {src_path} -> {tgt_path}: {} proved, {} refuted, {} inconclusive",
            mv.proved(),
            mv.refuted(),
            mv.inconclusive()
        );
    }
    if mv.refuted() > 0 {
        ExitCode::from(exit_codes::FINDINGS as u8)
    } else {
        ExitCode::from(exit_codes::CLEAN as u8)
    }
}

fn main() -> ExitCode {
    let opts = parse_args();

    if let Some((src, tgt)) = opts.validate_pair.clone() {
        if !opts.files.is_empty() || opts.corpus || opts.suites {
            eprintln!("mini-analyze: --validate cannot be combined with lint inputs");
            return ExitCode::from(exit_codes::USAGE as u8);
        }
        return run_validate(&src, &tgt, &opts);
    }

    let mut failures = 0usize;
    let mut modules = 0usize;

    for path in &opts.files {
        let m = load(path);
        modules += 1;
        failures += lint(path, &m, &opts).len();
    }

    let mut benches = Vec::new();
    if opts.corpus {
        benches.extend(training_suite());
    }
    if opts.suites {
        benches.extend(mibench());
        benches.extend(spec2006());
        benches.extend(spec2017());
    }
    for b in &benches {
        modules += 1;
        failures += lint(&b.name, &b.module, &opts).len();
    }

    if !opts.quiet {
        eprintln!(
            "mini-analyze: {modules} modules, {failures} findings at or above the deny level"
        );
    }
    if failures > 0 {
        ExitCode::from(exit_codes::FINDINGS as u8)
    } else {
        ExitCode::from(exit_codes::CLEAN as u8)
    }
}
