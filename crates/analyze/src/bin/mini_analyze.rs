//! `mini-analyze`: run the lint suite over textual IR files and the
//! generated workload corpora.
//!
//! ```text
//! mini-analyze [FILES...] [--corpus] [--suites] [--deny warnings|errors]
//!              [--level verify|full] [--json] [-q]
//! ```
//!
//! - `FILES` are `.pir` modules in the workspace textual format.
//! - `--corpus` additionally checks every program of the training suite.
//! - `--suites` additionally checks MiBench, SPEC 2006 and SPEC 2017.
//! - `--deny warnings` (default `errors`) exits nonzero when any finding
//!   at or above the threshold is reported; notes never fail the run.
//! - `--json` prints one JSON object per module instead of text lines.
//! - `--level` is accepted for symmetry with the engine flags; both
//!   levels run the same static suite here (differential execution needs
//!   a pass pipeline, which file linting does not have).

use posetrl_analyze::{run_all, Diagnostic, SanitizeLevel, Severity};
use posetrl_ir::parser::parse_module;
use posetrl_ir::verifier::verify_module;
use posetrl_ir::Module;
use posetrl_workloads::suites::{mibench, spec2006, spec2017, training_suite};
use std::process::ExitCode;

struct Options {
    files: Vec<String>,
    corpus: bool,
    suites: bool,
    deny: Severity,
    json: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mini-analyze [FILES...] [--corpus] [--suites] \
         [--deny warnings|errors] [--level verify|full] [--json] [-q]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        files: Vec::new(),
        corpus: false,
        suites: false,
        deny: Severity::Error,
        json: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" => opts.corpus = true,
            "--suites" => opts.suites = true,
            "--json" => opts.json = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny = Severity::Warning,
                Some("errors") => opts.deny = Severity::Error,
                _ => usage(),
            },
            "--level" => {
                let Some(level) = args.next().and_then(|s| SanitizeLevel::parse(&s)) else {
                    usage();
                };
                if level == SanitizeLevel::Off {
                    eprintln!("mini-analyze: --level off disables nothing here; ignoring");
                }
            }
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => opts.files.push(arg),
        }
    }
    if opts.files.is_empty() && !opts.corpus && !opts.suites {
        usage();
    }
    opts
}

/// Lints one module; returns the diagnostics at or above the deny level.
fn lint(name: &str, m: &Module, opts: &Options) -> Vec<Diagnostic> {
    let diags = match verify_module(m) {
        Ok(()) => run_all(m),
        Err(e) => {
            // surface verifier failures through the same reporting path
            vec![Diagnostic::error(
                posetrl_analyze::codes::VERIFY,
                e.loc.clone(),
                e.message.clone(),
            )]
        }
    };
    if opts.json {
        let payload = serde_json::json!({
            "module": name,
            "diagnostics": &diags,
        });
        println!("{payload}");
    } else if !opts.quiet {
        for d in &diags {
            println!("{name}: {d}");
        }
    }
    diags
        .into_iter()
        .filter(|d| d.severity >= opts.deny)
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failures = 0usize;
    let mut modules = 0usize;

    for path in &opts.files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mini-analyze: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let m = match parse_module(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("mini-analyze: parse error in {path}: {e}");
                return ExitCode::from(2);
            }
        };
        modules += 1;
        failures += lint(path, &m, &opts).len();
    }

    let mut benches = Vec::new();
    if opts.corpus {
        benches.extend(training_suite());
    }
    if opts.suites {
        benches.extend(mibench());
        benches.extend(spec2006());
        benches.extend(spec2017());
    }
    for b in &benches {
        modules += 1;
        failures += lint(&b.name, &b.module, &opts).len();
    }

    if !opts.quiet {
        eprintln!(
            "mini-analyze: {modules} modules, {failures} findings at or above the deny level"
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
